"""The responder self-test harness — the paper's recommendation #1.

"First, OCSP responders ought to test the validity of their responses.
Test harnesses like ours can help towards this end (we will be making
our code and data publicly available)."  (Section 8.)

:func:`self_test_responder` drives one responder through every check
the measurement campaign applied — reachability from all vantage
points, structural validity, signature, serial matching, thisUpdate
margin, nextUpdate policy, response stuffing, nonce echo, GET support,
and freshness — and grades each, so a CA can catch the Figure 5-9
pathologies before clients do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence

from ..asn1.errors import ASN1Error
from ..ocsp import (
    CertID,
    OCSPError,
    OCSPRequest,
    OCSPResponse,
    verify_response,
)
from ..simnet import DAY, HOUR, Network, ocsp_get, ocsp_post
from ..simnet.vantage import VANTAGE_POINTS
from ..x509 import Certificate


class Grade(Enum):
    """Severity of a self-test finding."""

    PASS = "pass"
    WARN = "warn"
    FAIL = "fail"


@dataclass
class Finding:
    """One check's outcome."""

    check: str
    grade: Grade
    detail: str = ""


@dataclass
class SelfTestReport:
    """The full report card."""

    responder_url: str
    findings: List[Finding] = field(default_factory=list)

    def add(self, check: str, grade: Grade, detail: str = "") -> None:
        """Record one finding."""
        self.findings.append(Finding(check, grade, detail))

    @property
    def failures(self) -> List[Finding]:
        """Hard failures."""
        return [f for f in self.findings if f.grade is Grade.FAIL]

    @property
    def warnings(self) -> List[Finding]:
        """Soft findings."""
        return [f for f in self.findings if f.grade is Grade.WARN]

    @property
    def healthy(self) -> bool:
        """No hard failures."""
        return not self.failures

    def render(self) -> str:
        """Human-readable report."""
        lines = [f"self-test report for {self.responder_url}"]
        for finding in self.findings:
            lines.append(f"  [{finding.grade.value:4s}] {finding.check}"
                         + (f": {finding.detail}" if finding.detail else ""))
        verdict = "HEALTHY" if self.healthy else "NEEDS ATTENTION"
        lines.append(f"verdict: {verdict} "
                     f"({len(self.failures)} failures, {len(self.warnings)} warnings)")
        return "\n".join(lines)


#: Margin below which clients with slow clocks will reject (Figure 9).
MIN_SAFE_MARGIN = 5 * 60
#: Validity above which cached responses become dangerous (Figure 8).
MAX_SAFE_VALIDITY = 30 * DAY


def self_test_responder(network: Network, url: str, certificate: Certificate,
                        issuer: Certificate, now: int,
                        vantages: Optional[Sequence[str]] = None,
                        ) -> SelfTestReport:
    """Run the full check battery against one responder."""
    report = SelfTestReport(responder_url=url)
    vantages = list(vantages or VANTAGE_POINTS)
    cert_id = CertID.for_certificate(certificate, issuer)
    request_der = OCSPRequest.for_single(cert_id).encode()

    # 1. Reachability from every vantage point.
    unreachable = []
    primary_body = None
    for vantage in vantages:
        fetch = network.fetch(vantage, ocsp_post(url + "/", request_der), now)
        if not fetch.ok:
            unreachable.append(f"{vantage} ({fetch.failure.name if fetch.failure else fetch.status_code})")
        elif primary_body is None:
            primary_body = fetch.response.body
    if unreachable:
        grade = Grade.FAIL if len(unreachable) == len(vantages) else Grade.WARN
        report.add("global reachability", grade,
                   "unreachable from " + ", ".join(unreachable))
    else:
        report.add("global reachability", Grade.PASS,
                   f"reachable from all {len(vantages)} vantage points")
    if primary_body is None:
        report.add("response obtained", Grade.FAIL, "no vantage got HTTP 200")
        return report

    # 2. Structural validity / signature / serial.
    check = verify_response(primary_body, cert_id, issuer, now)
    if check.error is OCSPError.MALFORMED:
        report.add("ASN.1 structure", Grade.FAIL,
                   f"unparseable body ({primary_body[:16]!r}...)")
        return report
    report.add("ASN.1 structure", Grade.PASS)
    if check.error is OCSPError.SERIAL_MISMATCH:
        report.add("serial number match", Grade.FAIL,
                   "answered a different serial than requested")
        return report
    report.add("serial number match", Grade.PASS)
    if check.error is OCSPError.BAD_SIGNATURE:
        report.add("signature", Grade.FAIL, "signature does not verify")
        return report
    report.add("signature", Grade.PASS,
               "delegated signer" if check.delegated else "signed by issuing CA")

    single = check.single
    # 3. thisUpdate margin (Figure 9).
    margin = now - single.this_update
    if margin < 0:
        report.add("thisUpdate margin", Grade.FAIL,
                   f"thisUpdate {-margin} s in the future — clients will reject")
    elif margin < MIN_SAFE_MARGIN:
        report.add("thisUpdate margin", Grade.WARN,
                   f"only {margin} s of margin; slow clients will reject")
    else:
        report.add("thisUpdate margin", Grade.PASS, f"{margin} s")

    # 4. nextUpdate policy (Figure 8).
    if single.next_update is None:
        report.add("nextUpdate", Grade.WARN,
                   "blank — discourages caching and never expires")
    else:
        validity = single.next_update - single.this_update
        if single.next_update < now:
            report.add("nextUpdate", Grade.FAIL, "already expired on arrival")
        elif validity > MAX_SAFE_VALIDITY:
            report.add("nextUpdate", Grade.WARN,
                       f"validity {validity // DAY} days — a revoked cert "
                       f"could be cached that long")
        else:
            report.add("nextUpdate", Grade.PASS,
                       f"validity {validity // 3600} h")

    # 5. Response stuffing (Figures 6 & 7).
    parsed = OCSPResponse.from_der(primary_body)
    serial_count = len(parsed.basic.single_responses)
    if serial_count > 1:
        report.add("unsolicited serials", Grade.WARN,
                   f"{serial_count} serials for a 1-serial request")
    else:
        report.add("unsolicited serials", Grade.PASS)
    cert_count = len(parsed.basic.certificates)
    if cert_count > 1:
        report.add("embedded certificates", Grade.WARN,
                   f"{cert_count} certificates inflate every response "
                   f"({len(primary_body)} bytes)")
    else:
        report.add("embedded certificates", Grade.PASS,
                   f"{len(primary_body)} bytes")

    # 6. Nonce echo (replay protection for direct clients).
    nonce = b"\x5a" * 16
    nonce_request = OCSPRequest.for_single(cert_id, nonce=nonce).encode()
    fetch = network.fetch(vantages[0], ocsp_post(url + "/", nonce_request), now)
    if fetch.ok:
        nonce_check = verify_response(fetch.response.body, cert_id, issuer, now,
                                      expected_nonce=nonce)
        if nonce_check.error is OCSPError.NONCE_MISMATCH:
            report.add("nonce echo", Grade.WARN, "nonce not echoed")
        elif nonce_check.ok or nonce_check.error in (OCSPError.NOT_YET_VALID,):
            report.add("nonce echo", Grade.PASS)
        else:
            report.add("nonce echo", Grade.WARN,
                       f"nonce request failed: {nonce_check.error}")

    # 7. GET support (RFC 6960 A.1, needed for HTTP caching).
    fetch = network.fetch(vantages[0], ocsp_get(url, request_der), now)
    get_works = False
    get_detail = "GET requests not answered successfully"
    if fetch.ok:
        try:
            get_response = OCSPResponse.from_der(fetch.response.body)
            get_works = get_response.is_successful
        except (ASN1Error, ValueError) as exc:
            get_works = False
            get_detail = (f"GET response unparseable "
                          f"({type(exc).__name__}: {exc})")
    report.add("HTTP GET support", Grade.PASS if get_works else Grade.WARN,
               "" if get_works else get_detail)

    # 8. Freshness: does a later request get a response that is not
    #    already stale relative to its own window? (the hinet/cnnic
    #    non-overlap hazard, Section 5.4)
    later = now + 6 * HOUR
    fetch = network.fetch(vantages[0], ocsp_post(url + "/", request_der), later)
    if fetch.ok:
        later_check = verify_response(fetch.response.body, cert_id, issuer, later)
        if later_check.error is OCSPError.EXPIRED:
            report.add("freshness", Grade.FAIL,
                       "served an already-expired response 6 h later")
        elif later_check.ok or later_check.error is None:
            report.add("freshness", Grade.PASS)
        else:
            report.add("freshness", Grade.WARN, str(later_check.error))

    return report
