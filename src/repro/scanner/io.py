"""Persistence for scan datasets.

Measurement campaigns are worth keeping: this module serializes a
:class:`~repro.scanner.hourly.ScanDataset` to JSON-lines (one probe
per line, streaming-friendly) and exports figure-ready CSV series.
"""

from __future__ import annotations

import csv
import io
import json
from typing import IO, Iterable, List, Optional, Union

from ..ocsp import CertStatus
from .hourly import ScanDataset
from .results import ProbeOutcome, ProbeRecord

_FORMAT_VERSION = 1


def _record_to_dict(record: ProbeRecord) -> dict:
    data = {
        "vantage": record.vantage,
        "url": record.responder_url,
        "family": record.family,
        "serial": record.serial_number,
        "ts": record.timestamp,
        "outcome": record.outcome.name,
        "elapsed_ms": round(record.elapsed_ms, 3),
        "http_status": record.http_status,
        "cert_status": record.cert_status.value if record.cert_status else None,
        "this_update": record.this_update,
        "next_update": record.next_update,
        "produced_at": record.produced_at,
        "num_certificates": record.num_certificates,
        "num_serials": record.num_serials,
        "size": record.response_size,
    }
    # Parse-error attribution keys are emitted only when present so the
    # wire bytes of well-formed scans are unchanged (the shard cache
    # keys on them).
    if record.parse_error_class is not None:
        data["parse_error_class"] = record.parse_error_class
    if record.parse_error_detail is not None:
        data["parse_error_detail"] = record.parse_error_detail
    if record.parse_error_offset is not None:
        data["parse_error_offset"] = record.parse_error_offset
    return data


def _record_from_dict(data: dict) -> ProbeRecord:
    return ProbeRecord(
        vantage=data["vantage"],
        responder_url=data["url"],
        family=data["family"],
        serial_number=data["serial"],
        timestamp=data["ts"],
        outcome=ProbeOutcome[data["outcome"]],
        elapsed_ms=data.get("elapsed_ms", 0.0),
        http_status=data.get("http_status"),
        cert_status=CertStatus(data["cert_status"]) if data.get("cert_status") else None,
        this_update=data.get("this_update"),
        next_update=data.get("next_update"),
        produced_at=data.get("produced_at"),
        num_certificates=data.get("num_certificates"),
        num_serials=data.get("num_serials"),
        response_size=data.get("size"),
        parse_error_class=data.get("parse_error_class"),
        parse_error_detail=data.get("parse_error_detail"),
        parse_error_offset=data.get("parse_error_offset"),
    )


# Public aliases: the runtime's shard cache stores probe rows in the
# same wire format as scan files.
record_to_dict = _record_to_dict
record_from_dict = _record_from_dict


def dump_dataset(dataset: ScanDataset, stream: IO[str]) -> int:
    """Write a dataset as JSON-lines; returns the record count.

    The first line is a header object carrying the campaign metadata.
    """
    header = {
        "format": "repro-scan",
        "version": _FORMAT_VERSION,
        "vantages": list(dataset.vantages),
        "interval": dataset.interval,
        "start": dataset.start,
        "end": dataset.end,
    }
    stream.write(json.dumps(header) + "\n")
    for record in dataset.records:
        stream.write(json.dumps(_record_to_dict(record)) + "\n")
    return len(dataset.records)


def load_dataset(stream: IO[str]) -> ScanDataset:
    """Read a dataset written by :func:`dump_dataset`."""
    header_line = stream.readline()
    if not header_line:
        raise ValueError("empty scan file")
    header = json.loads(header_line)
    if header.get("format") != "repro-scan":
        raise ValueError("not a repro scan file")
    if header.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported scan file version: {header.get('version')}")
    dataset = ScanDataset(
        vantages=tuple(header.get("vantages", ())),
        interval=header.get("interval", 3600),
        start=header.get("start", 0),
        end=header.get("end", 0),
    )
    for line in stream:
        line = line.strip()
        if line:
            dataset.records.append(_record_from_dict(json.loads(line)))
    return dataset


def dumps_dataset(dataset: ScanDataset) -> str:
    """String-returning convenience wrapper for :func:`dump_dataset`."""
    buffer = io.StringIO()
    dump_dataset(dataset, buffer)
    return buffer.getvalue()


def loads_dataset(text: str) -> ScanDataset:
    """String-accepting convenience wrapper for :func:`load_dataset`."""
    return load_dataset(io.StringIO(text))


def export_success_series_csv(dataset: ScanDataset, stream: IO[str]) -> None:
    """Export Figure-3-shaped data: per (timestamp, vantage) success %."""
    from ..core.availability import analyze_availability
    report = analyze_availability(dataset)
    writer = csv.writer(stream)
    writer.writerow(["timestamp", "vantage", "success_pct"])
    for vantage, points in report.success_series.items():
        for timestamp, success in points:
            writer.writerow([timestamp, vantage, f"{success:.4f}"])


def export_quality_csv(dataset: ScanDataset, stream: IO[str]) -> None:
    """Export Figures 6-9's per-responder aggregates."""
    from ..core.quality import responder_quality
    qualities = responder_quality(dataset)
    writer = csv.writer(stream)
    writer.writerow(["responder_url", "avg_certificates", "avg_serials",
                     "avg_validity", "min_margin"])
    for url, quality in sorted(qualities.items()):
        writer.writerow([
            url,
            "" if quality.avg_certificates is None else f"{quality.avg_certificates:.3f}",
            "" if quality.avg_serials is None else f"{quality.avg_serials:.3f}",
            "" if quality.avg_validity is None else quality.avg_validity,
            "" if quality.min_margin is None else quality.min_margin,
        ])
