"""The paper's recommended server behaviour (Section 8, recommendation 2).

"Web server software should pre-fetch OCSP responses from the OCSP
responders on a regular basis even if there are no clients who have
attempted to make TLS connections. This will help reduce unnecessary
latency to clients during their TLS handshakes and cope with
intermittent unavailability and errors of OCSP responders."

:class:`IdealServer` prefetches on a timer (via :meth:`tick`),
refreshes well before expiry, retains the old response across fetch
errors, and never pauses a handshake.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .base import StaplingWebServer


class IdealServer(StaplingWebServer):
    """A server implementing the paper's recommendations."""

    software = "ideal"

    #: Fraction of the validity period after which a refresh is attempted.
    refresh_fraction = 0.5
    #: Retry cadence (seconds) while the responder is failing.
    retry_interval = 300

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._last_attempt: Optional[int] = None

    def _needs_refresh(self, now: int) -> bool:
        if self.cache is None or self.cache.is_error_status:
            return True
        if self.cache.next_update is None:
            # Blank nextUpdate: refresh daily to stay current.
            return now - self.cache.fetched_at >= 86400
        window = self.cache.next_update - self.cache.fetched_at
        return now >= self.cache.fetched_at + window * self.refresh_fraction

    def tick(self, now: int) -> None:
        """Proactive prefetch/refresh; call on a schedule."""
        if not self._needs_refresh(now):
            return
        if self._last_attempt is not None and now - self._last_attempt < self.retry_interval:
            return
        self._last_attempt = now
        outcome = self.fetch_ocsp(now)
        if not outcome.network_ok or outcome.staple is None:
            return  # retain old response; retry later
        if outcome.staple.is_error_status:
            return  # tryLater &co: retain old response
        self.cache = outcome.staple

    def _staple_for_connection(self, now: int) -> Tuple[Optional[bytes], float]:
        # Opportunistic refresh keeps the model usable without a cron
        # driver, but never delays the client (the fetch models the
        # server's background thread).
        self.tick(now)
        if self.cache is None or self.cache.is_error_status:
            return None, 0.0
        if self.cache.expired(now):
            return None, 0.0  # never serve expired staples
        return self.cache.body, 0.0
