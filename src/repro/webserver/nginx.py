"""The Nginx 1.13.12 stapling behaviour model (paper Table 3 column 2).

Observed behaviours being reproduced:

* **No prefetch; first client gets no staple** — "Nginx simply does not
  provide an OCSP stapled response to the first client"; the fetch
  happens in the background and later clients benefit.
* **Respects nextUpdate** — expired responses are not served; a fresh
  one is fetched.  With one caveat (footnote 28): "Nginx does not
  refresh the cache more than once every 5 minutes; hence, if the
  validity period of an OCSP response is less than 5 minutes, clients
  could receive an expired (cached) OCSP response."
* **Retains the old response on error** — "Nginx retains the old OCSP
  response and keeps providing it to clients until it expires."
"""

from __future__ import annotations

from typing import Optional, Tuple

from .base import StaplingWebServer


class NginxServer(StaplingWebServer):
    """Behavioural model of nginx's ssl_stapling."""

    software = "nginx-1.13.12"

    #: Minimum seconds between cache refresh attempts (footnote 28).
    refresh_interval = 300

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._last_fetch_at: Optional[int] = None

    def _can_fetch(self, now: int) -> bool:
        return self._last_fetch_at is None or now - self._last_fetch_at >= self.refresh_interval

    def _background_fetch(self, now: int) -> None:
        """Refresh the cache after answering the current client."""
        self._last_fetch_at = now
        outcome = self.fetch_ocsp(now)
        if not outcome.network_ok or outcome.staple is None:
            return  # error: retain whatever is cached
        if outcome.staple.is_error_status:
            return  # OCSP-level error (e.g. tryLater): retain old response
        self.cache = outcome.staple

    def _staple_for_connection(self, now: int) -> Tuple[Optional[bytes], float]:
        if self.cache is None:
            # Cold cache: this client gets nothing; fetch in background.
            if self._can_fetch(now):
                self._background_fetch(now)
            return None, 0.0

        if not self.cache.expired(now):
            return self.cache.body, 0.0

        # Cache expired: respect nextUpdate and refresh — unless the
        # 5-minute rate limit blocks the refresh, in which case the
        # expired response leaks to the client (footnote 28).
        if not self._can_fetch(now):
            return self.cache.body, 0.0
        self._background_fetch(now)
        if self.cache is not None and not self.cache.expired(now):
            # The background fetch landed before the next client; this
            # client still answered without the fresh staple, matching
            # nginx's asynchronous update. Serve nothing now.
            pass
        return None, 0.0
