"""The Apache 2.4.18 stapling behaviour model (paper Table 3 column 1).

Observed behaviours being reproduced:

* **No prefetch, pauses the handshake** — "Apache 'pauses' the TLS
  handshake until the OCSP response comes in", so the first client (and
  any client hitting a refresh) pays the responder round trip.
* **Caches, but ignores nextUpdate** — "Apache does not respect the
  expiration time of the OCSP response and will continue to serve OCSP
  responses from the cache even after they expire" (the Bugzilla issue
  the authors filed, #62400).  Refreshing is driven by Apache's own
  cache TTL, not the response's validity.
* **Drops the cache on responder error** — "Apache also deletes the
  old (still valid) OCSP response and either provides no OCSP response
  (if the OCSP responder is unavailable) or serves the error response
  itself (if the OCSP responder returns an error)."
"""

from __future__ import annotations

from typing import Optional, Tuple

from .base import StaplingWebServer


class ApacheServer(StaplingWebServer):
    """Behavioural model of Apache httpd's mod_ssl stapling."""

    software = "apache-2.4.18"

    #: mod_ssl's SSLStaplingStandardCacheTimeout default (seconds).
    cache_ttl = 3600

    def _staple_for_connection(self, now: int) -> Tuple[Optional[bytes], float]:
        if self.cache is None:
            # Cold cache: fetch synchronously, pausing this handshake.
            outcome = self.fetch_ocsp(now)
            if not outcome.network_ok:
                return None, outcome.elapsed_ms
            if outcome.staple is None:
                # Unparseable body: nothing cached, nothing stapled.
                return None, outcome.elapsed_ms
            self.cache = outcome.staple
            return self.cache.body, outcome.elapsed_ms

        if now - self.cache.fetched_at < self.cache_ttl:
            # Within Apache's own TTL it serves the cache even if the
            # response has expired per nextUpdate.
            return self.cache.body, 0.0

        # TTL elapsed: synchronous refresh (another pause).
        outcome = self.fetch_ocsp(now)
        if not outcome.network_ok:
            # Responder unreachable: the old (possibly still valid!)
            # response is discarded and no staple is sent.
            self.cache = None
            return None, outcome.elapsed_ms
        if outcome.staple is None:
            self.cache = None
            return None, outcome.elapsed_ms
        # Note: if the responder returned an OCSP error status, Apache
        # caches and staples that error response itself.
        self.cache = outcome.staple
        return self.cache.body, outcome.elapsed_ms


class ApachePatchedServer(ApacheServer):
    """Apache with the two bugs the authors reported fixed.

    The paper filed Bugzilla #62400 ("OCSP Stapling should not serve
    OCSP responses from the cache even after they expire") and
    criticised the drop-on-error behaviour.  This model is the
    counterfactual used by the ablation benchmark: identical to
    :class:`ApacheServer` except that (1) expired responses are
    refreshed rather than served, and (2) a failed refresh keeps the
    old response until it genuinely expires.
    """

    software = "apache-patched"

    def _staple_for_connection(self, now: int):
        if self.cache is None:
            outcome = self.fetch_ocsp(now)
            if not outcome.network_ok or outcome.staple is None:
                return None, outcome.elapsed_ms
            self.cache = outcome.staple
            return self.cache.body, outcome.elapsed_ms

        needs_refresh = (now - self.cache.fetched_at >= self.cache_ttl
                         or self.cache.expired(now)
                         or self.cache.is_error_status)
        if not needs_refresh:
            return self.cache.body, 0.0

        outcome = self.fetch_ocsp(now)
        if (outcome.network_ok and outcome.staple is not None
                and not outcome.staple.is_error_status):
            self.cache = outcome.staple
        # Fix 2: on failure, retain the old response...
        if self.cache.expired(now) or self.cache.is_error_status:
            # Fix 1: ...but never staple it once expired.
            return None, outcome.elapsed_ms
        return self.cache.body, outcome.elapsed_ms
