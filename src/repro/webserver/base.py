"""Web server stapling engine: shared machinery.

A web server in this simulation owns a certificate chain, talks to the
OCSP responder through the simulated network, and answers TLS
handshakes with an optional stapled response.  Concrete subclasses
implement the caching/prefetching state machine of a specific piece of
software (Apache, Nginx, or the paper's recommended "ideal" behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..asn1.errors import ASN1Error
from ..ocsp import CertID, OCSPRequest, OCSPResponse
from ..simnet import FetchResult, Network, ocsp_post
from ..tls import ClientHello, ServerHandshake
from ..x509 import Certificate


@dataclass
class CachedStaple:
    """A cached OCSP response with the metadata the cache logic needs."""

    body: bytes
    fetched_at: int
    this_update: Optional[int] = None
    next_update: Optional[int] = None
    is_error_status: bool = False

    def expired(self, now: int) -> bool:
        """True when the response's nextUpdate has passed."""
        return self.next_update is not None and now > self.next_update


@dataclass
class OCSPFetchOutcome:
    """Result of a server-side OCSP fetch, pre-classified for caching."""

    network_ok: bool
    staple: Optional[CachedStaple] = None
    elapsed_ms: float = 0.0


class StaplingWebServer:
    """Base class: certificate state + responder fetch plumbing."""

    #: Software name, for reports.
    software = "generic"

    def __init__(self, chain: List[Certificate], issuer: Certificate,
                 network: Network, vantage: str = "Virginia",
                 stapling_enabled: bool = True) -> None:
        if not chain:
            raise ValueError("a web server needs a certificate chain")
        self.chain = list(chain)
        self.issuer = issuer
        self.network = network
        self.vantage = vantage
        #: Both Apache and Nginx ship with stapling off; the paper had
        #: to "enable a few configuration parameters" (footnote 26).
        self.stapling_enabled = stapling_enabled
        self.cache: Optional[CachedStaple] = None
        self.fetch_count = 0

    @property
    def leaf(self) -> Certificate:
        """The served end-entity certificate."""
        return self.chain[0]

    # -- responder interaction -------------------------------------------------

    def fetch_ocsp(self, now: int) -> OCSPFetchOutcome:
        """POST an OCSP request for the leaf to its responder."""
        self.fetch_count += 1
        urls = self.leaf.ocsp_urls
        if not urls:
            return OCSPFetchOutcome(network_ok=False)
        cert_id = CertID.for_certificate(self.leaf, self.issuer)
        request = OCSPRequest.for_single(cert_id)
        result: FetchResult = self.network.fetch(
            self.vantage, ocsp_post(urls[0], request.encode()), now
        )
        if not result.ok:
            return OCSPFetchOutcome(network_ok=False, elapsed_ms=result.elapsed_ms)
        body = result.response.body
        staple = _classify_body(body, self.leaf.serial_number, fetched_at=now)
        return OCSPFetchOutcome(network_ok=True, staple=staple,
                                elapsed_ms=result.elapsed_ms)

    # -- the TLS-facing API ------------------------------------------------------

    def handle_connection(self, hello: ClientHello, now: int) -> ServerHandshake:
        """Answer a TLS handshake.

        Subclasses implement :meth:`_staple_for_connection`; this wrapper
        handles the stapling-disabled and no-status-request cases.
        """
        if not self.stapling_enabled or not hello.status_request:
            return ServerHandshake(certificate_chain=self.chain)
        staple, delay_ms = self._staple_for_connection(now)
        return ServerHandshake(
            certificate_chain=self.chain,
            stapled_ocsp=staple,
            handshake_delay_ms=delay_ms,
        )

    def _staple_for_connection(self, now: int) -> "tuple[Optional[bytes], float]":
        raise NotImplementedError

    def tick(self, now: int) -> None:
        """Periodic maintenance hook (prefetching servers refresh here)."""


def _classify_body(body: bytes, serial_number: int, fetched_at: int) -> Optional[CachedStaple]:
    """Parse a fetched body into cache metadata; None when unparseable."""
    try:
        response = OCSPResponse.from_der(body)
    except (ASN1Error, ValueError):
        return None
    if not response.is_successful or response.basic is None:
        return CachedStaple(body=body, fetched_at=fetched_at, is_error_status=True)
    single = response.basic.find_single(serial_number)
    if single is None and response.basic.single_responses:
        single = response.basic.single_responses[0]
    if single is None:
        return CachedStaple(body=body, fetched_at=fetched_at, is_error_status=True)
    return CachedStaple(
        body=body,
        fetched_at=fetched_at,
        this_update=single.this_update,
        next_update=single.next_update,
    )
