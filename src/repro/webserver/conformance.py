"""The web-server conformance test suite (reproduces paper Table 3).

Four experiments, matching Section 7.2's three perspectives
(performance, caching, availability):

1. **Prefetch OCSP response** — does the server have a staple ready for
   the very first client, without delaying the handshake?
2. **Cache OCSP response** — does a second connection reuse the cached
   response instead of refetching?
3. **Respect nextUpdate in cache** — is an expired response evicted
   rather than served?
4. **Retain OCSP response on error** — when a refresh fails, is the
   previous (still useful) response kept?

Each experiment drives a fresh server instance against a scripted
responder on a private simulated network, exactly like the paper's test
suite drove Apache and Nginx against a modified Python responder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Type

from ..ca import CertificateAuthority, OCSPResponder, ResponderProfile
from ..crypto import generate_keypair
from ..ocsp import OCSPResponse
from ..simnet import Network, OutageWindow, FailureKind, ocsp_service
from ..tls import ClientHello
from ..x509 import Certificate
from .base import StaplingWebServer

EXPERIMENTS = [
    "Prefetch OCSP response",
    "Cache OCSP response",
    "Respect nextUpdate in cache",
    "Retain OCSP response on error",
]


@dataclass
class ExperimentResult:
    """One Table-3 cell: pass/fail plus the observed failure mode."""

    name: str
    passed: bool
    note: str = ""

    @property
    def symbol(self) -> str:
        """The paper's cell rendering."""
        if self.passed:
            return "yes"
        return f"no ({self.note})" if self.note else "no"


@dataclass
class ConformanceReport:
    """All four experiments for one server implementation."""

    software: str
    results: List[ExperimentResult]

    def result(self, name: str) -> ExperimentResult:
        """Look up one experiment by name."""
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(name)

    def as_row(self) -> Dict[str, str]:
        """Render as a {experiment: symbol} row."""
        return {result.name: result.symbol for result in self.results}


class _Rig:
    """A fresh CA + responder + network + server for one experiment."""

    def __init__(self, server_class: Type[StaplingWebServer],
                 validity_period: int, now: int,
                 prefetch_driver: bool = False) -> None:
        self.now = now
        self.ca = CertificateAuthority.create_root(
            "Conformance CA", "http://ocsp.conformance.test",
            not_before=now - 365 * 86400,
        )
        leaf_key = generate_keypair(512, rng=4242)
        self.leaf = self.ca.issue_leaf("server.test", leaf_key,
                                       not_before=now - 86400, must_staple=True)
        profile = ResponderProfile(
            validity_period=validity_period,
            this_update_margin=0,
            update_interval=None,  # on demand, freshest possible
        )
        self.responder = OCSPResponder(self.ca, "http://ocsp.conformance.test",
                                       profile, epoch_start=now - 86400)
        self.network = Network()
        self.origin = self.network.add_origin(
            "conformance-ocsp", "us-east", ocsp_service(self.responder)
        )
        self.network.bind("ocsp.conformance.test", self.origin)
        self.server = server_class(
            chain=[self.leaf, self.ca.certificate],
            issuer=self.ca.certificate,
            network=self.network,
        )
        if prefetch_driver:
            # An operator cron job driving the tick() hook.
            self.server.tick(now)

    def connect(self, at: int):
        """One TLS handshake from a status_request-capable client."""
        return self.server.handle_connection(
            ClientHello(server_name="server.test", status_request=True), at
        )

    def outage(self, start: int, end: int) -> None:
        """Take the responder down for [start, end)."""
        self.origin.add_outage(OutageWindow(start=start, end=end,
                                            kind=FailureKind.TCP))


def _staple_next_update(staple: bytes, serial: int) -> Optional[int]:
    response = OCSPResponse.from_der(staple)
    single = response.basic.find_single(serial)
    return single.next_update if single else None


def run_conformance(server_class: Type[StaplingWebServer],
                    now: int = 1_525_132_800) -> ConformanceReport:
    """Run the four Table-3 experiments against *server_class*."""
    results: List[ExperimentResult] = []

    # 1. Prefetch: first ever client should get an undelayed staple.
    rig = _Rig(server_class, validity_period=7 * 86400, now=now,
               prefetch_driver=True)
    handshake = rig.connect(now)
    if handshake.stapled_ocsp is None:
        results.append(ExperimentResult(EXPERIMENTS[0], False, "provide no resp."))
    elif handshake.handshake_delay_ms > 0:
        results.append(ExperimentResult(EXPERIMENTS[0], False, "pause conn."))
    else:
        results.append(ExperimentResult(EXPERIMENTS[0], True))

    # 2. Caching: a second connection shortly after must not refetch.
    rig = _Rig(server_class, validity_period=7 * 86400, now=now)
    rig.connect(now)
    fetches_after_first = rig.server.fetch_count
    second = rig.connect(now + 60)
    cached = (rig.server.fetch_count == fetches_after_first
              and second.stapled_ocsp is not None)
    results.append(ExperimentResult(EXPERIMENTS[1], cached))

    # 3. Respect nextUpdate: never staple an expired response.
    rig = _Rig(server_class, validity_period=600, now=now)
    rig.connect(now)           # warm (or start warming) the cache
    rig.connect(now + 30)      # nginx's async fetch has landed by now
    check_at = now + 1200      # past nextUpdate, inside Apache's TTL
    handshake = rig.connect(check_at)
    respected = True
    if handshake.stapled_ocsp is not None:
        next_update = _staple_next_update(handshake.stapled_ocsp,
                                          rig.leaf.serial_number)
        respected = next_update is None or next_update >= check_at
    results.append(ExperimentResult(EXPERIMENTS[2], respected,
                                    "" if respected else "serves expired"))

    # 4. Retain on error: a failed refresh must not destroy the cached
    #    response.
    rig = _Rig(server_class, validity_period=2 * 3600, now=now)
    rig.connect(now)
    rig.connect(now + 30)
    before = rig.server.cache.body if rig.server.cache else None
    rig.outage(now + 31, now + 7 * 86400)
    # Step past every server's refresh threshold while the responder is
    # down; the cached response is still within its validity window.
    for offset in (3700, 3760, 3820):
        rig.connect(now + offset)
        rig.server.tick(now + offset)
    after = rig.server.cache.body if rig.server.cache else None
    retained = before is not None and after == before
    results.append(ExperimentResult(EXPERIMENTS[3], retained,
                                    "" if retained else "drops cached response"))

    return ConformanceReport(software=server_class.software, results=results)
