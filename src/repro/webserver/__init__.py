"""Web server stapling models (Apache, Nginx, ideal) + conformance suite.

Reproduces the third principal of the paper: web server software must
"fully and correctly support OCSP Stapling" (Section 2.4, item 3), and
Section 7.2 / Table 3 show that neither Apache nor Nginx does.
"""

from .base import CachedStaple, OCSPFetchOutcome, StaplingWebServer
from .apache import ApachePatchedServer, ApacheServer
from .nginx import NginxServer
from .ideal import IdealServer
from .multistaple import MultiStapleServer, verify_chain_staples
from .conformance import (
    EXPERIMENTS,
    ConformanceReport,
    ExperimentResult,
    run_conformance,
)

__all__ = [
    "ApachePatchedServer",
    "ApacheServer",
    "CachedStaple",
    "ConformanceReport",
    "EXPERIMENTS",
    "ExperimentResult",
    "IdealServer",
    "MultiStapleServer",
    "NginxServer",
    "verify_chain_staples",
    "OCSPFetchOutcome",
    "StaplingWebServer",
    "run_conformance",
]
