"""RFC 6961 multi-stapling: statuses for the whole chain.

The paper (Section 2.3): "a client needs to check the revocation
status of all certificates on the chain using OCSP, but OCSP Stapling
only allows the revocation status for the leaf certificate to be
included.  There is an extension to OCSP Stapling [RFC 6961] that
tries to address this limitation by allowing the server to include
multiple certificate statuses in a single response, but it has yet to
see wide adoption."

:class:`MultiStapleServer` implements that extension on top of the
ideal prefetching engine: it maintains one cached staple per non-root
chain element and answers ``status_request_v2`` clients with the whole
set.  The companion analysis (`benchmarks/test_ext_multistaple.py`)
shows what the extension buys: a revoked *intermediate* is invisible
to a single-staple client but fatal to a multi-staple one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ocsp import CertID, OCSPRequest
from ..simnet import ocsp_post
from ..tls import ClientHello, ServerHandshake
from ..x509 import Certificate
from .base import CachedStaple, StaplingWebServer, _classify_body
from .ideal import IdealServer


class MultiStapleServer(IdealServer):
    """An ideal server that additionally staples intermediate statuses."""

    software = "ideal-multistaple"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Per-chain-index staple caches (index 0 == the leaf, handled
        # by the base class cache; >0 are intermediates).
        self._chain_cache: Dict[int, CachedStaple] = {}
        self._chain_attempt: Dict[int, int] = {}

    def _chain_pairs(self) -> List[Tuple[int, Certificate, Certificate]]:
        """(index, certificate, issuer) for each non-root chain element."""
        pairs = []
        for index, certificate in enumerate(self.chain):
            if certificate.is_self_signed:
                continue  # roots have no meaningful OCSP status
            if index + 1 < len(self.chain):
                issuer = self.chain[index + 1]
            elif certificate is self.leaf:
                issuer = self.issuer
            else:
                continue
            pairs.append((index, certificate, issuer))
        return pairs

    def _fetch_for(self, certificate: Certificate, issuer: Certificate,
                   now: int) -> Optional[CachedStaple]:
        urls = certificate.ocsp_urls
        if not urls:
            return None
        self.fetch_count += 1
        cert_id = CertID.for_certificate(certificate, issuer)
        request = OCSPRequest.for_single(cert_id)
        result = self.network.fetch(self.vantage,
                                    ocsp_post(urls[0], request.encode()), now)
        if not result.ok:
            return None
        return _classify_body(result.response.body, certificate.serial_number,
                              fetched_at=now)

    def tick(self, now: int) -> None:
        """Refresh the leaf staple (base class) and every intermediate's."""
        super().tick(now)
        for index, certificate, issuer in self._chain_pairs():
            if index == 0:
                continue  # the leaf is covered by the base cache
            cached = self._chain_cache.get(index)
            if cached is not None and not cached.is_error_status:
                window = ((cached.next_update or (cached.fetched_at + 86400))
                          - cached.fetched_at)
                if now < cached.fetched_at + window * self.refresh_fraction:
                    continue
            last = self._chain_attempt.get(index)
            if last is not None and now - last < self.retry_interval:
                continue
            self._chain_attempt[index] = now
            staple = self._fetch_for(certificate, issuer, now)
            if staple is not None and not staple.is_error_status:
                self._chain_cache[index] = staple

    def handle_connection(self, hello: ClientHello, now: int) -> ServerHandshake:
        handshake = super().handle_connection(hello, now)
        if not self.stapling_enabled or not hello.status_request_v2:
            return handshake
        chain_staples: List[Optional[bytes]] = []
        for index, certificate in enumerate(self.chain):
            if index == 0:
                chain_staples.append(handshake.stapled_ocsp)
                continue
            cached = self._chain_cache.get(index)
            if cached is None or cached.expired(now) or cached.is_error_status:
                chain_staples.append(None)
            else:
                chain_staples.append(cached.body)
        handshake.stapled_ocsp_chain = chain_staples
        return handshake


def verify_chain_staples(handshake: ServerHandshake, trust_issuers: List[Certificate],
                         now: int) -> List[Optional[bool]]:
    """Client-side RFC 6961 check: verify each chain element's staple.

    *trust_issuers[i]* is the issuer certificate for ``chain[i]``.
    Returns per-element: True (valid + good), False (valid + revoked or
    invalid), or None (no staple supplied).
    """
    from ..ocsp import verify_response

    if handshake.stapled_ocsp_chain is None:
        return [None] * len(handshake.certificate_chain)
    verdicts: List[Optional[bool]] = []
    for certificate, issuer, staple in zip(
            handshake.certificate_chain, trust_issuers,
            handshake.stapled_ocsp_chain):
        if staple is None:
            verdicts.append(None)
            continue
        cert_id = CertID.for_certificate(certificate, issuer)
        check = verify_response(staple, cert_id, issuer, now)
        if not check.ok:
            verdicts.append(False)
        else:
            verdicts.append(not check.revoked)
    return verdicts
