"""A CRLSet model — Chrome's push-based emergency revocation list.

The paper's related work cites Langley's posts explaining why Chrome
does not do online revocation checks and ships CRLSets instead
("Revocation checking and Chrome's CRL", [16]; "No, don't enable
revocation checking", [17]).  A CRLSet is a small, centrally-curated
set of (issuer key hash, serial) pairs pushed to browsers: revocations
on the list are enforced instantly and offline; everything else is
unprotected.

This model lets the attack analyses compare the mechanism against
OCSP/Must-Staple: CRLSets are immune to network attackers (no online
fetch to block) but cover only the entries someone curated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Set, Tuple

from ..x509 import Certificate


@dataclass
class CRLSet:
    """A pushed revocation set with a version number."""

    version: int = 1
    #: (issuer key SHA-1, serial number) pairs.
    entries: Set[Tuple[bytes, int]] = field(default_factory=set)

    def add(self, issuer: Certificate, serial_number: int) -> None:
        """Curate one revocation into the set."""
        self.entries.add((issuer.key_hash_sha1(), serial_number))

    def covers(self, issuer: Certificate, serial_number: int) -> bool:
        """True when the pair is on the list."""
        return (issuer.key_hash_sha1(), serial_number) in self.entries

    def is_revoked(self, certificate: Certificate, issuer: Certificate) -> bool:
        """The browser-side check: leaf revoked per this CRLSet?"""
        return self.covers(issuer, certificate.serial_number)

    def __len__(self) -> int:
        return len(self.entries)


class CRLSetDistributor:
    """The update channel: browsers poll for fresh CRLSets.

    Chrome updates CRLSets out-of-band every few hours; ``push_delay``
    models curation + distribution lag between a CA revocation and the
    entry landing in clients.
    """

    def __init__(self, push_delay: int = 6 * 3600) -> None:
        self.push_delay = push_delay
        self._staged: list = []  # (available_at, issuer_key_hash, serial)
        self._current = CRLSet(version=1)

    def curate(self, issuer: Certificate, serial_number: int, revoked_at: int) -> None:
        """A revocation worth pushing (CRLSets only take 'important' ones)."""
        self._staged.append((revoked_at + self.push_delay,
                             issuer.key_hash_sha1(), serial_number))

    def fetch(self, now: int) -> CRLSet:
        """What a browser syncing at *now* receives."""
        entries = {
            (key_hash, serial)
            for available_at, key_hash, serial in self._staged
            if available_at <= now
        }
        version = self._current.version + len(entries)
        return CRLSet(version=version, entries=entries)


def check_with_crlset(crlset: Optional[CRLSet], certificate: Certificate,
                      issuer: Certificate) -> Optional[bool]:
    """Tri-state CRLSet verdict: True=revoked, False=not listed, None=no set."""
    if crlset is None:
        return None
    return crlset.is_revoked(certificate, issuer)
