"""The browser test suite (reproduces paper Table 2, Section 6).

Methodology mirror of the paper: obtain a valid certificate carrying
the Must-Staple extension, serve it from an Apache web server with
OCSP Stapling *deliberately disabled* (``SSLUseStapling off``), point
each browser at the site, and capture:

* whether the client solicited a stapled response
  (Certificate Status Request in the ClientHello),
* whether it refused the certificate when no staple arrived,
* whether it fell back to its own OCSP request to the responder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..ca import CertificateAuthority, OCSPResponder, ResponderProfile
from ..crypto import generate_keypair
from ..simnet import Network, ocsp_service
from ..webserver import ApacheServer
from ..x509 import TrustStore
from .policy import BrowserPolicy, BrowsingOutcome, Verdict, connect
from .profiles import ALL_BROWSERS


@dataclass
class BrowserTestRow:
    """One browser's three Table-2 cells."""

    policy: BrowserPolicy
    requests_ocsp_response: bool
    respects_must_staple: bool
    sends_own_ocsp_request: Optional[bool]  # None = N/A (it hard-failed)
    outcome: BrowsingOutcome

    def cells(self) -> Dict[str, str]:
        """Render with the paper's check/cross/dash symbols."""
        def mark(value: Optional[bool]) -> str:
            if value is None:
                return "-"
            return "yes" if value else "no"
        return {
            "Request OCSP response": mark(self.requests_ocsp_response),
            "Respect OCSP Must-Staple": mark(self.respects_must_staple),
            "Send own OCSP request": mark(self.sends_own_ocsp_request),
        }


@dataclass
class BrowserTestReport:
    """The full Table-2 matrix."""

    rows: List[BrowserTestRow]

    def row(self, label: str) -> BrowserTestRow:
        """Find a row by browser label."""
        for row in self.rows:
            if row.policy.label == label:
                return row
        raise KeyError(label)

    @property
    def compliant_browsers(self) -> List[str]:
        """Browsers that fully respect Must-Staple."""
        return [row.policy.label for row in self.rows if row.respects_must_staple]


def run_browser_tests(browsers: Sequence[BrowserPolicy] = ALL_BROWSERS,
                      now: int = 1_525_132_800) -> BrowserTestReport:
    """Run the Section-6 experiment for every browser in *browsers*."""
    # A Let's Encrypt-like CA (the paper's test certificate was issued
    # by Let's Encrypt): OCSP only, no CRL.
    ca = CertificateAuthority.create_root(
        "Lets Encrypt Authority X3 (sim)", "http://ocsp.int-x3.letsencrypt.test",
        not_before=now - 2 * 365 * 86400,
    )
    leaf_key = generate_keypair(512, rng=606)
    leaf = ca.issue_leaf("must-staple-test.example", leaf_key,
                         not_before=now - 86400, must_staple=True,
                         include_crl_url=False)

    network = Network()
    responder = OCSPResponder(ca, "http://ocsp.int-x3.letsencrypt.test",
                              ResponderProfile(update_interval=None,
                                               this_update_margin=3600),
                              epoch_start=now - 7 * 86400)
    origin = network.add_origin("le-ocsp", "us-east",
                                ocsp_service(responder))
    network.bind("ocsp.int-x3.letsencrypt.test", origin)

    # Apache with SSLUseStapling off: never staples.
    server = ApacheServer(chain=[leaf, ca.certificate], issuer=ca.certificate,
                          network=network, stapling_enabled=False)
    trust_store = TrustStore([ca.certificate])

    rows: List[BrowserTestRow] = []
    for policy in browsers:
        outcome = connect(policy, server, "must-staple-test.example",
                          trust_store, now, network=network)
        hard_failed = outcome.verdict is Verdict.REJECTED_MUST_STAPLE
        # The paper determines row 1 from packet captures; replay the
        # handshake onto the wire codec and read the extension back
        # out of the captured ClientHello bytes.
        from ..tls import ClientHello, HandshakeCapture
        hello = ClientHello("must-staple-test.example",
                            status_request=policy.sends_status_request)
        capture = HandshakeCapture.record(
            hello, server.handle_connection(hello, now))
        rows.append(BrowserTestRow(
            policy=policy,
            requests_ocsp_response=capture.client_solicited_ocsp(),
            respects_must_staple=hard_failed,
            sends_own_ocsp_request=None if hard_failed else outcome.own_ocsp_request_sent,
            outcome=outcome,
        ))
    return BrowserTestReport(rows=rows)
