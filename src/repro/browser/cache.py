"""Client-side OCSP response caching.

The paper's Section 5.4 flags the hazard this module makes
measurable: "if the certificate were compromised, there could be some
clients who cache the previous response and would not obtain a fresh
revocation status for up to 1,251 days!" — and blank-nextUpdate
responses are "technically always regarded as valid, which could
potentially raise security vulnerabilities with cached responses".

:class:`ClientOCSPCache` caches verified responses keyed by CertID and
honours nextUpdate, with a configurable ceiling (``max_age``) standing
in for sane client policy, and an opt-in ``cache_blank`` mode
reproducing the risky behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..ocsp import CertID, CertStatus, OCSPCheckResult


@dataclass
class CachedResult:
    """A cached verification outcome."""

    cert_status: CertStatus
    this_update: int
    next_update: Optional[int]
    stored_at: int


class ClientOCSPCache:
    """An in-client OCSP result cache.

    * ``max_age`` bounds how long any entry lives regardless of
      nextUpdate (None = trust nextUpdate completely — the hazard).
    * ``cache_blank`` controls whether blank-nextUpdate responses are
      cached at all; when cached they only expire through ``max_age``.
    """

    def __init__(self, max_age: Optional[int] = 7 * 86400,
                 cache_blank: bool = False) -> None:
        self.max_age = max_age
        self.cache_blank = cache_blank
        self._entries: Dict[Tuple[bytes, bytes, int], CachedResult] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(cert_id: CertID) -> Tuple[bytes, bytes, int]:
        return (cert_id.issuer_name_hash, cert_id.issuer_key_hash,
                cert_id.serial_number)

    def store(self, cert_id: CertID, check: OCSPCheckResult, now: int) -> bool:
        """Cache a *verified* result; returns True when stored."""
        if not check.ok or check.single is None or check.cert_status is None:
            return False
        if check.single.next_update is None and not self.cache_blank:
            return False
        self._entries[self._key(cert_id)] = CachedResult(
            cert_status=check.cert_status,
            this_update=check.single.this_update,
            next_update=check.single.next_update,
            stored_at=now,
        )
        return True

    def lookup(self, cert_id: CertID, now: int) -> Optional[CachedResult]:
        """Return a still-fresh cached result, or None."""
        entry = self._entries.get(self._key(cert_id))
        if entry is None:
            self.misses += 1
            return None
        if entry.next_update is not None and now > entry.next_update:
            del self._entries[self._key(cert_id)]
            self.misses += 1
            return None
        if self.max_age is not None and now - entry.stored_at > self.max_age:
            del self._entries[self._key(cert_id)]
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def evict(self, cert_id: CertID) -> None:
        """Forget one entry."""
        self._entries.pop(self._key(cert_id), None)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def staleness_window(validity_period: Optional[int],
                     max_age: Optional[int]) -> Optional[int]:
    """Worst-case seconds a client may trust a pre-revocation status.

    None means unbounded — the blank-nextUpdate + no-max-age case the
    paper warns about.
    """
    if validity_period is None:
        return max_age
    if max_age is None:
        return validity_period
    return min(validity_period, max_age)
