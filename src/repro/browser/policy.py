"""Browser revocation-checking policy and connection pipeline.

A :class:`BrowserPolicy` captures the three behaviours the paper tests
per browser (Table 2):

1. does it *request* a stapled OCSP response (status_request)?
2. does it *respect* OCSP Must-Staple (hard-fail without a staple)?
3. does it *send its own OCSP request* when no staple arrives?

:func:`connect` drives one TLS connection through chain validation,
staple verification, Must-Staple enforcement, and the optional
client-side OCSP fallback — returning a :class:`BrowsingOutcome` that
records what the paper's packet captures observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..ocsp import CertID, OCSPError, OCSPRequest, verify_response
from ..simnet import Network, ocsp_post
from ..tls import ClientHello
from ..x509 import Certificate, TrustStore, validate_chain


class Verdict(Enum):
    """How the browser disposed of the connection."""

    ACCEPTED = "accepted"
    ACCEPTED_SOFT_FAIL = "accepted without revocation information"
    REJECTED_CERT_INVALID = "rejected: certificate chain invalid"
    REJECTED_REVOKED = "rejected: certificate revoked"
    REJECTED_MUST_STAPLE = "rejected: Must-Staple with no valid staple"


@dataclass(frozen=True)
class BrowserPolicy:
    """One browser/OS combination's revocation behaviour."""

    name: str
    os: str
    mobile: bool = False
    #: Sends the Certificate Status Request extension (Table 2 row 1).
    sends_status_request: bool = True
    #: Hard-fails Must-Staple certificates without a staple (row 2).
    respects_must_staple: bool = False
    #: Falls back to its own OCSP fetch when no staple arrives (row 3).
    fallback_own_ocsp: bool = False
    #: Consults a pushed CRLSet (Chrome's mechanism, related work [16]).
    uses_crlset: bool = False

    @property
    def label(self) -> str:
        """Display label, e.g. ``"Firefox 60 (Linux)"``."""
        return f"{self.name} ({self.os})"


@dataclass
class BrowsingOutcome:
    """Everything observable about one connection attempt."""

    verdict: Verdict
    sent_status_request: bool
    staple_received: bool = False
    staple_valid: bool = False
    own_ocsp_request_sent: bool = False
    staple_error: Optional[OCSPError] = None

    @property
    def connected(self) -> bool:
        """True when the page loaded (with or without revocation info)."""
        return self.verdict in (Verdict.ACCEPTED, Verdict.ACCEPTED_SOFT_FAIL)


def connect(policy: BrowserPolicy, server, hostname: str, trust_store: TrustStore,
            now: int, network: Optional[Network] = None,
            vantage: str = "Virginia", crlset=None,
            ocsp_client=None) -> BrowsingOutcome:
    """Simulate *policy* connecting to *server* for *hostname*.

    *server* is anything with ``handle_connection(ClientHello, now)``
    (the web server models).  *network* enables the client-side OCSP
    fallback path; without it a fallback-configured browser soft-fails.
    *crlset* supplies a pushed revocation set consulted by
    ``uses_crlset`` policies (Chrome's out-of-band mechanism).
    *ocsp_client* optionally replaces the single bare fetch of the
    fallback path with a :class:`repro.ocsp.OCSPClient`, whose policy
    adds multi-URL failover, retries, and CRL fallback (the chaos
    experiments pass one built by ``repro.faults.for_browser``).
    """
    hello = ClientHello(server_name=hostname,
                        status_request=policy.sends_status_request)
    handshake = server.handle_connection(hello, now)
    chain = handshake.certificate_chain
    leaf = chain[0]

    validation = validate_chain(chain, trust_store, now, hostname=hostname)
    if not validation.valid:
        return BrowsingOutcome(
            verdict=Verdict.REJECTED_CERT_INVALID,
            sent_status_request=policy.sends_status_request,
            staple_received=handshake.stapled_ocsp is not None,
        )

    issuer = chain[1] if len(chain) > 1 else leaf
    cert_id = CertID.for_certificate(leaf, issuer)

    # CRLSet check: offline, immune to network attackers, but only as
    # good as its curated coverage.
    if policy.uses_crlset and crlset is not None:
        from .crlset import check_with_crlset
        if check_with_crlset(crlset, leaf, issuer):
            return BrowsingOutcome(
                verdict=Verdict.REJECTED_REVOKED,
                sent_status_request=policy.sends_status_request,
                staple_received=handshake.stapled_ocsp is not None,
            )

    staple_received = handshake.stapled_ocsp is not None
    staple_valid = False
    staple_error: Optional[OCSPError] = None
    if staple_received and policy.sends_status_request:
        check = verify_response(handshake.stapled_ocsp, cert_id, issuer, now)
        staple_error = check.error
        if check.ok:
            staple_valid = True
            if check.revoked:
                return BrowsingOutcome(
                    verdict=Verdict.REJECTED_REVOKED,
                    sent_status_request=True,
                    staple_received=True,
                    staple_valid=True,
                )
            return BrowsingOutcome(
                verdict=Verdict.ACCEPTED,
                sent_status_request=True,
                staple_received=True,
                staple_valid=True,
            )

    # No valid staple from here on.
    if leaf.must_staple and policy.respects_must_staple:
        return BrowsingOutcome(
            verdict=Verdict.REJECTED_MUST_STAPLE,
            sent_status_request=policy.sends_status_request,
            staple_received=staple_received,
            staple_valid=False,
            staple_error=staple_error,
        )

    if policy.fallback_own_ocsp and ocsp_client is not None and leaf.ocsp_urls:
        lookup = ocsp_client.check(leaf, issuer, now)
        if lookup.ok:
            from ..ocsp import CertStatus
            verdict = (Verdict.REJECTED_REVOKED
                       if lookup.status is CertStatus.REVOKED
                       else Verdict.ACCEPTED)
            return BrowsingOutcome(
                verdict=verdict,
                sent_status_request=policy.sends_status_request,
                staple_received=staple_received,
                own_ocsp_request_sent=True,
            )
        return BrowsingOutcome(
            verdict=Verdict.ACCEPTED_SOFT_FAIL,
            sent_status_request=policy.sends_status_request,
            staple_received=staple_received,
            own_ocsp_request_sent=bool(lookup.attempts),
            staple_error=staple_error,
        )

    if policy.fallback_own_ocsp and network is not None and leaf.ocsp_urls:
        request = OCSPRequest.for_single(cert_id)
        result = network.fetch(vantage, ocsp_post(leaf.ocsp_urls[0], request.encode()), now)
        if result.ok:
            check = verify_response(result.response.body, cert_id, issuer, now)
            if check.ok and check.revoked:
                return BrowsingOutcome(
                    verdict=Verdict.REJECTED_REVOKED,
                    sent_status_request=policy.sends_status_request,
                    staple_received=staple_received,
                    own_ocsp_request_sent=True,
                )
            if check.ok:
                return BrowsingOutcome(
                    verdict=Verdict.ACCEPTED,
                    sent_status_request=policy.sends_status_request,
                    staple_received=staple_received,
                    own_ocsp_request_sent=True,
                )
        return BrowsingOutcome(
            verdict=Verdict.ACCEPTED_SOFT_FAIL,
            sent_status_request=policy.sends_status_request,
            staple_received=staple_received,
            own_ocsp_request_sent=True,
            staple_error=staple_error,
        )

    return BrowsingOutcome(
        verdict=Verdict.ACCEPTED_SOFT_FAIL,
        sent_status_request=policy.sends_status_request,
        staple_received=staple_received,
        staple_valid=staple_valid,
        staple_error=staple_error,
    )
