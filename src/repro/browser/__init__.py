"""Browser (client) models and the Table-2 test suite.

Reproduces the second principal of the paper: clients must understand
the Must-Staple extension, solicit stapled responses, and hard-fail
when none arrive (Section 2.4, item 2).
"""

from .policy import BrowserPolicy, BrowsingOutcome, Verdict, connect
from .cache import CachedResult, ClientOCSPCache, staleness_window
from .crlset import CRLSet, CRLSetDistributor, check_with_crlset
from .profiles import (
    ALL_BROWSERS,
    DESKTOP_BROWSERS,
    MOBILE_BROWSERS,
    by_label,
    hardened_browser,
)
from .harness import BrowserTestReport, BrowserTestRow, run_browser_tests

__all__ = [
    "ALL_BROWSERS",
    "BrowserPolicy",
    "CRLSet",
    "CRLSetDistributor",
    "CachedResult",
    "ClientOCSPCache",
    "check_with_crlset",
    "staleness_window",
    "BrowserTestReport",
    "BrowserTestRow",
    "BrowsingOutcome",
    "DESKTOP_BROWSERS",
    "MOBILE_BROWSERS",
    "Verdict",
    "by_label",
    "connect",
    "hardened_browser",
    "run_browser_tests",
]
