"""The browser population of the paper's Table 2.

"We then choose a variety of popular web browsers; Chrome, Firefox,
Opera, Safari, Internet Explorer, and Microsoft Edge on desktop OSes
(OS X, Linux, Windows) and mobile OSes (iOS and Android)."

Observed results encoded below: every browser requests a stapled OCSP
response; only Firefox 60 on the three desktop OSes and on Android
respects Must-Staple; Firefox on iOS does not (it must use the system
WebKit stack); and none of the soft-failing browsers sends its own
OCSP request when the staple is missing.
"""

from __future__ import annotations

from typing import Dict, List

from .policy import BrowserPolicy

DESKTOP_BROWSERS: List[BrowserPolicy] = [
    BrowserPolicy("Chrome 66", "OS X", uses_crlset=True),
    BrowserPolicy("Chrome 66", "Linux", uses_crlset=True),
    BrowserPolicy("Chrome 66", "Windows", uses_crlset=True),
    BrowserPolicy("Firefox 60", "OS X", respects_must_staple=True),
    BrowserPolicy("Firefox 60", "Linux", respects_must_staple=True),
    BrowserPolicy("Firefox 60", "Windows", respects_must_staple=True),
    BrowserPolicy("Opera", "OS X"),
    BrowserPolicy("Opera", "Windows"),
    BrowserPolicy("Safari 11", "OS X"),
    BrowserPolicy("IE 11", "Windows"),
    BrowserPolicy("Edge 42", "Windows"),
]

MOBILE_BROWSERS: List[BrowserPolicy] = [
    BrowserPolicy("Safari", "iOS", mobile=True),
    BrowserPolicy("Chrome", "iOS", mobile=True),
    BrowserPolicy("Chrome", "Android", mobile=True),
    BrowserPolicy("Firefox", "iOS", mobile=True),  # no Must-Staple on iOS
    BrowserPolicy("Firefox", "Android", mobile=True, respects_must_staple=True),
]

ALL_BROWSERS: List[BrowserPolicy] = DESKTOP_BROWSERS + MOBILE_BROWSERS


def hardened_browser() -> BrowserPolicy:
    """A hypothetical browser doing everything right — respects
    Must-Staple *and* falls back to its own OCSP request otherwise.
    Used by the what-if analyses and tests, not by Table 2."""
    return BrowserPolicy(
        "Hardened", "any",
        respects_must_staple=True,
        fallback_own_ocsp=True,
    )


def by_label() -> Dict[str, BrowserPolicy]:
    """Index the Table-2 population by display label."""
    return {policy.label: policy for policy in ALL_BROWSERS}
