"""Dotted ``module:function`` entrypoint references.

The runtime names every entrypoint it will call later — experiment
runners on registry entries, shard workers on :class:`~repro.runtime.
executor.ShardSpec` — as a dotted ``module:function`` string.  This
module is the *single* implementation of that convention:

* :func:`parse_ref` / :func:`resolve_ref` are what the runtime uses to
  import an entrypoint at execution time;
* :data:`REF_PATTERN` and :func:`is_ref` are what the static analyzer
  (:mod:`repro.analyze`) uses to *discover* declared entrypoints in
  source text.

Because both sides share one grammar and one resolution order, a ref
that imports fine at runtime but is invisible to the effect analyzer
(or vice versa) is impossible by construction — the property the
purity contract of :mod:`repro.analyze.contracts` rests on.

Refs must name module-level functions (or classes) reachable by a
plain ``getattr`` after import: no lambdas, closures, or instance
attributes.  That restriction is what keeps every entrypoint picklable
*and* statically resolvable.
"""

from __future__ import annotations

import importlib
import re
from typing import Any, Tuple

#: The textual grammar of an entrypoint ref.  Anchored so arbitrary
#: prose containing a colon never matches; the module side must be a
#: dotted identifier path, the attribute side a single identifier.
REF_PATTERN = re.compile(
    r"^(?P<module>[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)+)"
    r":(?P<name>[A-Za-z_][A-Za-z0-9_]*)$")


def is_ref(text: str) -> bool:
    """True when *text* is syntactically a ``module:function`` ref."""
    return bool(REF_PATTERN.match(text))


def parse_ref(dotted: str) -> Tuple[str, str]:
    """Split a ref into ``(module, name)``; raises ``ValueError``."""
    match = REF_PATTERN.match(dotted)
    if match is None:
        raise ValueError(
            f"entrypoint must be 'package.module:function', got {dotted!r}")
    return match.group("module"), match.group("name")


def resolve_ref(dotted: str) -> Any:
    """Import a ref's module and return the named attribute.

    Raises ``ValueError`` naming the ref on a malformed string or a
    module without the attribute (so callers report the exact dotted
    entrypoint that failed, not a bare ``AttributeError``).
    """
    module_name, attr_name = parse_ref(dotted)
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr_name)
    except AttributeError:
        raise ValueError(
            f"entrypoint {dotted!r}: module {module_name!r} has no "
            f"attribute {attr_name!r}") from None
