"""From-scratch X.509: names, extensions, certificates, CRLs, chains.

Every certificate in the simulation — roots, intermediates, leaves,
delegated OCSP signers — is a real DER object built and parsed by this
package, with real RSA signatures from :mod:`repro.crypto`.
"""

from .name import Name
from .extensions import (
    Extension,
    Extensions,
    BasicConstraints,
    REASON_NAMES,
    REASON_KEY_COMPROMISE,
    REASON_SUPERSEDED,
    REASON_UNSPECIFIED,
    REASON_CESSATION_OF_OPERATION,
    TLS_FEATURE_STATUS_REQUEST,
    make_aia_extension,
    make_basic_constraints_extension,
    make_crl_dp_extension,
    make_eku_extension,
    make_ocsp_nocheck_extension,
    make_san_extension,
    make_tls_feature_extension,
)
from .certificate import Certificate, Validity, parse_certificate_chain
from .builder import CertificateBuilder, self_signed
from .crl import CRLBuilder, CertificateList, RevokedCertificate
from .rootstores import RootStorePopulation, STORE_NAMES, StoreMembership
from .pem import (
    certificate_to_pem,
    certificates_from_pem,
    chain_to_pem,
    crl_from_pem,
    crl_to_pem,
    decode_pem,
    encode_pem,
)
from .verify import (
    ChainError,
    ChainValidationResult,
    TrustStore,
    build_chain,
    validate,
    validate_chain,
)

__all__ = [
    "BasicConstraints",
    "CRLBuilder",
    "Certificate",
    "CertificateBuilder",
    "CertificateList",
    "RootStorePopulation",
    "STORE_NAMES",
    "StoreMembership",
    "certificate_to_pem",
    "certificates_from_pem",
    "chain_to_pem",
    "crl_from_pem",
    "crl_to_pem",
    "decode_pem",
    "encode_pem",
    "ChainError",
    "ChainValidationResult",
    "Extension",
    "Extensions",
    "Name",
    "REASON_NAMES",
    "REASON_KEY_COMPROMISE",
    "REASON_SUPERSEDED",
    "REASON_UNSPECIFIED",
    "REASON_CESSATION_OF_OPERATION",
    "RevokedCertificate",
    "TLS_FEATURE_STATUS_REQUEST",
    "TrustStore",
    "Validity",
    "build_chain",
    "make_aia_extension",
    "make_basic_constraints_extension",
    "make_crl_dp_extension",
    "make_eku_extension",
    "make_ocsp_nocheck_extension",
    "make_san_extension",
    "make_tls_feature_extension",
    "parse_certificate_chain",
    "self_signed",
    "validate",
    "validate_chain",
]
