"""X.509 certificates: the parsed model and DER parsing.

A :class:`Certificate` wraps the original DER bytes plus a parsed view.
Signature verification always runs over the *original* TBS bytes, never
a re-encoding — exactly how a real validator must behave (and how the
paper's measurement clients validated responses).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional

from ..asn1 import ObjectIdentifier, Reader, oid
from ..asn1.errors import DecodeError
from ..crypto import RSAPublicKey, decode_spki, is_valid
from .extensions import Extensions
from .name import Name

_SUPPORTED_SIGNATURE_ALGORITHMS = {
    oid.SHA256_WITH_RSA: "sha256",
    oid.SHA1_WITH_RSA: "sha1",
}


@dataclass(frozen=True)
class Validity:
    """A notBefore/notAfter window in POSIX seconds."""

    not_before: int
    not_after: int

    def contains(self, timestamp: int) -> bool:
        """True when *timestamp* lies in the window (inclusive)."""
        return self.not_before <= timestamp <= self.not_after

    @property
    def lifetime(self) -> int:
        """Window length in seconds."""
        return self.not_after - self.not_before


class Certificate:
    """A parsed X.509 v3 certificate bound to its DER encoding."""

    def __init__(self, der: bytes, tbs_der: bytes, version: int, serial_number: int,
                 signature_algorithm: ObjectIdentifier, issuer: Name,
                 validity: Validity, subject: Name, public_key: RSAPublicKey,
                 spki_der: bytes, extensions: Extensions, signature: bytes) -> None:
        self.der = der
        self.tbs_der = tbs_der
        self.version = version
        self.serial_number = serial_number
        self.signature_algorithm = signature_algorithm
        self.issuer = issuer
        self.validity = validity
        self.subject = subject
        self.public_key = public_key
        self.spki_der = spki_der
        self.extensions = extensions
        self.signature = signature

    # -- parsing -------------------------------------------------------------

    @classmethod
    def from_der(cls, der: bytes, lenient: bool = False) -> "Certificate":
        """Parse a DER Certificate."""
        reader = Reader(der, lenient=lenient)
        certificate = reader.read_sequence()
        tbs_der = certificate.read_raw_element()
        signature_algorithm = _read_algorithm_identifier(certificate.read_sequence())
        signature = certificate.read_bit_string()
        certificate.expect_end()

        tbs = Reader(tbs_der, lenient=lenient).read_sequence()
        version = 1
        version_field = tbs.maybe_context(0)
        if version_field is not None:
            version = version_field.read_integer() + 1
            version_field.expect_end()
        serial_number = tbs.read_integer()
        tbs_signature_algorithm = _read_algorithm_identifier(tbs.read_sequence())
        if tbs_signature_algorithm != signature_algorithm:
            raise DecodeError("TBS and outer signature algorithms differ")
        issuer = Name.decode(tbs)
        validity_seq = tbs.read_sequence()
        validity = Validity(validity_seq.read_time(), validity_seq.read_time())
        validity_seq.expect_end()
        subject = Name.decode(tbs)
        spki_der = tbs.read_raw_element()
        public_key = decode_spki(spki_der)
        extensions = Extensions()
        extension_wrapper = tbs.maybe_context(3)
        if extension_wrapper is not None:
            extensions = Extensions.decode(extension_wrapper)
            extension_wrapper.expect_end()
        tbs.expect_end()

        return cls(
            der=der,
            tbs_der=tbs_der,
            version=version,
            serial_number=serial_number,
            signature_algorithm=signature_algorithm,
            issuer=issuer,
            validity=validity,
            subject=subject,
            public_key=public_key,
            spki_der=spki_der,
            extensions=extensions,
            signature=signature,
        )

    # -- convenience ---------------------------------------------------------

    @property
    def ocsp_urls(self) -> List[str]:
        """OCSP responder URLs (AIA)."""
        return self.extensions.ocsp_urls

    @property
    def crl_urls(self) -> List[str]:
        """CRL distribution point URLs."""
        return self.extensions.crl_urls

    @property
    def must_staple(self) -> bool:
        """True when this certificate carries the OCSP Must-Staple extension."""
        return self.extensions.must_staple

    @property
    def is_ca(self) -> bool:
        """True when BasicConstraints marks a CA certificate."""
        return self.extensions.is_ca

    @property
    def is_self_signed(self) -> bool:
        """True when issuer == subject (the root heuristic)."""
        return self.issuer == self.subject

    @property
    def dns_names(self) -> List[str]:
        """All names the certificate is valid for (SAN, falling back to CN)."""
        names = self.extensions.subject_alt_names
        if names:
            return names
        common_name = self.subject.common_name
        return [common_name] if common_name else []

    def matches_hostname(self, hostname: str) -> bool:
        """RFC 6125-style match, supporting single-label wildcards."""
        hostname = hostname.lower().rstrip(".")
        for pattern in self.dns_names:
            pattern = pattern.lower().rstrip(".")
            if pattern == hostname:
                return True
            if pattern.startswith("*."):
                suffix = pattern[1:]  # ".example.com"
                if hostname.endswith(suffix) and "." not in hostname[: -len(suffix)]:
                    return True
        return False

    def fingerprint(self) -> bytes:
        """SHA-256 of the DER certificate."""
        return hashlib.sha256(self.der).digest()

    def key_hash_sha1(self) -> bytes:
        """SHA-1 of the subject public key BIT STRING content (CertID issuerKeyHash)."""
        spki = Reader(self.spki_der).read_sequence()
        spki.read_sequence()  # algorithm
        key_bits = spki.read_bit_string()
        return hashlib.sha1(key_bits).digest()

    def signature_hash_name(self) -> str:
        """The hashlib name of the signature digest ("sha256"/"sha1")."""
        name = _SUPPORTED_SIGNATURE_ALGORITHMS.get(self.signature_algorithm)
        if name is None:
            raise DecodeError(
                f"unsupported signature algorithm: {self.signature_algorithm}"
            )
        return name

    def verify_signature(self, issuer_key: RSAPublicKey) -> bool:
        """Check the certificate signature against *issuer_key*."""
        return is_valid(
            issuer_key, self.tbs_der, self.signature, self.signature_hash_name()
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Certificate):
            return NotImplemented
        return self.der == other.der

    def __hash__(self) -> int:
        return hash(self.der)

    def __repr__(self) -> str:
        subject = self.subject.common_name or self.subject.rfc4514()
        flags = []
        if self.is_ca:
            flags.append("CA")
        if self.must_staple:
            flags.append("must-staple")
        suffix = f" [{','.join(flags)}]" if flags else ""
        return f"Certificate(serial={self.serial_number:#x}, subject={subject!r}{suffix})"


def _read_algorithm_identifier(sequence: Reader) -> ObjectIdentifier:
    """Read an AlgorithmIdentifier, tolerating absent or NULL parameters."""
    algorithm = sequence.read_oid()
    if not sequence.at_end():
        sequence.read_tlv()  # parameters (NULL for RSA)
    sequence.expect_end()
    return algorithm


def parse_certificate_chain(der_blobs: List[bytes]) -> List[Certificate]:
    """Parse a list of DER blobs into certificates, preserving order."""
    return [Certificate.from_der(blob) for blob in der_blobs]
