"""PEM armor (RFC 7468) for certificates, CRLs, and keys.

Real deployments move certificates around as PEM; the corpus
materializer and the examples use this for file interchange.
"""

from __future__ import annotations

import base64
import binascii
import re
from typing import List, Tuple

from .certificate import Certificate
from .crl import CertificateList

_LINE_LENGTH = 64
_BLOCK_RE = re.compile(
    r"-----BEGIN ([A-Z0-9 ]+)-----\s*(.*?)\s*-----END \1-----",
    re.DOTALL,
)

CERTIFICATE_LABEL = "CERTIFICATE"
CRL_LABEL = "X509 CRL"
OCSP_REQUEST_LABEL = "OCSP REQUEST"
OCSP_RESPONSE_LABEL = "OCSP RESPONSE"


def encode_pem(der: bytes, label: str) -> str:
    """Wrap DER bytes in PEM armor with 64-character lines."""
    body = base64.b64encode(der).decode("ascii")
    lines = [body[i:i + _LINE_LENGTH] for i in range(0, len(body), _LINE_LENGTH)]
    return (
        f"-----BEGIN {label}-----\n"
        + "\n".join(lines)
        + f"\n-----END {label}-----\n"
    )


def decode_pem(text: str) -> List[Tuple[str, bytes]]:
    """Extract every (label, DER) block from *text*.

    Raises ValueError when a block's base64 payload is invalid; text
    outside blocks is ignored, as PEM consumers traditionally do.
    """
    blocks = []
    for match in _BLOCK_RE.finditer(text):
        label = match.group(1)
        payload = re.sub(r"\s+", "", match.group(2))
        try:
            der = base64.b64decode(payload, validate=True)
        except (binascii.Error, ValueError) as exc:
            raise ValueError(f"invalid base64 in PEM block {label!r}") from exc
        blocks.append((label, der))
    return blocks


def certificate_to_pem(certificate: Certificate) -> str:
    """PEM-encode one certificate."""
    return encode_pem(certificate.der, CERTIFICATE_LABEL)


def certificates_from_pem(text: str) -> List[Certificate]:
    """Parse every CERTIFICATE block in *text* (e.g. a chain file)."""
    return [
        Certificate.from_der(der)
        for label, der in decode_pem(text)
        if label == CERTIFICATE_LABEL
    ]


def chain_to_pem(chain: List[Certificate]) -> str:
    """PEM-encode a chain file, leaf first."""
    return "".join(certificate_to_pem(certificate) for certificate in chain)


def crl_to_pem(crl: CertificateList) -> str:
    """PEM-encode a CRL."""
    return encode_pem(crl.der, CRL_LABEL)


def crl_from_pem(text: str) -> CertificateList:
    """Parse the first X509 CRL block in *text*."""
    for label, der in decode_pem(text):
        if label == CRL_LABEL:
            return CertificateList.from_der(der)
    raise ValueError("no X509 CRL block found")
