"""Certificate construction and signing.

:class:`CertificateBuilder` assembles a TBSCertificate, signs it with
the issuer's key, and returns a parsed :class:`Certificate`.  CAs in
:mod:`repro.ca` drive this; the fault-injecting responders never need a
broken builder because corruption happens at the byte level downstream.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..asn1 import ObjectIdentifier, encoder, oid
from ..crypto import RSAPrivateKey, RSAPublicKey, encode_spki, sign
from .certificate import Certificate
from .extensions import (
    Extension,
    make_aia_extension,
    make_basic_constraints_extension,
    make_crl_dp_extension,
    make_eku_extension,
    make_ocsp_nocheck_extension,
    make_san_extension,
    make_tls_feature_extension,
)
from .name import Name

_HASH_TO_ALGORITHM = {
    "sha256": oid.SHA256_WITH_RSA,
    "sha1": oid.SHA1_WITH_RSA,
}


class CertificateBuilder:
    """A fluent builder for X.509 v3 certificates."""

    def __init__(self) -> None:
        self._serial_number: Optional[int] = None
        self._issuer: Optional[Name] = None
        self._subject: Optional[Name] = None
        self._public_key: Optional[RSAPublicKey] = None
        self._not_before: Optional[int] = None
        self._not_after: Optional[int] = None
        self._extensions: List[Extension] = []
        self._hash_name = "sha256"

    def serial_number(self, serial: int) -> "CertificateBuilder":
        """Set the serial number (must be positive per RFC 5280)."""
        if serial <= 0:
            raise ValueError("serial numbers must be positive")
        self._serial_number = serial
        return self

    def issuer(self, name: Name) -> "CertificateBuilder":
        """Set the issuer name."""
        self._issuer = name
        return self

    def subject(self, name: Name) -> "CertificateBuilder":
        """Set the subject name."""
        self._subject = name
        return self

    def public_key(self, key: RSAPublicKey) -> "CertificateBuilder":
        """Set the subject public key."""
        self._public_key = key
        return self

    def validity(self, not_before: int, not_after: int) -> "CertificateBuilder":
        """Set the validity window (POSIX seconds)."""
        if not_after < not_before:
            raise ValueError("notAfter precedes notBefore")
        self._not_before = not_before
        self._not_after = not_after
        return self

    def hash_algorithm(self, hash_name: str) -> "CertificateBuilder":
        """Choose the signature digest ("sha256" default, "sha1" legacy)."""
        if hash_name not in _HASH_TO_ALGORITHM:
            raise ValueError(f"unsupported hash: {hash_name}")
        self._hash_name = hash_name
        return self

    def add_extension(self, extension: Extension) -> "CertificateBuilder":
        """Append an arbitrary pre-built extension."""
        self._extensions.append(extension)
        return self

    # -- high-level extension helpers ----------------------------------------

    def ca(self, path_length: Optional[int] = None) -> "CertificateBuilder":
        """Mark as a CA certificate via BasicConstraints."""
        return self.add_extension(make_basic_constraints_extension(True, path_length))

    def leaf(self) -> "CertificateBuilder":
        """Mark as an end-entity certificate via BasicConstraints."""
        return self.add_extension(make_basic_constraints_extension(False))

    def dns_names(self, names: Sequence[str]) -> "CertificateBuilder":
        """Add a SubjectAltName with dNSName entries."""
        return self.add_extension(make_san_extension(names))

    def ocsp_url(self, *urls: str) -> "CertificateBuilder":
        """Add an AIA extension pointing at OCSP responder URLs."""
        return self.add_extension(make_aia_extension(list(urls)))

    def aia(self, ocsp_urls: Sequence[str],
            ca_issuer_urls: Sequence[str] = ()) -> "CertificateBuilder":
        """Add a full AIA extension."""
        return self.add_extension(make_aia_extension(ocsp_urls, ca_issuer_urls))

    def crl_url(self, *urls: str) -> "CertificateBuilder":
        """Add a CRLDistributionPoints extension."""
        return self.add_extension(make_crl_dp_extension(list(urls)))

    def must_staple(self) -> "CertificateBuilder":
        """Add the OCSP Must-Staple (TLSFeature) extension."""
        return self.add_extension(make_tls_feature_extension())

    def server_auth(self) -> "CertificateBuilder":
        """Add an EKU for TLS server authentication."""
        return self.add_extension(make_eku_extension([oid.EKU_SERVER_AUTH]))

    def ocsp_signing(self) -> "CertificateBuilder":
        """Add EKU OCSPSigning + ocsp-nocheck for delegated responders."""
        self.add_extension(make_eku_extension([oid.EKU_OCSP_SIGNING]))
        return self.add_extension(make_ocsp_nocheck_extension())

    # -- signing -------------------------------------------------------------

    def sign(self, issuer_key: RSAPrivateKey) -> Certificate:
        """Assemble, sign, and return the parsed certificate."""
        missing = [
            field for field, value in (
                ("serial_number", self._serial_number),
                ("issuer", self._issuer),
                ("subject", self._subject),
                ("public_key", self._public_key),
                ("not_before", self._not_before),
                ("not_after", self._not_after),
            ) if value is None
        ]
        if missing:
            raise ValueError(f"builder incomplete, missing: {', '.join(missing)}")

        algorithm = encoder.encode_sequence(
            encoder.encode_oid(_HASH_TO_ALGORITHM[self._hash_name]),
            encoder.encode_null(),
        )
        tbs_parts = [
            encoder.encode_explicit(0, encoder.encode_integer(2)),  # v3
            encoder.encode_integer(self._serial_number),
            algorithm,
            self._issuer.encode(),
            encoder.encode_sequence(
                encoder.encode_x509_time(self._not_before),
                encoder.encode_x509_time(self._not_after),
            ),
            self._subject.encode(),
            encode_spki(self._public_key),
        ]
        if self._extensions:
            extensions_der = encoder.encode_sequence(
                *(extension.encode() for extension in self._extensions)
            )
            tbs_parts.append(encoder.encode_explicit(3, extensions_der))
        tbs = encoder.encode_sequence(*tbs_parts)
        signature = sign(issuer_key, tbs, self._hash_name)
        certificate_der = encoder.encode_sequence(
            tbs, algorithm, encoder.encode_bit_string(signature)
        )
        return Certificate.from_der(certificate_der)


def self_signed(subject: Name, key: RSAPrivateKey, serial: int,
                not_before: int, not_after: int) -> Certificate:
    """Build a self-signed CA root certificate."""
    return (
        CertificateBuilder()
        .serial_number(serial)
        .issuer(subject)
        .subject(subject)
        .public_key(key.public_key)
        .validity(not_before, not_after)
        .ca()
        .sign(key)
    )
