"""Certificate Revocation Lists (RFC 5280 section 5).

A :class:`CertificateList` carries the parsed revoked-entry table plus
the original DER, so CRL signatures verify over the bytes that were
published.  The builder supports per-entry reason codes — or their
omission, which the paper observes is the overwhelmingly common case
("the vast majority of the revocations actually include no reason
code") and is the source of 99.99% of the Table-1 reason mismatches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..asn1 import ObjectIdentifier, Reader, encoder, oid, tags
from ..asn1.errors import DecodeError
from ..crypto import RSAPrivateKey, RSAPublicKey, is_valid, sign
from .extensions import Extension, Extensions, decode_crl_reason, encode_crl_reason
from .name import Name

_HASH_TO_ALGORITHM = {
    "sha256": oid.SHA256_WITH_RSA,
    "sha1": oid.SHA1_WITH_RSA,
}
_ALGORITHM_TO_HASH = {v: k for k, v in _HASH_TO_ALGORITHM.items()}


@dataclass(frozen=True)
class RevokedCertificate:
    """One CRL entry: serial, revocation time, optional reason code."""

    serial_number: int
    revocation_date: int
    reason: Optional[int] = None

    def encode(self) -> bytes:
        parts = [
            encoder.encode_integer(self.serial_number),
            encoder.encode_x509_time(self.revocation_date),
        ]
        if self.reason is not None:
            reason_extension = Extension(
                oid.CRL_REASON, critical=False, value=encode_crl_reason(self.reason)
            )
            parts.append(encoder.encode_sequence(reason_extension.encode()))
        return encoder.encode_sequence(*parts)

    @classmethod
    def decode(cls, reader: Reader) -> "RevokedCertificate":
        entry = reader.read_sequence()
        serial_number = entry.read_integer()
        revocation_date = entry.read_time()
        reason = None
        if not entry.at_end():
            extensions = Extensions.decode(entry)
            reason_extension = extensions.get(oid.CRL_REASON)
            if reason_extension is not None:
                reason = decode_crl_reason(reason_extension.value)
        entry.expect_end()
        return cls(serial_number, revocation_date, reason)


class CertificateList:
    """A parsed CRL bound to its DER encoding."""

    def __init__(self, der: bytes, tbs_der: bytes, issuer: Name, this_update: int,
                 next_update: Optional[int], revoked: Sequence[RevokedCertificate],
                 signature_algorithm: ObjectIdentifier, signature: bytes) -> None:
        self.der = der
        self.tbs_der = tbs_der
        self.issuer = issuer
        self.this_update = this_update
        self.next_update = next_update
        self.revoked = list(revoked)
        self.signature_algorithm = signature_algorithm
        self.signature = signature
        self._by_serial: Dict[int, RevokedCertificate] = {
            entry.serial_number: entry for entry in self.revoked
        }

    @classmethod
    def from_der(cls, der: bytes) -> "CertificateList":
        """Parse a DER CertificateList."""
        reader = Reader(der)
        outer = reader.read_sequence()
        tbs_der = outer.read_raw_element()
        algorithm_seq = outer.read_sequence()
        signature_algorithm = algorithm_seq.read_oid()
        if not algorithm_seq.at_end():
            algorithm_seq.read_tlv()
        signature = outer.read_bit_string()
        outer.expect_end()

        tbs = Reader(tbs_der).read_sequence()
        if tbs.peek_tag() == tags.INTEGER:
            version = tbs.read_integer()
            if version != 1:  # v2 encoded as 1
                raise DecodeError(f"unsupported CRL version: {version}")
        inner_algorithm = tbs.read_sequence()
        inner_algorithm.read_oid()
        if not inner_algorithm.at_end():
            inner_algorithm.read_tlv()
        issuer = Name.decode(tbs)
        this_update = tbs.read_time()
        next_update = None
        if not tbs.at_end() and tbs.peek_tag() in (tags.UTC_TIME, tags.GENERALIZED_TIME):
            next_update = tbs.read_time()
        revoked: List[RevokedCertificate] = []
        if not tbs.at_end() and tbs.peek_tag() == tags.SEQUENCE:
            revoked_seq = tbs.read_sequence()
            while not revoked_seq.at_end():
                revoked.append(RevokedCertificate.decode(revoked_seq))
        if not tbs.at_end():
            tbs.maybe_context(0)  # crlExtensions, ignored
        return cls(
            der=der,
            tbs_der=tbs_der,
            issuer=issuer,
            this_update=this_update,
            next_update=next_update,
            revoked=revoked,
            signature_algorithm=signature_algorithm,
            signature=signature,
        )

    def lookup(self, serial_number: int) -> Optional[RevokedCertificate]:
        """Return the entry for *serial_number*, or None when not revoked."""
        return self._by_serial.get(serial_number)

    def is_revoked(self, serial_number: int) -> bool:
        """True when the serial appears on this CRL."""
        return serial_number in self._by_serial

    def is_fresh(self, now: int) -> bool:
        """True when *now* falls in [thisUpdate, nextUpdate]."""
        if now < self.this_update:
            return False
        return self.next_update is None or now <= self.next_update

    def verify_signature(self, issuer_key: RSAPublicKey) -> bool:
        """Verify the CRL signature over the original TBS bytes."""
        hash_name = _ALGORITHM_TO_HASH.get(self.signature_algorithm)
        if hash_name is None:
            return False
        return is_valid(issuer_key, self.tbs_der, self.signature, hash_name)

    @property
    def size_bytes(self) -> int:
        """Encoded size — the paper notes real CRLs reach 76 MB."""
        return len(self.der)

    def __len__(self) -> int:
        return len(self.revoked)

    def __repr__(self) -> str:
        return (
            f"CertificateList(issuer={self.issuer.common_name!r}, "
            f"entries={len(self.revoked)}, bytes={len(self.der)})"
        )


class CRLBuilder:
    """Builds and signs v2 CRLs."""

    def __init__(self, issuer: Name, hash_name: str = "sha256") -> None:
        if hash_name not in _HASH_TO_ALGORITHM:
            raise ValueError(f"unsupported hash: {hash_name}")
        self._issuer = issuer
        self._hash_name = hash_name
        self._entries: List[RevokedCertificate] = []
        self._this_update: Optional[int] = None
        self._next_update: Optional[int] = None

    def update_window(self, this_update: int,
                      next_update: Optional[int]) -> "CRLBuilder":
        """Set thisUpdate/nextUpdate."""
        if next_update is not None and next_update < this_update:
            raise ValueError("nextUpdate precedes thisUpdate")
        self._this_update = this_update
        self._next_update = next_update
        return self

    def add_entry(self, serial_number: int, revocation_date: int,
                  reason: Optional[int] = None) -> "CRLBuilder":
        """Add a revoked certificate entry."""
        self._entries.append(RevokedCertificate(serial_number, revocation_date, reason))
        return self

    def sign(self, issuer_key: RSAPrivateKey) -> CertificateList:
        """Assemble and sign the CRL."""
        if self._this_update is None:
            raise ValueError("update_window() not set")
        algorithm = encoder.encode_sequence(
            encoder.encode_oid(_HASH_TO_ALGORITHM[self._hash_name]),
            encoder.encode_null(),
        )
        tbs_parts = [
            encoder.encode_integer(1),  # v2
            algorithm,
            self._issuer.encode(),
            encoder.encode_x509_time(self._this_update),
        ]
        if self._next_update is not None:
            tbs_parts.append(encoder.encode_x509_time(self._next_update))
        if self._entries:
            tbs_parts.append(encoder.encode_sequence(
                *(entry.encode() for entry in self._entries)
            ))
        tbs = encoder.encode_sequence(*tbs_parts)
        signature = sign(issuer_key, tbs, self._hash_name)
        der = encoder.encode_sequence(
            tbs, algorithm, encoder.encode_bit_string(signature)
        )
        return CertificateList.from_der(der)
