"""X.509 v3 extensions: typed models plus DER encode/decode.

The set implemented is exactly what the paper's measurements rely on:

* ``AuthorityInformationAccess`` — where the OCSP responder URL lives
  (the paper extracts this from every Censys certificate),
* ``CRLDistributionPoints`` — where the CRL lives,
* ``TLSFeature`` — the OCSP Must-Staple extension itself (status_request
  feature number 5, RFC 7633),
* ``BasicConstraints`` / ``KeyUsage`` / ``ExtendedKeyUsage`` — chain
  validation and delegated OCSP-signer checks,
* ``SubjectAltName`` — domain matching in the TLS layer,
* ``OCSPNoCheck`` — marker on delegated responder certificates,
* ``CRLReason`` — per-entry revocation reason codes (Table 1 / Fig 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..asn1 import ObjectIdentifier, Reader, encoder, oid, tags
from ..asn1.errors import DecodeError

#: RFC 7633 TLS feature number for status_request (the Must-Staple signal).
TLS_FEATURE_STATUS_REQUEST = 5

#: RFC 5280 CRLReason codes.
REASON_UNSPECIFIED = 0
REASON_KEY_COMPROMISE = 1
REASON_CA_COMPROMISE = 2
REASON_AFFILIATION_CHANGED = 3
REASON_SUPERSEDED = 4
REASON_CESSATION_OF_OPERATION = 5
REASON_CERTIFICATE_HOLD = 6
REASON_REMOVE_FROM_CRL = 8
REASON_PRIVILEGE_WITHDRAWN = 9
REASON_AA_COMPROMISE = 10

REASON_NAMES: Dict[int, str] = {
    REASON_UNSPECIFIED: "unspecified",
    REASON_KEY_COMPROMISE: "keyCompromise",
    REASON_CA_COMPROMISE: "cACompromise",
    REASON_AFFILIATION_CHANGED: "affiliationChanged",
    REASON_SUPERSEDED: "superseded",
    REASON_CESSATION_OF_OPERATION: "cessationOfOperation",
    REASON_CERTIFICATE_HOLD: "certificateHold",
    REASON_REMOVE_FROM_CRL: "removeFromCRL",
    REASON_PRIVILEGE_WITHDRAWN: "privilegeWithdrawn",
    REASON_AA_COMPROMISE: "aACompromise",
}

_GENERAL_NAME_URI = 6  # [6] IA5String uniformResourceIdentifier
_GENERAL_NAME_DNS = 2  # [2] IA5String dNSName


@dataclass(frozen=True)
class Extension:
    """A raw extension: OID, criticality, and DER extnValue content."""

    extn_id: ObjectIdentifier
    critical: bool
    value: bytes

    def encode(self) -> bytes:
        """Encode as the Extension SEQUENCE."""
        parts = [encoder.encode_oid(self.extn_id)]
        if self.critical:
            parts.append(encoder.encode_boolean(True))
        parts.append(encoder.encode_octet_string(self.value))
        return encoder.encode_sequence(*parts)

    @classmethod
    def decode(cls, reader: Reader) -> "Extension":
        """Parse one Extension SEQUENCE from *reader*."""
        sequence = reader.read_sequence()
        extn_id = sequence.read_oid()
        critical = False
        if not sequence.at_end() and sequence.peek_tag() == tags.BOOLEAN:
            critical = sequence.read_boolean()
        value = sequence.read_octet_string()
        sequence.expect_end()
        return cls(extn_id=extn_id, critical=critical, value=value)


class Extensions:
    """An ordered extension collection with typed accessors."""

    def __init__(self, extensions: Sequence[Extension] = ()) -> None:
        self._extensions: List[Extension] = list(extensions)

    def add(self, extension: Extension) -> None:
        """Append an extension."""
        self._extensions.append(extension)

    def get(self, extn_id: ObjectIdentifier) -> Optional[Extension]:
        """Return the first extension with *extn_id*, or None."""
        for extension in self._extensions:
            if extension.extn_id == extn_id:
                return extension
        return None

    def __iter__(self):
        return iter(self._extensions)

    def __len__(self) -> int:
        return len(self._extensions)

    def encode(self) -> bytes:
        """Encode the Extensions SEQUENCE."""
        return encoder.encode_sequence(*(ext.encode() for ext in self._extensions))

    @classmethod
    def decode(cls, reader: Reader) -> "Extensions":
        """Parse an Extensions SEQUENCE from *reader*."""
        sequence = reader.read_sequence()
        extensions = []
        while not sequence.at_end():
            extensions.append(Extension.decode(sequence))
        return cls(extensions)

    # -- typed accessors -----------------------------------------------------

    @property
    def ocsp_urls(self) -> List[str]:
        """OCSP responder URLs from the AIA extension (possibly empty)."""
        extension = self.get(oid.AUTHORITY_INFORMATION_ACCESS)
        if extension is None:
            return []
        return decode_aia(extension.value).get(oid.AD_OCSP, [])

    @property
    def ca_issuer_urls(self) -> List[str]:
        """caIssuers URLs from the AIA extension (possibly empty)."""
        extension = self.get(oid.AUTHORITY_INFORMATION_ACCESS)
        if extension is None:
            return []
        return decode_aia(extension.value).get(oid.AD_CA_ISSUERS, [])

    @property
    def crl_urls(self) -> List[str]:
        """CRL URLs from the CRLDistributionPoints extension."""
        extension = self.get(oid.CRL_DISTRIBUTION_POINTS)
        if extension is None:
            return []
        return decode_crl_distribution_points(extension.value)

    @property
    def must_staple(self) -> bool:
        """True when the TLSFeature extension requests status_request."""
        extension = self.get(oid.TLS_FEATURE)
        if extension is None:
            return False
        return TLS_FEATURE_STATUS_REQUEST in decode_tls_feature(extension.value)

    @property
    def basic_constraints(self) -> Optional["BasicConstraints"]:
        """The decoded BasicConstraints, if present."""
        extension = self.get(oid.BASIC_CONSTRAINTS)
        if extension is None:
            return None
        return BasicConstraints.from_der(extension.value)

    @property
    def is_ca(self) -> bool:
        """True when BasicConstraints marks this certificate as a CA."""
        constraints = self.basic_constraints
        return constraints is not None and constraints.ca

    @property
    def subject_alt_names(self) -> List[str]:
        """dNSName entries of SubjectAltName."""
        extension = self.get(oid.SUBJECT_ALT_NAME)
        if extension is None:
            return []
        return decode_subject_alt_name(extension.value)

    @property
    def extended_key_usages(self) -> List[ObjectIdentifier]:
        """EKU purpose OIDs (empty when absent)."""
        extension = self.get(oid.EXTENDED_KEY_USAGE)
        if extension is None:
            return []
        return decode_extended_key_usage(extension.value)

    @property
    def has_ocsp_nocheck(self) -> bool:
        """True when the id-pkix-ocsp-nocheck marker is present."""
        return self.get(oid.OCSP_NOCHECK) is not None


@dataclass(frozen=True)
class BasicConstraints:
    """The BasicConstraints payload."""

    ca: bool
    path_length: Optional[int] = None

    def to_der(self) -> bytes:
        parts = []
        if self.ca:
            parts.append(encoder.encode_boolean(True))
            if self.path_length is not None:
                parts.append(encoder.encode_integer(self.path_length))
        return encoder.encode_sequence(*parts)

    @classmethod
    def from_der(cls, der: bytes) -> "BasicConstraints":
        sequence = Reader(der).read_sequence()
        ca = False
        path_length = None
        if not sequence.at_end() and sequence.peek_tag() == tags.BOOLEAN:
            ca = sequence.read_boolean()
        if not sequence.at_end():
            path_length = sequence.read_integer()
        sequence.expect_end()
        return cls(ca=ca, path_length=path_length)


# -- payload encoders --------------------------------------------------------

def encode_tls_feature(features: Sequence[int] = (TLS_FEATURE_STATUS_REQUEST,)) -> bytes:
    """Encode the TLSFeature payload — SEQUENCE OF INTEGER (RFC 7633)."""
    return encoder.encode_sequence(
        *(encoder.encode_integer(feature) for feature in features)
    )


def decode_tls_feature(der: bytes) -> List[int]:
    """Decode the TLSFeature payload to feature numbers."""
    sequence = Reader(der).read_sequence()
    features = []
    while not sequence.at_end():
        features.append(sequence.read_integer())
    return features


def encode_aia(ocsp_urls: Sequence[str] = (), ca_issuer_urls: Sequence[str] = ()) -> bytes:
    """Encode AuthorityInformationAccess with OCSP and caIssuers entries."""
    descriptions = []
    for url in ocsp_urls:
        descriptions.append(encoder.encode_sequence(
            encoder.encode_oid(oid.AD_OCSP),
            encoder.encode_implicit(_GENERAL_NAME_URI, url.encode("ascii")),
        ))
    for url in ca_issuer_urls:
        descriptions.append(encoder.encode_sequence(
            encoder.encode_oid(oid.AD_CA_ISSUERS),
            encoder.encode_implicit(_GENERAL_NAME_URI, url.encode("ascii")),
        ))
    return encoder.encode_sequence(*descriptions)


def decode_aia(der: bytes) -> Dict[ObjectIdentifier, List[str]]:
    """Decode AuthorityInformationAccess into {accessMethod: [urls]}."""
    sequence = Reader(der).read_sequence()
    result: Dict[ObjectIdentifier, List[str]] = {}
    while not sequence.at_end():
        description = sequence.read_sequence()
        method = description.read_oid()
        tag, content = description.read_tlv()
        description.expect_end()
        if tag == tags.context(_GENERAL_NAME_URI, constructed=False):
            result.setdefault(method, []).append(content.decode("ascii", "replace"))
    return result


def encode_crl_distribution_points(urls: Sequence[str]) -> bytes:
    """Encode CRLDistributionPoints with fullName URI entries."""
    points = []
    for url in urls:
        general_name = encoder.encode_implicit(_GENERAL_NAME_URI, url.encode("ascii"))
        full_name = encoder.encode_implicit(0, general_name, constructed=True)
        distribution_point_name = encoder.encode_implicit(0, full_name, constructed=True)
        points.append(encoder.encode_sequence(distribution_point_name))
    return encoder.encode_sequence(*points)


def decode_crl_distribution_points(der: bytes) -> List[str]:
    """Decode CRLDistributionPoints, returning URI fullNames."""
    sequence = Reader(der).read_sequence()
    urls = []
    while not sequence.at_end():
        point = sequence.read_sequence()
        dp_name = point.maybe_context(0)
        if dp_name is None:
            continue
        full_name = dp_name.maybe_context(0)
        if full_name is None:
            continue
        while not full_name.at_end():
            tag, content = full_name.read_tlv()
            if tag == tags.context(_GENERAL_NAME_URI, constructed=False):
                urls.append(content.decode("ascii", "replace"))
    return urls


def encode_subject_alt_name(dns_names: Sequence[str]) -> bytes:
    """Encode SubjectAltName with dNSName entries."""
    return encoder.encode_sequence(
        *(encoder.encode_implicit(_GENERAL_NAME_DNS, name.encode("ascii"))
          for name in dns_names)
    )


def decode_subject_alt_name(der: bytes) -> List[str]:
    """Decode SubjectAltName dNSName entries."""
    sequence = Reader(der).read_sequence()
    names = []
    while not sequence.at_end():
        tag, content = sequence.read_tlv()
        if tag == tags.context(_GENERAL_NAME_DNS, constructed=False):
            names.append(content.decode("ascii", "replace"))
    return names


def encode_extended_key_usage(purposes: Sequence[ObjectIdentifier]) -> bytes:
    """Encode ExtendedKeyUsage."""
    return encoder.encode_sequence(
        *(encoder.encode_oid(purpose) for purpose in purposes)
    )


def decode_extended_key_usage(der: bytes) -> List[ObjectIdentifier]:
    """Decode ExtendedKeyUsage purpose OIDs."""
    sequence = Reader(der).read_sequence()
    purposes = []
    while not sequence.at_end():
        purposes.append(sequence.read_oid())
    return purposes


def encode_key_usage(bits: Sequence[int]) -> bytes:
    """Encode KeyUsage from named-bit positions (0=digitalSignature ...)."""
    return encoder.encode_named_bits(list(bits))


def decode_key_usage(der: bytes) -> List[int]:
    """Decode KeyUsage named bits."""
    return Reader(der).read_named_bits()


def encode_crl_reason(reason: int) -> bytes:
    """Encode a CRLReason ENUMERATED payload."""
    if reason not in REASON_NAMES:
        raise DecodeError(f"unknown CRL reason code: {reason}")
    return encoder.encode_enumerated(reason)


def decode_crl_reason(der: bytes) -> int:
    """Decode a CRLReason ENUMERATED payload."""
    reader = Reader(der)
    reason = reader.read_enumerated()
    reader.expect_end()
    return reason


# -- convenience constructors ------------------------------------------------

def make_tls_feature_extension() -> Extension:
    """Build the OCSP Must-Staple extension (non-critical, like Let's Encrypt)."""
    return Extension(oid.TLS_FEATURE, critical=False, value=encode_tls_feature())


def make_aia_extension(ocsp_urls: Sequence[str],
                       ca_issuer_urls: Sequence[str] = ()) -> Extension:
    """Build an AuthorityInformationAccess extension."""
    return Extension(
        oid.AUTHORITY_INFORMATION_ACCESS,
        critical=False,
        value=encode_aia(ocsp_urls, ca_issuer_urls),
    )


def make_crl_dp_extension(urls: Sequence[str]) -> Extension:
    """Build a CRLDistributionPoints extension."""
    return Extension(
        oid.CRL_DISTRIBUTION_POINTS,
        critical=False,
        value=encode_crl_distribution_points(urls),
    )


def make_basic_constraints_extension(ca: bool, path_length: Optional[int] = None) -> Extension:
    """Build a (critical) BasicConstraints extension."""
    return Extension(
        oid.BASIC_CONSTRAINTS,
        critical=True,
        value=BasicConstraints(ca=ca, path_length=path_length).to_der(),
    )


def make_san_extension(dns_names: Sequence[str]) -> Extension:
    """Build a SubjectAltName extension."""
    return Extension(
        oid.SUBJECT_ALT_NAME, critical=False, value=encode_subject_alt_name(dns_names)
    )


def make_eku_extension(purposes: Sequence[ObjectIdentifier]) -> Extension:
    """Build an ExtendedKeyUsage extension."""
    return Extension(
        oid.EXTENDED_KEY_USAGE, critical=False, value=encode_extended_key_usage(purposes)
    )


def make_ocsp_nocheck_extension() -> Extension:
    """Build the id-pkix-ocsp-nocheck marker for delegated OCSP signers."""
    return Extension(oid.OCSP_NOCHECK, critical=False, value=encoder.encode_null())
