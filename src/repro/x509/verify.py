"""Certificate chain validation.

Implements the checks the paper's Section 2.1 enumerates for a client:
"obtain this chain of certificates and check that each has a correct
signature, has not expired ... and has not been revoked."  Revocation
itself is pluggable — the TLS/browser layer supplies stapled-OCSP or
fetched-OCSP evidence — so this module covers signatures, validity
windows, name chaining, CA flags, and trust-root anchoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, List, Optional, Sequence

from .certificate import Certificate


class ChainError(Enum):
    """Why a chain failed to validate."""

    EMPTY_CHAIN = "empty chain"
    EXPIRED = "certificate outside validity period"
    BAD_SIGNATURE = "signature verification failed"
    NAME_CHAINING = "issuer name does not match next subject"
    NOT_A_CA = "intermediate lacks CA basic constraints"
    UNTRUSTED_ROOT = "chain does not terminate at a trusted root"
    HOSTNAME_MISMATCH = "leaf does not cover the requested hostname"


@dataclass
class ChainValidationResult:
    """Outcome of a chain validation attempt."""

    valid: bool
    errors: List[ChainError] = field(default_factory=list)
    chain: List[Certificate] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.valid


class TrustStore:
    """A set of trusted root certificates, keyed by subject DER.

    Mirrors the paper's footnote 7: Censys validates against the Apple,
    Microsoft, and Mozilla NSS root stores; our simulation keeps one or
    more named stores with the same semantics.
    """

    def __init__(self, roots: Iterable[Certificate] = (), name: str = "default") -> None:
        self.name = name
        self._by_subject = {}
        for root in roots:
            self.add(root)

    def add(self, root: Certificate) -> None:
        """Trust *root* (must be self-signed and a CA)."""
        self._by_subject[root.subject.encode()] = root

    def find_issuer(self, certificate: Certificate) -> Optional[Certificate]:
        """Return the trusted root whose subject matches the cert's issuer."""
        return self._by_subject.get(certificate.issuer.encode())

    def __contains__(self, certificate: Certificate) -> bool:
        stored = self._by_subject.get(certificate.subject.encode())
        return stored is not None and stored.der == certificate.der

    def __len__(self) -> int:
        return len(self._by_subject)


def build_chain(leaf: Certificate, intermediates: Sequence[Certificate],
                trust_store: TrustStore) -> Optional[List[Certificate]]:
    """Order leaf→…→root by following issuer names; None when no path exists."""
    pool = {cert.subject.encode(): cert for cert in intermediates}
    chain = [leaf]
    current = leaf
    for _ in range(len(intermediates) + 2):
        root = trust_store.find_issuer(current)
        if root is not None:
            if current.is_self_signed and current.der == root.der:
                return chain
            chain.append(root)
            return chain
        next_cert = pool.get(current.issuer.encode())
        if next_cert is None or next_cert is current:
            return None
        chain.append(next_cert)
        current = next_cert
    return None


def validate_chain(chain: Sequence[Certificate], trust_store: TrustStore, now: int,
                   hostname: Optional[str] = None) -> ChainValidationResult:
    """Validate an ordered leaf→root chain at time *now*."""
    errors: List[ChainError] = []
    chain = list(chain)
    if not chain:
        return ChainValidationResult(False, [ChainError.EMPTY_CHAIN])

    for certificate in chain:
        if not certificate.validity.contains(now):
            errors.append(ChainError.EXPIRED)
            break

    for index, certificate in enumerate(chain):
        if index + 1 < len(chain):
            issuer_cert = chain[index + 1]
            if certificate.issuer != issuer_cert.subject:
                errors.append(ChainError.NAME_CHAINING)
                break
            if not issuer_cert.is_ca:
                errors.append(ChainError.NOT_A_CA)
                break
            if not certificate.verify_signature(issuer_cert.public_key):
                errors.append(ChainError.BAD_SIGNATURE)
                break

    anchor = chain[-1]
    if anchor in trust_store:
        if anchor.is_self_signed and not anchor.verify_signature(anchor.public_key):
            errors.append(ChainError.BAD_SIGNATURE)
    else:
        root = trust_store.find_issuer(anchor)
        if root is None:
            errors.append(ChainError.UNTRUSTED_ROOT)
        elif not anchor.verify_signature(root.public_key):
            errors.append(ChainError.BAD_SIGNATURE)

    if hostname is not None and not chain[0].matches_hostname(hostname):
        errors.append(ChainError.HOSTNAME_MISMATCH)

    return ChainValidationResult(valid=not errors, errors=errors, chain=chain)


def validate(leaf: Certificate, intermediates: Sequence[Certificate],
             trust_store: TrustStore, now: int,
             hostname: Optional[str] = None) -> ChainValidationResult:
    """Build and validate a chain in one call."""
    chain = build_chain(leaf, intermediates, trust_store)
    if chain is None:
        return ChainValidationResult(False, [ChainError.UNTRUSTED_ROOT], [leaf])
    return validate_chain(chain, trust_store, now, hostname)
