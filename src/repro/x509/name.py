"""X.501 distinguished names (the RDNSequence used by X.509 and OCSP).

Only single-valued RDNs are produced (the overwhelmingly common form);
the parser accepts arbitrary AttributeTypeAndValue sets.  Names hash
and compare by their DER encoding, which is how issuer matching works
throughout the PKI code.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence, Tuple

from ..asn1 import ObjectIdentifier, Reader, encoder, oid

_PRINTABLE_TYPES = {oid.COUNTRY_NAME}


class Name:
    """A distinguished name: an ordered sequence of (type, value) pairs."""

    __slots__ = ("_attributes", "_der")

    def __init__(self, attributes: Sequence[Tuple[ObjectIdentifier, str]]) -> None:
        self._attributes: Tuple[Tuple[ObjectIdentifier, str], ...] = tuple(
            (ObjectIdentifier(attr_type), str(value)) for attr_type, value in attributes
        )
        self._der: Optional[bytes] = None

    @classmethod
    def build(cls, common_name: str, organization: Optional[str] = None,
              country: Optional[str] = None) -> "Name":
        """Convenience constructor for the common CN/O/C shape."""
        attributes: List[Tuple[ObjectIdentifier, str]] = []
        if country:
            attributes.append((oid.COUNTRY_NAME, country))
        if organization:
            attributes.append((oid.ORGANIZATION_NAME, organization))
        attributes.append((oid.COMMON_NAME, common_name))
        return cls(attributes)

    @property
    def attributes(self) -> Tuple[Tuple[ObjectIdentifier, str], ...]:
        """The (type, value) pairs in order."""
        return self._attributes

    @property
    def common_name(self) -> Optional[str]:
        """The first commonName value, if present."""
        for attr_type, value in self._attributes:
            if attr_type == oid.COMMON_NAME:
                return value
        return None

    def encode(self) -> bytes:
        """Return the DER RDNSequence encoding (cached)."""
        if self._der is None:
            rdns = []
            for attr_type, value in self._attributes:
                if attr_type in _PRINTABLE_TYPES:
                    encoded_value = encoder.encode_printable_string(value)
                else:
                    encoded_value = encoder.encode_utf8_string(value)
                atv = encoder.encode_sequence(
                    encoder.encode_oid(attr_type), encoded_value
                )
                rdns.append(encoder.encode_set([atv]))
            self._der = encoder.encode_sequence(*rdns)
        return self._der

    @classmethod
    def decode(cls, reader: Reader) -> "Name":
        """Parse an RDNSequence from *reader*."""
        sequence = reader.read_sequence()
        attributes: List[Tuple[ObjectIdentifier, str]] = []
        while not sequence.at_end():
            rdn = sequence.read_set()
            while not rdn.at_end():
                atv = rdn.read_sequence()
                attr_type = atv.read_oid()
                value = atv.read_string()
                atv.expect_end()
                attributes.append((attr_type, value))
        return cls(attributes)

    @classmethod
    def from_der(cls, der: bytes) -> "Name":
        """Parse a complete DER Name."""
        reader = Reader(der)
        name = cls.decode(reader)
        reader.expect_end()
        return name

    def hash_sha1(self) -> bytes:
        """SHA-1 of the DER name — used by the OCSP CertID issuerNameHash."""
        return hashlib.sha1(self.encode()).digest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self.encode() == other.encode()

    def __hash__(self) -> int:
        return hash(self.encode())

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{oid.OID_NAMES.get(t, t.dotted)}={v}" for t, v in self._attributes
        )
        return f"Name({parts})"

    def rfc4514(self) -> str:
        """A human-readable one-line form (CN=..., O=..., C=...)."""
        shorthand = {
            oid.COMMON_NAME: "CN",
            oid.ORGANIZATION_NAME: "O",
            oid.COUNTRY_NAME: "C",
            oid.ORGANIZATIONAL_UNIT: "OU",
        }
        return ",".join(
            f"{shorthand.get(t, t.dotted)}={v}" for t, v in reversed(self._attributes)
        )
