"""Multiple root-store modeling (the paper's validity definition).

Footnote 7: "To validate the certificates, Censys uses the Apple,
Microsoft, and Mozilla NSS root stores; we consider the certificate
[valid] if it is valid using at least one of those three root stores."

:class:`RootStorePopulation` models the three stores over one set of
root CAs with overlapping-but-not-identical membership, and provides
the any-of-three validity predicate the corpus analyses assume.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .certificate import Certificate
from .verify import ChainValidationResult, TrustStore, validate

#: The three stores Censys consults.
STORE_NAMES = ("apple", "microsoft", "nss")


@dataclass
class StoreMembership:
    """Which stores trust one root."""

    root: Certificate
    stores: frozenset

    @property
    def in_all(self) -> bool:
        return len(self.stores) == len(STORE_NAMES)


class RootStorePopulation:
    """Three overlapping root stores over a shared root population.

    *universal_fraction* of roots land in all three stores (the big
    commercial CAs); the rest are distributed to random non-empty
    subsets — regional CAs (like the paper's sheca/postsignum/CNNIC
    families) commonly sit in only one or two stores.
    """

    def __init__(self, roots: Iterable[Certificate],
                 universal_fraction: float = 0.75, seed: int = 0) -> None:
        self.memberships: List[StoreMembership] = []
        self._stores: Dict[str, TrustStore] = {
            name: TrustStore(name=name) for name in STORE_NAMES
        }
        rng = random.Random(seed)
        for root in roots:
            if rng.random() < universal_fraction:
                chosen = frozenset(STORE_NAMES)
            else:
                count = rng.choice([1, 1, 2])
                chosen = frozenset(rng.sample(STORE_NAMES, count))
            self.memberships.append(StoreMembership(root=root, stores=chosen))
            for name in chosen:
                self._stores[name].add(root)

    def store(self, name: str) -> TrustStore:
        """One named root store."""
        return self._stores[name]

    def stores_trusting(self, leaf: Certificate,
                        intermediates: Sequence[Certificate], now: int
                        ) -> List[str]:
        """Which stores validate this chain at *now*."""
        trusting = []
        for name, trust_store in self._stores.items():
            if validate(leaf, intermediates, trust_store, now).valid:
                trusting.append(name)
        return trusting

    def is_valid(self, leaf: Certificate, intermediates: Sequence[Certificate],
                 now: int) -> bool:
        """The Censys/paper predicate: trusted by at least one store."""
        return bool(self.stores_trusting(leaf, intermediates, now))

    def coverage_counts(self) -> Dict[int, int]:
        """How many roots sit in exactly 1, 2, or 3 stores."""
        counts: Dict[int, int] = {1: 0, 2: 0, 3: 0}
        for membership in self.memberships:
            counts[len(membership.stores)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.memberships)
