"""Purity contracts: who must be effect-free, and are they.

Contract membership is convention-driven, mirroring the runtime's
naming rules, so a new runner or worker is under contract the moment
it is written — there is no opt-in list to forget to update:

* **runner** — every ``module:function`` ref declared in the
  experiment registry (``runner=`` literals);
* **worker** — every public ``*_shard`` function, plus every ref
  declared as a ``ShardSpec`` worker anywhere in the program
  (literal or statically-resolvable f-string);
* **plan** — every public ``*_shards`` function and ``single_shard``;
* **merge** — every public ``merge_*`` function;
* **injector** — every public function and class of ``*.injectors``
  modules (a class contracts all its methods);
* **classify** — every public ``classify_*`` function;
* **reducer** — every public function and class of ``*.reducers``
  modules: the mergeable ``init``/``step``/``merge``/``finalize``
  contract only converges byte-identically if those methods are pure;
* **netchaos** — every public function of ``*.netchaos`` modules plus
  every public class with a ``decide`` method: wire-fault decisions
  and the frame-mangle engine must be pure functions of their seed and
  frame coordinates, or a chaos run would not be reproducible.  (The
  TCP proxy shell defines no ``decide`` and is the deliberately impure
  boundary.)

A discovered ref that does not resolve to a program function is an
error: the grammar shared with :mod:`repro.refs` guarantees anything
the runtime could import is visible here, so an unresolvable ref is
either a typo or a lambda/closure smuggled past the registry rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..refs import REF_PATTERN
from .callgraph import CallGraph, EffectSite
from .effects import Effect, Pragma
from .modgraph import Program
from .propagate import (
    ChainStep,
    EffectMap,
    function_effects,
    module_effect_witness,
    witness_chain,
)


@dataclass(frozen=True)
class DeclaredRef:
    """One ``module:function`` string found in program source."""

    text: str
    module: str                   # declaring module
    line: int


def _module_str_constants(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` string bindings."""
    constants: Dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and \
                isinstance(node.value, ast.Constant) and \
                isinstance(node.value.value, str):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = node.value.value
    return constants


def _joined_str_value(node: ast.JoinedStr,
                      constants: Dict[str, str]) -> Optional[str]:
    """Statically evaluate an f-string whose holes are module-level
    string constants (``f"{_RUNNERS}:scan_shard"``)."""
    parts: List[str] = []
    for value in node.values:
        if isinstance(value, ast.Constant) and \
                isinstance(value.value, str):
            parts.append(value.value)
        elif isinstance(value, ast.FormattedValue) and \
                isinstance(value.value, ast.Name) and \
                value.value.id in constants:
            parts.append(constants[value.value.id])
        else:
            return None
    return "".join(parts)


def discover_refs(program: Program) -> List[DeclaredRef]:
    """Every statically-visible entrypoint ref in the program."""
    prefix = program.package + "."
    seen: Set[str] = set()
    refs: List[DeclaredRef] = []
    for module in program.sorted_modules():
        constants = _module_str_constants(module.tree)
        for node in ast.walk(module.tree):
            text: Optional[str] = None
            if isinstance(node, ast.Constant) and \
                    isinstance(node.value, str):
                text = node.value
            elif isinstance(node, ast.JoinedStr):
                text = _joined_str_value(node, constants)
            if text is None or not REF_PATTERN.match(text):
                continue
            if not text.startswith(prefix):
                continue
            if text in seen:
                continue
            seen.add(text)
            refs.append(DeclaredRef(text, module.name, node.lineno))
    return refs


@dataclass(frozen=True)
class Contract:
    """One entrypoint (or class of entrypoints) that must be pure."""

    ref: str                      # "module:name" display form
    group: str
    kind: str                     # "func" | "class" | "unresolved"
    target: Optional[str]         # resolved qualname, None if unresolved
    declared_at: Optional[Tuple[str, int]] = None


@dataclass
class Violation:
    """One effect reaching one contract entrypoint."""

    effect: Effect
    entry: str                    # the function the chain starts at
    chain: List[ChainStep]


@dataclass
class AllowedSite:
    """A pragma-suppressed effect reachable from an entrypoint."""

    site: EffectSite
    pragma: Pragma
    qualname: str


@dataclass
class ContractResult:
    """A contract plus its verdict."""

    contract: Contract
    entries: List[str] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    allowed: List[AllowedSite] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.contract.kind != "unresolved" and not self.violations


def _registry_module(program: Program) -> Optional[str]:
    """The module defining the experiment registry, if present."""
    candidate = f"{program.package}.core.experiments"
    return candidate if candidate in program else None


def _public_functions(graph: CallGraph, module_name: str) -> List[str]:
    return sorted(
        info.qualname for info in graph.functions.values()
        if info.module == module_name and info.class_name is None
        and info.parent is None and not info.is_module_node
        and not info.name.startswith("_"))


def collect_contracts(program: Program, graph: CallGraph,
                      extra: Tuple[str, ...] = ()) -> List[Contract]:
    """Assemble the full contract set for *program*."""
    contracts: Dict[str, Contract] = {}
    registry = _registry_module(program)

    def add(ref: str, group: str,
            declared_at: Optional[Tuple[str, int]] = None) -> None:
        if ref in contracts:
            return
        resolved = graph.resolve_entry(ref)
        if resolved is None:
            contracts[ref] = Contract(ref, group, "unresolved", None,
                                      declared_at)
        else:
            contracts[ref] = Contract(ref, group, resolved[0],
                                      resolved[1], declared_at)

    # Declared refs: registry runners + ShardSpec workers.
    for declared in discover_refs(program):
        group = "runner" if declared.module == registry else "worker"
        add(declared.text, group, (declared.module, declared.line))

    # Convention groups.
    for module in program.sorted_modules():
        for qualname in _public_functions(graph, module.name):
            name = qualname.rpartition(":")[2]
            ref = f"{module.name}:{name}"
            if name.endswith("_shard"):
                add(ref, "worker")
            elif name.endswith("_shards") or name == "single_shard":
                add(ref, "plan")
            elif name.startswith("merge_"):
                add(ref, "merge")
            elif name.startswith("classify_"):
                add(ref, "classify")
        if module.name.endswith(".injectors"):
            for qualname in _public_functions(graph, module.name):
                add(f"{module.name}:{qualname.rpartition(':')[2]}",
                    "injector")
            for class_qual, info in sorted(graph.classes.items()):
                if info.module == module.name and \
                        not info.name.startswith("_"):
                    add(f"{module.name}:{info.name}", "injector")
        if module.name.endswith(".reducers"):
            # The mergeable-reducer contract: init/step/merge/finalize
            # must be pure so any event-stream partitioning merges to
            # byte-identical aggregates (the monitor's whole premise).
            for qualname in _public_functions(graph, module.name):
                add(f"{module.name}:{qualname.rpartition(':')[2]}",
                    "reducer")
            for class_qual, info in sorted(graph.classes.items()):
                if info.module == module.name and \
                        not info.name.startswith("_"):
                    add(f"{module.name}:{info.name}", "reducer")
        if module.name.endswith(".netchaos"):
            # Wire-fault chaos: the decision dataclasses and the
            # mangle engine carry the reproducibility burden; the
            # proxy shell (no ``decide``) is the impure boundary.
            for qualname in _public_functions(graph, module.name):
                add(f"{module.name}:{qualname.rpartition(':')[2]}",
                    "netchaos")
            for class_qual, info in sorted(graph.classes.items()):
                if info.module == module.name and \
                        not info.name.startswith("_") and \
                        "decide" in info.methods:
                    add(f"{module.name}:{info.name}", "netchaos")

    for ref in extra:
        add(ref, "extra")

    return sorted(contracts.values(), key=lambda c: (c.group, c.ref))


def _reachable(graph: CallGraph, roots: List[str]) -> Set[str]:
    """Function qualnames reachable from *roots* via call edges, plus
    the import-time pseudo-nodes of every module involved."""
    seen: Set[str] = set()
    stack = list(roots)
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        info = graph.functions.get(current)
        if info is None:
            continue
        module_node = f"{info.module}:<module>"
        if module_node not in seen:
            stack.append(module_node)
        if info.is_module_node:
            module = graph.program.module(info.module)
            if module is not None:
                stack.extend(f"{name}:<module>"
                             for name in module.static_imports
                             if name in graph.program)
        stack.extend(edge.callee for edge in info.calls)
    return seen


def check_contracts(graph: CallGraph, effects: EffectMap,
                    contracts: List[Contract]) -> List[ContractResult]:
    """Evaluate every contract against the propagated effect map."""
    results: List[ContractResult] = []
    for contract in contracts:
        result = ContractResult(contract)
        results.append(result)
        if contract.kind == "unresolved" or contract.target is None:
            continue
        if contract.kind == "class":
            result.entries = graph.class_methods(contract.target)
        else:
            result.entries = [contract.target]
        for entry in result.entries:
            for effect in function_effects(graph, effects, entry):
                origin = module_effect_witness(graph, effects, entry,
                                               effect) or entry
                chain = witness_chain(graph, effects, origin, effect)
                result.violations.append(Violation(effect, entry, chain))
        seen_sites: Set[Tuple[str, int, str]] = set()
        for qualname in sorted(_reachable(graph, result.entries)):
            info = graph.functions.get(qualname)
            if info is None:
                continue
            for site, pragma in info.allowed:
                key = (info.module, site.line, site.effect.name)
                if key not in seen_sites:
                    seen_sites.add(key)
                    result.allowed.append(
                        AllowedSite(site, pragma, qualname))
    return results
