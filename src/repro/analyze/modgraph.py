"""Module discovery and import binding resolution.

Loads every ``.py`` file under a source tree into a :class:`Program`:
parsed ASTs plus, per module, a *binding table* mapping local names to
what they denote — a program module, an attribute of a program module,
or something external (stdlib, third-party) the analyzer treats as
opaque except for the leaf-seed tables.

Binding resolution is deliberately flow-insensitive: all ``import``
statements in a module (including function-local ones — the runners
import heavy dependencies lazily) contribute to one table.  Shadowing
one import alias with a different import elsewhere in the same module
would confuse it; the style rule that aliases are module-unique is
cheap, and the analyzer's job is effects, not name hygiene.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from .effects import PragmaTable, parse_pragmas


@dataclass(frozen=True)
class Binding:
    """What one local name denotes after imports resolve.

    ``module`` is the dotted module the name points *into*; ``attr``
    is the attribute there (None means the name is the module itself).
    ``external`` marks targets outside the analyzed program.
    """

    module: str
    attr: Optional[str] = None
    external: bool = False


@dataclass
class Module:
    """One parsed source module."""

    name: str                     # dotted, e.g. "repro.runtime.runners"
    path: Path
    source: str
    tree: ast.Module
    bindings: Dict[str, Binding] = field(default_factory=dict)
    pragmas: PragmaTable = field(default_factory=PragmaTable)
    #: Program modules whose import executes when this module loads.
    static_imports: List[str] = field(default_factory=list)

    @property
    def package(self) -> str:
        """The package containing this module (itself, if a package)."""
        if self.path.name == "__init__.py":
            return self.name
        return self.name.rpartition(".")[0]


class Program:
    """Every module of one source tree, keyed by dotted name."""

    def __init__(self, root: Path, package: Optional[str] = None) -> None:
        self.root = root
        self.package = package or root.name
        self.modules: Dict[str, Module] = {}

    def module(self, name: str) -> Optional[Module]:
        return self.modules.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self.modules

    def sorted_modules(self) -> List[Module]:
        return [self.modules[name] for name in sorted(self.modules)]


def _module_name(root: Path, path: Path, prefix: str) -> str:
    """Dotted module name of *path* relative to the tree root."""
    relative = path.relative_to(root).with_suffix("")
    parts = list(relative.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([prefix] + parts) if parts else prefix


def iter_python_files(root: Path) -> Iterator[Path]:
    """Every ``.py`` file under *root*, sorted for stable output."""
    yield from sorted(root.rglob("*.py"))


def load_program(root: Path, package: Optional[str] = None) -> Program:
    """Parse the tree rooted at *root* (a package directory).

    *package* is the dotted name of the root package; defaults to the
    directory name (``src/repro`` → ``repro``).
    """
    root = root.resolve()
    prefix = package or root.name
    program = Program(root, prefix)
    for path in iter_python_files(root):
        source = path.read_text()
        module = Module(
            name=_module_name(root, path, prefix),
            path=path,
            source=source,
            tree=ast.parse(source, filename=str(path)),
            pragmas=parse_pragmas(source),
        )
        program.modules[module.name] = module
    for module in program.modules.values():
        _bind_imports(program, module)
    return program


def _relative_base(module: Module, level: int) -> Optional[str]:
    """The absolute package a ``from ...`` of *level* dots names."""
    parts = module.package.split(".") if module.package else []
    if level - 1 > len(parts):
        return None
    kept = parts[:len(parts) - (level - 1)]
    return ".".join(kept) if kept else None


def _bind_imports(program: Program, module: Module) -> None:
    """Fill *module*'s binding table from every import statement."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                target = alias.name
                internal = target in program
                if alias.asname:
                    module.bindings[alias.asname] = Binding(
                        target, external=not internal)
                else:
                    # ``import a.b.c`` binds ``a``; attribute chains on
                    # it are resolved against the full dotted path.
                    head = target.split(".")[0]
                    module.bindings.setdefault(
                        head, Binding(head, external=head not in program))
                if internal and node.col_offset == 0:
                    module.static_imports.append(target)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _relative_base(module, node.level)
                if base is None:
                    continue
                source = f"{base}.{node.module}" if node.module else base
            else:
                source = node.module or ""
            if not source:
                continue
            internal = (source in program
                        or any(name.startswith(source + ".")
                               for name in program.modules))
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                submodule = f"{source}.{alias.name}"
                if submodule in program:
                    # ``from pkg import mod`` where mod is a module.
                    module.bindings[bound] = Binding(submodule)
                    if node.col_offset == 0:
                        module.static_imports.append(submodule)
                else:
                    module.bindings[bound] = Binding(
                        source, alias.name, external=not internal)
            if internal and source in program and node.col_offset == 0:
                module.static_imports.append(source)


def resolve_attr_chain(program: Program, module: Module,
                       parts: List[str]) -> Optional[Binding]:
    """Resolve a dotted name chain (``quality.certificates_cdf``)
    against *module*'s bindings to a program-level binding.

    Returns None when the chain starts from a local name or anything
    else the binding table does not know.
    """
    if not parts:
        return None
    binding = module.bindings.get(parts[0])
    if binding is None or binding.external:
        return None
    current = binding
    for part in parts[1:]:
        if current.attr is not None:
            # Attribute of an attribute: chase the re-export first.
            target = chase_reexport(program, current)
            if target is None or target.attr is not None:
                return None
            current = target
        candidate = f"{current.module}.{part}"
        if candidate in program:
            current = Binding(candidate)
        else:
            current = Binding(current.module, part)
    return current


def chase_reexport(program: Program, binding: Binding,
                   _depth: int = 0) -> Optional[Binding]:
    """Follow ``from x import y`` re-export chains to the defining
    module.

    Given a binding ``(module=pkg, attr=name)``, looks *inside* pkg:
    if pkg itself binds ``name`` by importing it from elsewhere, chase
    until the module that actually defines the name.  Cycles and
    external hops return the last internal binding reached.
    """
    if binding.external or binding.attr is None or _depth > 16:
        return binding
    target = program.module(binding.module)
    if target is None:
        return binding
    # Defined right here?  (def / class / assignment at module level.)
    for node in target.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)) and node.name == binding.attr:
            return binding
        if isinstance(node, ast.Assign):
            for dest in node.targets:
                if isinstance(dest, ast.Name) and dest.id == binding.attr:
                    return binding
        if isinstance(node, ast.AnnAssign):
            if (isinstance(node.target, ast.Name)
                    and node.target.id == binding.attr):
                return binding
    inner = target.bindings.get(binding.attr)
    if inner is None:
        return binding
    if inner.attr is None:
        return inner
    return chase_reexport(program, inner, _depth + 1)
