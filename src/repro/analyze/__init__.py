"""Whole-program effect & purity analysis for the reproduction.

The runtime's core invariant — every experiment result is a pure
function of (config, seed, code version), byte-identical at any
worker count — is enforced dynamically by the serial-vs-parallel
identity tests and statically by this package: an interprocedural
effect-inference pass that seeds leaf effects from
:mod:`repro.analyze.effects`, propagates them to a fixpoint over the
module/import/call graph, and checks the purity contracts of every
runner, shard worker, plan function, merge function, fault injector,
and classifier (:mod:`repro.analyze.contracts`).

Usage: ``repro analyze [--strict] [--contract] [--graph FILE]``, or
:func:`analyze_package` / :func:`analyze_tree` from Python.
"""

from .callgraph import CallGraph, build_callgraph
from .contracts import (
    Contract,
    ContractResult,
    check_contracts,
    collect_contracts,
    discover_refs,
)
from .effects import Effect, Pragma, parse_pragmas
from .modgraph import Program, load_program
from .propagate import propagate, witness_chain
from .report import (
    Analysis,
    analyze_package,
    analyze_tree,
    contract_table,
    graph_dump,
)
from .rules import ANALYZE_RULES

__all__ = [
    "ANALYZE_RULES",
    "Analysis",
    "CallGraph",
    "Contract",
    "ContractResult",
    "Effect",
    "Pragma",
    "Program",
    "analyze_package",
    "analyze_tree",
    "build_callgraph",
    "check_contracts",
    "collect_contracts",
    "contract_table",
    "discover_refs",
    "graph_dump",
    "load_program",
    "parse_pragmas",
    "propagate",
    "witness_chain",
]
