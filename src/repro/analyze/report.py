"""Analysis orchestration: run the pass, assemble findings, render.

The analyzer reuses :mod:`repro.lint`'s findings/report machinery, so
``repro analyze`` speaks the same text/JSON/SARIF formats as
``repro lint`` — one consumer toolchain for both static passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..lint.findings import Finding, LintReport, Severity
from .callgraph import CallGraph, build_callgraph
from .contracts import (
    Contract,
    ContractResult,
    check_contracts,
    collect_contracts,
)
from .effects import Effect
from .modgraph import Program, load_program
from .propagate import EffectMap, propagate
from .rules import KIND_CODE


@dataclass
class Analysis:
    """Everything one analyzer run produced."""

    program: Program
    graph: CallGraph
    effects: EffectMap
    contracts: List[ContractResult]
    report: LintReport = field(default_factory=LintReport)

    @property
    def ok(self) -> bool:
        """No findings at all — the strict-mode bar."""
        return not self.report.findings

    @property
    def clean(self) -> bool:
        """No ERROR findings (warnings tolerated)."""
        return self.report.clean


def _relpath(program: Program, path: Path) -> str:
    try:
        return str(path.relative_to(program.root.parent))
    except ValueError:
        return str(path)


def analyze_tree(root: Path, package: Optional[str] = None,
                 extra_entrypoints: Tuple[str, ...] = ()) -> Analysis:
    """Run the full pass over the tree rooted at *root*."""
    program = load_program(root, package)
    graph = build_callgraph(program)
    effects = propagate(graph)
    contracts = check_contracts(
        graph, effects, collect_contracts(program, graph,
                                          tuple(extra_entrypoints)))
    analysis = Analysis(program, graph, effects, contracts)
    _assemble_findings(analysis)
    return analysis


def analyze_package(extra_entrypoints: Tuple[str, ...] = ()) -> Analysis:
    """Analyze the installed ``repro`` package source tree."""
    import repro
    root = Path(repro.__file__).resolve().parent
    return analyze_tree(root, "repro", extra_entrypoints)


def _chain_text(analysis: Analysis, violation) -> Tuple[str, str, int]:
    """Render a violation chain; returns (text, leaf file, leaf line)."""
    steps = violation.chain
    if not steps:
        return ("(unwitnessed)", "", 0)
    hops = [step.qualname for step in steps]
    leaf = steps[-1]
    info = analysis.graph.functions.get(leaf.qualname)
    leaf_file = ""
    if info is not None:
        module = analysis.program.module(info.module)
        if module is not None:
            leaf_file = _relpath(analysis.program, module.path)
    text = " -> ".join(hops)
    return (f"{text}; leaf `{leaf.code}` at {leaf_file}:{leaf.line}",
            leaf_file, leaf.line)


def _assemble_findings(analysis: Analysis) -> None:
    program = analysis.program
    report = analysis.report
    report.artifacts = len(program.modules)

    # Pragma grammar violations and stale pragmas, per module.
    for module in program.sorted_modules():
        rel = _relpath(program, module.path)
        for issue in module.pragmas.issues:
            rule = "ANALYZE_PRAGMA_UNJUSTIFIED" \
                if issue.code == "unjustified" else "ANALYZE_PRAGMA_UNKNOWN"
            report.findings.append(Finding(
                rule, Severity.ERROR, issue.message, KIND_CODE,
                f"{rel}:{issue.line}"))
        for pragma in module.pragmas.unused():
            report.findings.append(Finding(
                "ANALYZE_PRAGMA_UNUSED", Severity.WARN,
                f"pragma suppresses nothing: {pragma.text}", KIND_CODE,
                f"{rel}:{pragma.line}"))

    # Broad excepts without pragma.
    for qualname in sorted(analysis.graph.functions):
        info = analysis.graph.functions[qualname]
        module = program.module(info.module)
        if module is None:
            continue
        rel = _relpath(program, module.path)
        for line in info.broad_excepts:
            report.findings.append(Finding(
                "ANALYZE_BROAD_EXCEPT", Severity.WARN,
                f"broad 'except Exception' in {qualname}; annotate with "
                f"'# repro: allow-broad-except -- why' or narrow it",
                KIND_CODE, f"{rel}:{line}"))

    # Contract verdicts.
    for result in analysis.contracts:
        contract = result.contract
        if contract.kind == "unresolved":
            source = "<contract>"
            if contract.declared_at is not None:
                declaring = program.module(contract.declared_at[0])
                if declaring is not None:
                    source = (f"{_relpath(program, declaring.path)}:"
                              f"{contract.declared_at[1]}")
            report.findings.append(Finding(
                "ANALYZE_UNRESOLVED_REF", Severity.ERROR,
                f"{contract.group} ref {contract.ref!r} does not resolve "
                f"to a module-level function (lambdas, closures, and "
                f"instance attributes cannot be certified)", KIND_CODE,
                source))
            continue
        for violation in result.violations:
            chain, leaf_file, leaf_line = _chain_text(analysis, violation)
            source = f"{leaf_file}:{leaf_line}" if leaf_file \
                else f"<{contract.ref}>"
            report.findings.append(Finding(
                "ANALYZE_IMPURE_CONTRACT", Severity.ERROR,
                f"{contract.group} {contract.ref}: "
                f"{violation.effect.name} reaches {violation.entry} "
                f"via {chain}", KIND_CODE, source))

    report.sort()


# ---------------------------------------------------------------------------
# renderings
# ---------------------------------------------------------------------------

def contract_table(analysis: Analysis) -> str:
    """The certification table: one row per contract."""
    from ..core.render import render_table
    rows: List[List[str]] = []
    for result in analysis.contracts:
        contract = result.contract
        if contract.kind == "unresolved":
            status = "UNRESOLVED"
        elif result.violations:
            status = "IMPURE"
        else:
            status = "pure"
        residual = ",".join(sorted({v.effect.name
                                    for v in result.violations}))
        allowed = ",".join(sorted({a.site.effect.name
                                   for a in result.allowed}))
        rows.append([contract.group, contract.ref, status,
                     residual or "-", allowed or "-"])
    counts = {"pure": 0, "impure": 0, "unresolved": 0}
    for result in analysis.contracts:
        if result.contract.kind == "unresolved":
            counts["unresolved"] += 1
        elif result.violations:
            counts["impure"] += 1
        else:
            counts["pure"] += 1
    table = render_table(
        ["group", "entrypoint", "status", "effects", "allowed"], rows,
        title="Purity contracts")
    summary = (f"{len(analysis.contracts)} contract(s): "
               f"{counts['pure']} pure, {counts['impure']} impure, "
               f"{counts['unresolved']} unresolved")
    return f"{table}\n{summary}"


def graph_dump(analysis: Analysis) -> Dict[str, object]:
    """A deterministic JSON document of the call graph + effect map."""
    functions: Dict[str, object] = {}
    for qualname in sorted(analysis.graph.functions):
        info = analysis.graph.functions[qualname]
        module = analysis.program.module(info.module)
        table = analysis.effects.get(qualname, {})
        functions[qualname] = {
            "file": _relpath(analysis.program, module.path)
            if module else "",
            "line": info.line,
            "effects": sorted(effect.name for effect in table),
            "leafEffects": sorted(
                {f"{site.effect.name}@{site.line}:{site.code}"
                 for site in info.effects}),
            "allowed": sorted(
                {f"{site.effect.name}@{site.line}:{site.code}"
                 for site, _ in info.allowed}),
            "calls": sorted({edge.callee for edge in info.calls}),
        }
    contracts = [{
        "ref": result.contract.ref,
        "group": result.contract.group,
        "kind": result.contract.kind,
        "target": result.contract.target,
        "status": ("unresolved" if result.contract.kind == "unresolved"
                   else "impure" if result.violations else "pure"),
        "effects": sorted({v.effect.name for v in result.violations}),
        "allowed": sorted({a.site.effect.name for a in result.allowed}),
    } for result in analysis.contracts]
    return {
        "schema": "repro-analyze/1",
        "package": analysis.program.package,
        "modules": sorted(analysis.program.modules),
        "functions": functions,
        "contracts": contracts,
    }
