"""Function nodes, leaf-effect scanning, and call-edge resolution.

Pass 1 collects every function, method, and class in the program
(including nested functions and a ``<module>`` pseudo-node per module
for import-time code).  Pass 2 links call edges and scans each node's
*own* statements for leaf effects against the seed tables in
:mod:`repro.analyze.effects`.

Resolution strategy — optimistic on the genuinely dynamic:

* names and attribute chains resolve through import bindings,
  re-export chains, module-level aliases, and local assignments;
* ``self.method`` / ``cls.method`` / ``ClassName.method`` resolve
  through an MRO walk of program classes;
* local variables are typed from parameter/return annotations and
  direct ``ClassName(...)`` assignments, so ``world.snapshot()``
  resolves when ``world`` came from an annotated constructor/factory;
* a function or method passed as a call *argument* conservatively
  creates a call edge (covers ``functools.partial``, ``map``, and
  registry dicts of callables);
* nested functions are conservatively assumed to run when their
  definer runs (covers decorator wrappers and returned closures);
* everything else — ``getattr`` dispatch, calls on untyped values
  such as ``ctx.run_shards(...)`` — stays unresolved and contributes
  nothing.  That last rule is the deliberate contract boundary: shard
  *content* functions must prove themselves effect-free, while the
  executor infrastructure behind ``ctx`` is certified by the
  serial-vs-parallel identity tests instead.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .effects import (
    ATTR_CALL_INDEX,
    GLOBAL_MUTATION_MESSAGE,
    GLOBAL_RNG_FUNCS,
    GLOBAL_RNG_MESSAGE,
    HASH_MESSAGE,
    METHOD_TAIL_RULES,
    MUTATOR_METHODS,
    NAME_CALL_RULES,
    OPEN_READ_MESSAGE,
    OPEN_WRITE_MESSAGE,
    SECRETS_MESSAGE,
    UNSEEDED_RANDOM_MESSAGE,
    UTCNOW_MESSAGE,
    Effect,
    Pragma,
)
from .modgraph import Module, Program, chase_reexport, resolve_attr_chain


@dataclass(frozen=True)
class EffectSite:
    """One leaf effect occurrence."""

    effect: Effect
    line: int
    code: str
    message: str


@dataclass(frozen=True)
class CallEdge:
    """One resolved call (or conservative may-call) edge."""

    line: int
    callee: str


@dataclass
class ClassInfo:
    """One program class: methods plus resolvable internal bases."""

    qualname: str                 # "module:Cls"
    module: str
    name: str
    line: int = 0
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)


@dataclass
class FunctionInfo:
    """One function, method, nested function, or module pseudo-node."""

    qualname: str
    module: str
    name: str
    line: int
    node: Optional[ast.AST]       # None for the <module> pseudo-node
    class_name: Optional[str] = None
    parent: Optional[str] = None  # enclosing function qualname
    statements: List[ast.stmt] = field(default_factory=list)
    effects: List[EffectSite] = field(default_factory=list)
    allowed: List[Tuple[EffectSite, Pragma]] = field(default_factory=list)
    calls: List[CallEdge] = field(default_factory=list)
    broad_excepts: List[int] = field(default_factory=list)
    returns_class: Optional[str] = None
    locals: Set[str] = field(default_factory=set)

    @property
    def is_module_node(self) -> bool:
        return self.name == "<module>"


Resolved = Tuple[str, str]        # ("func" | "class", qualname)


class CallGraph:
    """The program's functions, classes, and resolved call edges."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    # -- lookup helpers ------------------------------------------------------

    def method_on(self, class_qual: str, name: str,
                  _seen: Optional[Set[str]] = None) -> Optional[str]:
        """MRO-ish lookup of *name* on a class and its internal bases."""
        seen = _seen if _seen is not None else set()
        if class_qual in seen:
            return None
        seen.add(class_qual)
        info = self.classes.get(class_qual)
        if info is None:
            return None
        if name in info.methods:
            return info.methods[name]
        for base in info.bases:
            found = self.method_on(base, name, seen)
            if found is not None:
                return found
        return None

    def class_methods(self, class_qual: str) -> List[str]:
        """Every method qualname of a class including inherited ones."""
        out: Dict[str, str] = {}
        stack = [class_qual]
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            for name, qual in info.methods.items():
                out.setdefault(name, qual)
            stack.extend(info.bases)
        return sorted(out.values())

    def resolve_entry(self, ref: str) -> Optional[Resolved]:
        """Resolve a ``module:name`` entrypoint ref to a program node.

        Chases re-exports and module-level aliases, exactly mirroring
        what :func:`repro.refs.resolve_ref` would import at runtime.
        """
        module_name, _, attr = ref.partition(":")
        module = self.program.module(module_name)
        if module is None:
            return None
        return self._resolve_module_attr(module, attr)

    def _resolve_module_attr(self, module: Module,
                             attr: str, _depth: int = 0) -> Optional[Resolved]:
        if _depth > 16:
            return None
        func = self.functions.get(f"{module.name}:{attr}")
        if func is not None:
            return ("func", func.qualname)
        cls = self.classes.get(f"{module.name}:{attr}")
        if cls is not None:
            return ("class", cls.qualname)
        binding = module.bindings.get(attr)
        if binding is not None and not binding.external:
            if binding.attr is None:
                return None          # the name is a module, not a callable
            resolved = chase_reexport(self.program, binding)
            if resolved is None or resolved.external or resolved.attr is None:
                return None
            target = self.program.module(resolved.module)
            if target is None:
                return None
            if target.name == module.name and resolved.attr == attr:
                return None          # self-referential; avoid loops
            return self._resolve_module_attr(target, resolved.attr,
                                             _depth + 1)
        alias = _module_alias_target(module, attr)
        if alias is not None:
            linker = _Linker(self, module,
                             self.functions[f"{module.name}:<module>"])
            return linker.resolve_callable(alias)
        return None


def _module_alias_target(module: Module, name: str) -> Optional[ast.expr]:
    """The RHS of a module-level ``name = <expr>`` alias, if any."""
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
    return None


def _dotted(node: ast.AST) -> Optional[List[str]]:
    """Flatten ``a.b.c`` into ``["a", "b", "c"]`` (None if not names)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def _own_nodes(statements: List[ast.stmt]) -> Iterator[ast.AST]:
    """Every AST node in *statements*, stopping at def/class bounds."""
    for statement in statements:
        stack: List[ast.AST] = [statement]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))


def _inner_defs(statements: List[ast.stmt]) -> Iterator[ast.AST]:
    """Def/class statements anywhere in *statements* (one level deep:
    recursion stops at each found def, whose own body is its scope)."""
    for statement in statements:
        stack: List[ast.AST] = [statement]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                yield node
                continue
            stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# pass 1: collect functions / classes / module nodes
# ---------------------------------------------------------------------------

def build_callgraph(program: Program) -> CallGraph:
    """Collect all nodes, then link call edges and leaf effects."""
    graph = CallGraph(program)
    for module in program.sorted_modules():
        _collect_module(graph, module)
    _resolve_bases(graph)
    for module in program.sorted_modules():
        members = [f for f in graph.functions.values()
                   if f.module == module.name]
        # Parents before children so enclosing locals are final.
        for info in sorted(members, key=lambda f: f.qualname.count(".")):
            _Linker(graph, module, info).link()
    return graph


def _collect_module(graph: CallGraph, module: Module) -> None:
    module_node = FunctionInfo(
        qualname=f"{module.name}:<module>", module=module.name,
        name="<module>", line=1, node=None)
    graph.functions[module_node.qualname] = module_node

    def definition_time_exprs(node) -> None:
        """Decorators and defaults execute at definition time."""
        for dec in node.decorator_list:
            module_node.statements.append(ast.Expr(value=dec))
        if hasattr(node, "args"):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                module_node.statements.append(ast.Expr(value=default))

    def handle_def(node, parent: Optional[str],
                   class_name: Optional[str]) -> None:
        if parent is None:
            qualname = f"{module.name}:{node.name}"
        elif class_name is not None and parent.endswith(
                f":{class_name}"):
            qualname = f"{parent}.{node.name}"
        else:
            qualname = f"{parent}.<locals>.{node.name}"
        info = FunctionInfo(
            qualname=qualname, module=module.name, name=node.name,
            line=node.lineno, node=node,
            class_name=class_name,
            parent=None if class_name and parent and
            parent.endswith(f":{class_name}") else parent,
            statements=list(node.body))
        graph.functions[qualname] = info
        definition_time_exprs(node)
        if class_name is not None and parent and \
                parent.endswith(f":{class_name}"):
            graph.classes[parent].methods[node.name] = qualname
        collect(node.body, qualname, None)

    def handle_class(node) -> None:
        class_qual = f"{module.name}:{node.name}"
        graph.classes[class_qual] = ClassInfo(
            qualname=class_qual, module=module.name, name=node.name,
            line=node.lineno)
        definition_time_exprs(node)
        for member in node.body:
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                handle_def(member, class_qual, node.name)
            else:
                # Class-body statements run at import time.
                module_node.statements.append(member)

    def collect(body: List[ast.stmt], parent: Optional[str],
                class_name: Optional[str]) -> None:
        for child in body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if parent is not None and ":" in parent:
                    handle_def(child, parent, None)
                else:
                    handle_def(child, None, None)
            elif isinstance(child, ast.ClassDef):
                if parent is None:
                    handle_class(child)
                # Classes inside functions: rare, treated as opaque.
            else:
                if parent is None:
                    module_node.statements.append(child)
                # Defs hiding inside compound statements (if/try/...).
                for nested in _inner_defs(
                        [s for s in ast.iter_child_nodes(child)
                         if isinstance(s, ast.stmt)]):
                    if isinstance(nested, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                        handle_def(nested, parent, None)
                    elif parent is None:
                        handle_class(nested)

    collect(module.tree.body, None, None)


def _resolve_bases(graph: CallGraph) -> None:
    """Resolve class base names to program class qualnames."""
    for module in graph.program.sorted_modules():
        module_node = graph.functions[f"{module.name}:<module>"]
        for child in module.tree.body:
            if not isinstance(child, ast.ClassDef):
                continue
            info = graph.classes.get(f"{module.name}:{child.name}")
            if info is None:
                continue
            linker = _Linker(graph, module, module_node)
            for base in child.bases:
                resolved = linker.resolve_callable(base)
                if resolved is not None and resolved[0] == "class":
                    info.bases.append(resolved[1])


# ---------------------------------------------------------------------------
# pass 2: link one function
# ---------------------------------------------------------------------------

class _Linker:
    """Resolves calls and scans leaf effects for one function node."""

    def __init__(self, graph: CallGraph, module: Module,
                 info: FunctionInfo) -> None:
        self.graph = graph
        self.module = module
        self.info = info
        self.env: Dict[str, str] = {}   # local name -> class qualname
        self._shadowed: Optional[Set[str]] = None
        self._module_names: Optional[Set[str]] = None

    # -- name resolution -----------------------------------------------------

    def resolve_callable(self, expr: ast.AST) -> Optional[Resolved]:
        """Resolve a call-target expression to a program node."""
        if isinstance(expr, ast.Name):
            return self._resolve_name(expr.id)
        if isinstance(expr, ast.Attribute):
            return self._resolve_attribute(expr)
        if isinstance(expr, ast.Call):
            # ``Factory()(...)`` — calling whatever a call returned.
            inner = self.resolve_callable(expr.func)
            if inner is not None and inner[0] == "func":
                target = self.graph.functions.get(inner[1])
                if target is not None and target.returns_class:
                    return ("class", target.returns_class)
            return None
        return None

    def _resolve_name(self, name: str) -> Optional[Resolved]:
        if name in self.info.locals:
            if name in self.env:
                return ("class", self.env[name])
            return None
        func = self.graph.functions.get(f"{self.module.name}:{name}")
        if func is not None:
            return ("func", func.qualname)
        cls = self.graph.classes.get(f"{self.module.name}:{name}")
        if cls is not None:
            return ("class", cls.qualname)
        binding = self.module.bindings.get(name)
        if binding is not None and not binding.external:
            if binding.attr is None:
                return None
            resolved = chase_reexport(self.graph.program, binding)
            if resolved is None or resolved.external or \
                    resolved.attr is None:
                return None
            target = self.graph.program.module(resolved.module)
            if target is None:
                return None
            return self.graph._resolve_module_attr(target, resolved.attr)
        alias = _module_alias_target(self.module, name)
        if isinstance(alias, ast.Name):
            if alias.id != name:
                return self._resolve_name(alias.id)
            return None
        if alias is not None:
            return self.resolve_callable(alias)
        return None

    def _resolve_attribute(self, expr: ast.Attribute) -> Optional[Resolved]:
        value = expr.value
        if isinstance(value, ast.Name):
            if value.id in ("self", "cls") and self.info.class_name:
                own = f"{self.module.name}:{self.info.class_name}"
                method = self.graph.method_on(own, expr.attr)
                return ("func", method) if method else None
            if value.id in self.env and value.id in self.info.locals:
                method = self.graph.method_on(self.env[value.id], expr.attr)
                return ("func", method) if method else None
            base = self._resolve_name(value.id)
            if base is not None and base[0] == "class":
                method = self.graph.method_on(base[1], expr.attr)
                return ("func", method) if method else None
        if isinstance(value, ast.Call):
            # ``Scanner().probe()`` — resolve what the receiver call
            # constructs or returns, then look the method up on it.
            inner = self.resolve_callable(value.func)
            target_class: Optional[str] = None
            if inner is not None and inner[0] == "class":
                target_class = inner[1]
            elif inner is not None:
                target = self.graph.functions.get(inner[1])
                if target is not None:
                    target_class = target.returns_class
            if target_class is not None:
                method = self.graph.method_on(target_class, expr.attr)
                return ("func", method) if method else None
            return None
        parts = _dotted(expr)
        if parts and len(parts) >= 3:
            binding = resolve_attr_chain(self.graph.program, self.module,
                                         parts[:-1])
            if binding is not None and not binding.external:
                if binding.attr is None:
                    target = self.graph.program.module(binding.module)
                    if target is not None:
                        return self.graph._resolve_module_attr(
                            target, parts[-1])
                resolved = chase_reexport(self.graph.program, binding)
                if resolved and not resolved.external and resolved.attr:
                    cls = self.graph.classes.get(
                        f"{resolved.module}:{resolved.attr}")
                    if cls is not None:
                        method = self.graph.method_on(cls.qualname,
                                                      parts[-1])
                        return ("func", method) if method else None
        return None

    def _class_from_annotation(self, annotation: Optional[ast.AST]
                               ) -> Optional[str]:
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and \
                isinstance(annotation.value, str):
            name = annotation.value.strip().strip("\"'")
            if name.isidentifier():
                resolved = self._resolve_name(name)
                if resolved is not None and resolved[0] == "class":
                    return resolved[1]
            return None
        if isinstance(annotation, (ast.Name, ast.Attribute)):
            resolved = self.resolve_callable(annotation)
            if resolved is not None and resolved[0] == "class":
                return resolved[1]
        return None

    # -- linking -------------------------------------------------------------

    def link(self) -> None:
        info = self.info
        self._collect_locals()
        self._type_parameters()
        self._type_local_assignments()
        self._infer_return_class()
        for node in _own_nodes(info.statements):
            if isinstance(node, ast.Call):
                self._link_call(node)
            elif isinstance(node, ast.ExceptHandler):
                self._check_broad_except(node)
            elif isinstance(node, ast.Attribute) and \
                    isinstance(node.ctx, ast.Load):
                self._check_environ_read(node)
            if not info.is_module_node:
                self._check_global_mutation(node)
        # Closures conservatively run when their definer runs.
        for other in self.graph.functions.values():
            if other.parent == info.qualname:
                info.calls.append(CallEdge(other.line, other.qualname))

    def _collect_locals(self) -> None:
        info = self.info
        if info.is_module_node or info.node is None:
            return
        args = info.node.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])):
            info.locals.add(arg.arg)
        declared_global: Set[str] = set()
        for child in _own_nodes(info.statements):
            if isinstance(child, ast.Global):
                declared_global.update(child.names)
            elif isinstance(child, ast.Name) and \
                    isinstance(child.ctx, ast.Store):
                info.locals.add(child.id)
            elif isinstance(child, ast.ExceptHandler) and child.name:
                info.locals.add(child.name)
            elif isinstance(child, (ast.Import, ast.ImportFrom)):
                for alias in child.names:
                    info.locals.add(
                        alias.asname or alias.name.split(".")[0])
        for nested in _inner_defs(info.statements):
            info.locals.add(nested.name)
        info.locals -= declared_global

    def _type_parameters(self) -> None:
        if self.info.is_module_node:
            return
        args = self.info.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            cls = self._class_from_annotation(arg.annotation)
            if cls is not None:
                self.env[arg.arg] = cls

    def _infer_return_class(self) -> None:
        info = self.info
        if info.is_module_node:
            return
        cls = self._class_from_annotation(info.node.returns)
        if cls is None:
            for node in _own_nodes(info.statements):
                if isinstance(node, ast.Return) and \
                        isinstance(node.value, ast.Call):
                    resolved = self.resolve_callable(node.value.func)
                    if resolved is not None and resolved[0] == "class":
                        cls = resolved[1]
                        break
        info.returns_class = cls

    def _type_local_assignments(self) -> None:
        for node in _own_nodes(self.info.statements):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                cls = self._class_from_annotation(node.annotation)
                if cls and isinstance(node.target, ast.Name):
                    self.env.setdefault(node.target.id, cls)
                continue
            if value is None or not isinstance(value, ast.Call):
                continue
            resolved = self.resolve_callable(value.func)
            cls = None
            if resolved is not None and resolved[0] == "class":
                cls = resolved[1]
            elif resolved is not None:
                target = self.graph.functions.get(resolved[1])
                if target is not None:
                    cls = target.returns_class
            if cls is None:
                continue
            for target_node in targets:
                if isinstance(target_node, ast.Name):
                    self.env.setdefault(target_node.id, cls)

    # -- per-node checks -----------------------------------------------------

    def _add_effect(self, effect: Effect, line: int, code: str,
                    message: str) -> None:
        info = self.info
        def_line = None if info.is_module_node else info.line
        site = EffectSite(effect, line, code, message)
        pragma = self.module.pragmas.grant(line, def_line, effect)
        if pragma is not None:
            info.allowed.append((site, pragma))
        else:
            info.effects.append(site)

    def _add_call(self, line: int, callee: str) -> None:
        self.info.calls.append(CallEdge(line, callee))

    def _link_call(self, node: ast.Call) -> None:
        resolved = self.resolve_callable(node.func)
        if resolved is not None:
            kind, qualname = resolved
            if kind == "func":
                self._add_call(node.lineno, qualname)
            else:
                for method in ("__init__", "__post_init__", "__call__"):
                    target = self.graph.method_on(qualname, method)
                    if target is not None:
                        self._add_call(node.lineno, target)
        else:
            self._scan_leaf_call(node)
        # Function/method references passed as arguments may be called
        # later (functools.partial, sort keys, registry tables).
        for value in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(value, (ast.Name, ast.Attribute)):
                callback = self.resolve_callable(value)
                if callback is not None and callback[0] == "func":
                    self._add_call(node.lineno, callback[1])

    def _is_module_ref(self, name: str) -> bool:
        """Is *name* an imported external module (not shadowed)?"""
        if name in self.info.locals:
            return False
        binding = self.module.bindings.get(name)
        return binding is not None and binding.external and \
            binding.attr is None

    _OPEN_LIKE = (("os", "fdopen"), ("io", "open"), ("gzip", "open"),
                  ("tarfile", "open"), ("lzma", "open"), ("bz2", "open"))

    def _scan_leaf_call(self, node: ast.Call) -> None:
        parts = _dotted(node.func)
        if parts is None:
            return
        head, tail = parts[0], parts[-1]
        code = ".".join(parts) + "()"
        line = node.lineno
        pair = (parts[-2], tail) if len(parts) >= 2 else None
        # open-family calls: effect depends on the mode argument.
        if (parts == ["open"] and "open" not in self.info.locals) or \
                (pair in self._OPEN_LIKE):
            effect, message = _open_effect(node)
            self._add_effect(effect, line, code, message)
            return
        rule = ATTR_CALL_INDEX.get(pair) if pair else None
        if rule is not None:
            self._add_effect(rule.effect, line, code, rule.message)
            return
        if tail == "utcnow":
            self._add_effect(Effect.WALL_CLOCK, line, code, UTCNOW_MESSAGE)
            return
        if tail == "Random" and not node.args and not node.keywords:
            self._add_effect(Effect.AMBIENT_RNG, line, code,
                             UNSEEDED_RANDOM_MESSAGE)
            return
        if len(parts) == 2 and head == "random" and \
                self._is_module_ref(head) and tail in GLOBAL_RNG_FUNCS:
            self._add_effect(Effect.AMBIENT_RNG, line, code,
                             GLOBAL_RNG_MESSAGE)
            return
        if head == "secrets" and self._is_module_ref(head):
            self._add_effect(Effect.OS_ENTROPY, line, code, SECRETS_MESSAGE)
            return
        if parts == ["hash"] and not self._inside_hash_method():
            self._add_effect(Effect.HASH_ORDER, line, "hash()", HASH_MESSAGE)
            return
        if len(parts) == 1 and parts[0] in NAME_CALL_RULES and \
                parts[0] not in self.info.locals:
            effect, message = NAME_CALL_RULES[parts[0]]
            self._add_effect(effect, line, code, message)
            return
        if len(parts) >= 2 and tail in METHOD_TAIL_RULES:
            effect, message = METHOD_TAIL_RULES[tail]
            self._add_effect(effect, line, code, message)

    def _inside_hash_method(self) -> bool:
        info: Optional[FunctionInfo] = self.info
        while info is not None:
            if info.name == "__hash__":
                return True
            info = self.graph.functions.get(info.parent) \
                if info.parent else None
        return False

    def _check_environ_read(self, node: ast.Attribute) -> None:
        parts = _dotted(node)
        if parts == ["os", "environ"] and self._is_module_ref("os"):
            self._add_effect(Effect.ENV, node.lineno, "os.environ",
                             "environment read; pass configuration "
                             "explicitly")

    def _check_broad_except(self, node: ast.ExceptHandler) -> None:
        if not _is_broad_except(node):
            return
        info = self.info
        def_line = None if info.is_module_node else info.line
        pragma = self.module.pragmas.grant_broad_except(node.lineno,
                                                        def_line)
        if pragma is None:
            info.broad_excepts.append(node.lineno)

    # -- global mutation -----------------------------------------------------

    def _enclosing_locals(self) -> Set[str]:
        if self._shadowed is None:
            names: Set[str] = set(self.info.locals)
            parent = self.info.parent
            while parent is not None:
                outer = self.graph.functions.get(parent)
                if outer is None:
                    break
                names |= outer.locals
                parent = outer.parent
            self._shadowed = names
        return self._shadowed

    def _module_level_names(self) -> Set[str]:
        if self._module_names is None:
            names: Set[str] = set()
            for child in self.module.tree.body:
                if isinstance(child, ast.Assign):
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                elif isinstance(child, ast.AnnAssign) and \
                        isinstance(child.target, ast.Name):
                    names.add(child.target.id)
            self._module_names = names
        return self._module_names

    def _check_global_mutation(self, node: ast.AST) -> None:
        def is_global_base(expr: ast.AST) -> Optional[str]:
            while isinstance(expr, (ast.Subscript, ast.Attribute)):
                expr = expr.value
            if isinstance(expr, ast.Name) and \
                    expr.id not in self._enclosing_locals() and \
                    expr.id in self._module_level_names():
                return expr.id
            return None

        if isinstance(node, ast.Global):
            self._add_effect(
                Effect.GLOBAL_MUTATION, node.lineno,
                f"global {', '.join(node.names)}", GLOBAL_MUTATION_MESSAGE)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    name = is_global_base(target)
                    if name is not None:
                        self._add_effect(
                            Effect.GLOBAL_MUTATION, node.lineno,
                            f"{name}[...] =", GLOBAL_MUTATION_MESSAGE)
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in MUTATOR_METHODS:
            name = is_global_base(node.func.value)
            if name is not None:
                self._add_effect(
                    Effect.GLOBAL_MUTATION, node.lineno,
                    f"{name}.{node.func.attr}()", GLOBAL_MUTATION_MESSAGE)


def _open_effect(node: ast.Call) -> Tuple[Effect, str]:
    """FS_READ or FS_WRITE depending on an open-call's mode argument."""
    mode: Optional[str] = None
    if len(node.args) >= 2:
        if isinstance(node.args[1], ast.Constant) and \
                isinstance(node.args[1].value, str):
            mode = node.args[1].value
        else:
            return (Effect.FS_WRITE, OPEN_WRITE_MESSAGE)  # unknown mode
    for keyword in node.keywords:
        if keyword.arg == "mode":
            if isinstance(keyword.value, ast.Constant) and \
                    isinstance(keyword.value.value, str):
                mode = keyword.value.value
            else:
                return (Effect.FS_WRITE, OPEN_WRITE_MESSAGE)
    if mode is None:
        return (Effect.FS_READ, OPEN_READ_MESSAGE)
    if any(flag in mode for flag in "wax+"):
        return (Effect.FS_WRITE, OPEN_WRITE_MESSAGE)
    return (Effect.FS_READ, OPEN_READ_MESSAGE)


def _is_broad_except(node: ast.ExceptHandler) -> bool:
    if node.type is None:
        return True
    types = node.type.elts if isinstance(node.type, ast.Tuple) \
        else [node.type]
    for entry in types:
        if isinstance(entry, ast.Name) and \
                entry.id in ("Exception", "BaseException"):
            return True
    return False
