"""The effect lattice, leaf-effect seed tables, and pragma grammar.

This module is the shared vocabulary of the effect analyzer:

* :class:`Effect` — the ten-member lattice of ambient interactions a
  function can have with the world outside its arguments;
* :data:`ATTR_CALL_RULES` / :data:`NAME_CALL_RULES` /
  :data:`METHOD_TAIL_RULES` — the leaf seeds: concrete call patterns
  that *introduce* an effect (everything else only propagates);
* the pragma grammar — ``# repro: allow-effect[EFFECT] -- why`` and
  ``# repro: allow-broad-except -- why`` — by which code declares an
  intentional effect and carries the burden of justifying it.

``tools/check_determinism.py`` derives its ban tables from the rules
flagged ``determinism_ban=True`` here, so the per-file checker and the
interprocedural analyzer share one source of truth and cannot drift:
the old tool's bans are, by construction, a subset of the analyzer's
seeds (the analyzer additionally seeds ``perf_counter``-family clocks,
environment reads, filesystem and process access, network primitives,
and global mutation — effects the per-file tool never modelled).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple


class Effect(enum.Enum):
    """One kind of ambient interaction; the lattice is their powerset."""

    WALL_CLOCK = "wall-clock"          # reading or pacing on real time
    AMBIENT_RNG = "ambient-rng"        # unseeded / global randomness
    OS_ENTROPY = "os-entropy"          # urandom, secrets, SystemRandom
    ENV = "env"                        # environment / machine identity
    FS_READ = "fs-read"                # reading files or directories
    FS_WRITE = "fs-write"              # creating/mutating the filesystem
    NETWORK = "network"                # sockets and real HTTP
    PROCESS = "process"                # spawning/killing/exiting processes
    GLOBAL_MUTATION = "global-mutation"  # writing module-level state
    HASH_ORDER = "hash-order"          # per-process randomized str hashing

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Stable display order (declaration order of the lattice).
EFFECT_ORDER: Tuple[Effect, ...] = tuple(Effect)


def effect_sort_key(effect: Effect) -> int:
    """Index of *effect* in the canonical lattice order."""
    return EFFECT_ORDER.index(effect)


@dataclass(frozen=True)
class CallRule:
    """One leaf seed: calling ``{obj}.{attr}(...)`` has ``effect``.

    ``determinism_ban=True`` marks the rules the per-file determinism
    lint (``tools/check_determinism.py``) bans outright; its tables
    are generated from exactly these entries.
    """

    obj: str
    attr: str
    effect: Effect
    message: str
    determinism_ban: bool = False

    @property
    def pair(self) -> Tuple[str, str]:
        return (self.obj, self.attr)


_WALL_MSG = "wall-clock read; take a reference time argument"

#: ``obj.attr(...)`` leaf seeds, keyed on the last two dotted parts.
ATTR_CALL_RULES: Tuple[CallRule, ...] = (
    # -- the determinism lint's historical bans (order preserved) ----------
    CallRule("datetime", "now", Effect.WALL_CLOCK, _WALL_MSG, True),
    CallRule("datetime", "utcnow", Effect.WALL_CLOCK, _WALL_MSG, True),
    CallRule("date", "today", Effect.WALL_CLOCK, _WALL_MSG, True),
    CallRule("time", "time", Effect.WALL_CLOCK, _WALL_MSG, True),
    CallRule("time", "time_ns", Effect.WALL_CLOCK, _WALL_MSG, True),
    CallRule("time", "monotonic", Effect.WALL_CLOCK, _WALL_MSG, True),
    CallRule("random", "SystemRandom", Effect.OS_ENTROPY,
             "OS entropy; use a seeded random.Random", True),
    CallRule("os", "urandom", Effect.OS_ENTROPY,
             "OS entropy; use a seeded random.Random", True),
    CallRule("time", "sleep", Effect.WALL_CLOCK,
             "wall-clock pacing; use simulated time or "
             "deadline-based supervision", True),
    CallRule("os", "_exit", Effect.PROCESS,
             "skips interpreter cleanup; crash injection belongs "
             "in repro.runtime.chaos", True),
    # -- analyzer-only seeds (beyond the per-file tool's reach) ------------
    CallRule("time", "perf_counter", Effect.WALL_CLOCK,
             "timer read; timings are measurements, not content"),
    CallRule("time", "perf_counter_ns", Effect.WALL_CLOCK,
             "timer read; timings are measurements, not content"),
    CallRule("time", "monotonic_ns", Effect.WALL_CLOCK, _WALL_MSG),
    CallRule("time", "process_time", Effect.WALL_CLOCK,
             "timer read; timings are measurements, not content"),
    CallRule("time", "process_time_ns", Effect.WALL_CLOCK,
             "timer read; timings are measurements, not content"),
    CallRule("time", "thread_time", Effect.WALL_CLOCK,
             "timer read; timings are measurements, not content"),
    CallRule("time", "localtime", Effect.WALL_CLOCK, _WALL_MSG),
    CallRule("time", "gmtime", Effect.WALL_CLOCK, _WALL_MSG),
    CallRule("datetime", "today", Effect.WALL_CLOCK, _WALL_MSG),
    CallRule("uuid", "uuid1", Effect.WALL_CLOCK,
             "timestamp+MAC UUID; derive ids from repro.canon instead"),
    CallRule("uuid", "uuid4", Effect.OS_ENTROPY,
             "random UUID; derive ids from repro.canon instead"),
    CallRule("os", "getenv", Effect.ENV,
             "environment read; pass configuration explicitly"),
    CallRule("os", "putenv", Effect.ENV, "environment write"),
    CallRule("os", "unsetenv", Effect.ENV, "environment write"),
    CallRule("environ", "get", Effect.ENV,
             "environment read; pass configuration explicitly"),
    CallRule("environ", "setdefault", Effect.ENV, "environment write"),
    CallRule("os", "getlogin", Effect.ENV, "machine-identity read"),
    CallRule("getpass", "getuser", Effect.ENV, "machine-identity read"),
    CallRule("platform", "node", Effect.ENV, "machine-identity read"),
    CallRule("socket", "gethostname", Effect.ENV, "machine-identity read"),
    CallRule("os", "getcwd", Effect.ENV,
             "working-directory read; pass paths explicitly"),
    CallRule("os", "listdir", Effect.FS_READ, "directory read"),
    CallRule("os", "scandir", Effect.FS_READ, "directory read"),
    CallRule("os", "walk", Effect.FS_READ, "directory read"),
    CallRule("os", "stat", Effect.FS_READ, "file metadata read"),
    CallRule("os", "lstat", Effect.FS_READ, "file metadata read"),
    CallRule("path", "exists", Effect.FS_READ, "file probe"),
    CallRule("path", "isfile", Effect.FS_READ, "file probe"),
    CallRule("path", "isdir", Effect.FS_READ, "file probe"),
    CallRule("path", "getsize", Effect.FS_READ, "file metadata read"),
    CallRule("path", "getmtime", Effect.FS_READ, "file metadata read"),
    CallRule("path", "expanduser", Effect.ENV, "home-directory read"),
    CallRule("os", "makedirs", Effect.FS_WRITE, "directory write"),
    CallRule("os", "mkdir", Effect.FS_WRITE, "directory write"),
    CallRule("os", "rmdir", Effect.FS_WRITE, "directory write"),
    CallRule("os", "removedirs", Effect.FS_WRITE, "directory write"),
    CallRule("os", "remove", Effect.FS_WRITE, "file delete"),
    CallRule("os", "unlink", Effect.FS_WRITE, "file delete"),
    CallRule("os", "rename", Effect.FS_WRITE, "file write"),
    CallRule("os", "replace", Effect.FS_WRITE, "file write"),
    CallRule("os", "symlink", Effect.FS_WRITE, "file write"),
    CallRule("os", "link", Effect.FS_WRITE, "file write"),
    CallRule("os", "chmod", Effect.FS_WRITE, "file metadata write"),
    CallRule("os", "utime", Effect.FS_WRITE, "file metadata write"),
    CallRule("os", "truncate", Effect.FS_WRITE, "file write"),
    CallRule("os", "fdopen", Effect.FS_READ, "file handle open"),
    CallRule("shutil", "rmtree", Effect.FS_WRITE, "tree delete"),
    CallRule("shutil", "copy", Effect.FS_WRITE, "file copy"),
    CallRule("shutil", "copy2", Effect.FS_WRITE, "file copy"),
    CallRule("shutil", "copyfile", Effect.FS_WRITE, "file copy"),
    CallRule("shutil", "copytree", Effect.FS_WRITE, "tree copy"),
    CallRule("shutil", "move", Effect.FS_WRITE, "file move"),
    CallRule("tempfile", "mkdtemp", Effect.FS_WRITE, "tempdir create"),
    CallRule("tempfile", "mkstemp", Effect.FS_WRITE, "tempfile create"),
    CallRule("tempfile", "TemporaryDirectory", Effect.FS_WRITE,
             "tempdir create"),
    CallRule("tempfile", "NamedTemporaryFile", Effect.FS_WRITE,
             "tempfile create"),
    CallRule("socket", "socket", Effect.NETWORK, "raw socket"),
    CallRule("socket", "create_connection", Effect.NETWORK, "raw socket"),
    CallRule("socket", "getaddrinfo", Effect.NETWORK, "DNS lookup"),
    CallRule("socket", "gethostbyname", Effect.NETWORK, "DNS lookup"),
    CallRule("request", "urlopen", Effect.NETWORK, "real HTTP request"),
    CallRule("client", "HTTPConnection", Effect.NETWORK,
             "real HTTP connection"),
    CallRule("client", "HTTPSConnection", Effect.NETWORK,
             "real HTTP connection"),
    CallRule("subprocess", "run", Effect.PROCESS, "child process"),
    CallRule("subprocess", "Popen", Effect.PROCESS, "child process"),
    CallRule("subprocess", "call", Effect.PROCESS, "child process"),
    CallRule("subprocess", "check_call", Effect.PROCESS, "child process"),
    CallRule("subprocess", "check_output", Effect.PROCESS, "child process"),
    CallRule("os", "system", Effect.PROCESS, "child process"),
    CallRule("os", "popen", Effect.PROCESS, "child process"),
    CallRule("os", "fork", Effect.PROCESS, "process fork"),
    CallRule("os", "kill", Effect.PROCESS, "signal send"),
    CallRule("os", "waitpid", Effect.PROCESS, "child wait"),
    CallRule("os", "abort", Effect.PROCESS, "process abort"),
    CallRule("multiprocessing", "Pool", Effect.PROCESS, "process pool"),
    CallRule("multiprocessing", "Process", Effect.PROCESS, "child process"),
    CallRule("multiprocessing", "get_context", Effect.PROCESS,
             "process pool"),
    CallRule("signal", "signal", Effect.PROCESS, "signal handler install"),
    CallRule("signal", "alarm", Effect.PROCESS, "wall-clock alarm"),
)

#: ``(obj, attr) -> rule`` lookup.
ATTR_CALL_INDEX: Dict[Tuple[str, str], CallRule] = {
    rule.pair: rule for rule in ATTR_CALL_RULES}

#: Module-level ``random.*`` functions that use the global unseeded RNG
#: (a determinism-lint ban; effect AMBIENT_RNG).
GLOBAL_RNG_FUNCS: FrozenSet[str] = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "getrandbits", "uniform", "gauss", "betavariate", "seed",
})

#: Messages for the pattern rules that need code, not a table lookup.
#: The determinism lint reuses these verbatim.
GLOBAL_RNG_MESSAGE = "global unseeded RNG; use a seeded random.Random"
UNSEEDED_RANDOM_MESSAGE = "unseeded RNG; pass an explicit seed"
UTCNOW_MESSAGE = _WALL_MSG
SECRETS_MESSAGE = "OS entropy; use a seeded random.Random"
HASH_MESSAGE = "randomized per process; use repro.canon.stable_seed"
GLOBAL_MUTATION_MESSAGE = ("mutates module-level state; thread it "
                           "through arguments or justify the memo")
OPEN_READ_MESSAGE = "file read"
OPEN_WRITE_MESSAGE = "file write"
INPUT_MESSAGE = "interactive read"

#: Bare-name call seeds (builtins).  ``open`` is handled in code (its
#: effect depends on the mode argument); ``hash`` is handled in code
#: (allowed inside ``__hash__``).
NAME_CALL_RULES: Dict[str, Tuple[Effect, str]] = {
    "input": (Effect.ENV, INPUT_MESSAGE),
}

#: Method-name seeds applied to *any* receiver when the two-part pair
#: lookup misses — the pathlib idiom (``some_path.read_text()``).
#: Deliberately conservative: only names that unambiguously touch the
#: filesystem no matter the receiver type.
METHOD_TAIL_RULES: Dict[str, Tuple[Effect, str]] = {
    "read_text": (Effect.FS_READ, "file read"),
    "read_bytes": (Effect.FS_READ, "file read"),
    "write_text": (Effect.FS_WRITE, "file write"),
    "write_bytes": (Effect.FS_WRITE, "file write"),
    "iterdir": (Effect.FS_READ, "directory read"),
    "rglob": (Effect.FS_READ, "directory read"),
    "glob": (Effect.FS_READ, "directory read"),
    "touch": (Effect.FS_WRITE, "file write"),
    "hardlink_to": (Effect.FS_WRITE, "file write"),
    "symlink_to": (Effect.FS_WRITE, "file write"),
}

#: Mutator methods that, called on a module-level name, constitute
#: global mutation.
MUTATOR_METHODS: FrozenSet[str] = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "clear", "remove", "discard", "sort",
})


def banned_attr_call_messages() -> Dict[Tuple[str, str], str]:
    """The determinism lint's ban table, derived from the seed rules.

    Exactly the ``determinism_ban=True`` entries — the historical
    ``_BANNED_ATTR_CALLS`` of ``tools/check_determinism.py``, which now
    imports this function so the two tools cannot drift.
    """
    return {rule.pair: rule.message
            for rule in ATTR_CALL_RULES if rule.determinism_ban}


def determinism_ban_rules() -> List[CallRule]:
    """The seed rules the per-file determinism lint also bans."""
    return [rule for rule in ATTR_CALL_RULES if rule.determinism_ban]


# ---------------------------------------------------------------------------
# pragma grammar
# ---------------------------------------------------------------------------

#: Grammar (written after a comment hash in real code):
#: ``repro: allow-effect[WALL_CLOCK,FS_READ] -- justification``
#: ``repro: allow-broad-except -- justification``
PRAGMA_PATTERN = re.compile(
    r"#\s*repro:\s*allow-(?P<check>effect|broad-except)"
    r"(?:\[(?P<args>[^\]]*)\])?"
    r"\s*(?:--\s*(?P<why>\S.*))?\s*$")

#: Loose detector for things that *look like* pragmas but fail the
#: grammar (so typos become findings instead of silent no-ops).
PRAGMA_LOOKALIKE = re.compile(r"#\s*repro:\s*allow-\S*")


@dataclass(frozen=True)
class Pragma:
    """One parsed suppression comment."""

    line: int
    check: str                      # "effect" | "broad-except"
    effects: Tuple[Effect, ...]     # empty for broad-except
    justification: str
    text: str


@dataclass(frozen=True)
class PragmaIssue:
    """A malformed or unjustified pragma (itself a finding)."""

    line: int
    code: str                       # "unjustified" | "unknown"
    message: str
    text: str


@dataclass
class PragmaTable:
    """All pragmas of one module, with lookup by line."""

    pragmas: Dict[int, Pragma] = field(default_factory=dict)
    issues: List[PragmaIssue] = field(default_factory=list)
    used: set = field(default_factory=set)

    def grant(self, line: int, def_line: Optional[int],
              effect: Effect) -> Optional[Pragma]:
        """The pragma allowing *effect* at *line*, if any.

        Looks at the offending line first, then at the enclosing
        ``def`` line (a function-level grant).  Marks the pragma used.
        """
        for candidate in (line, def_line):
            if candidate is None:
                continue
            pragma = self.pragmas.get(candidate)
            if (pragma is not None and pragma.check == "effect"
                    and effect in pragma.effects):
                self.used.add(candidate)
                return pragma
        return None

    def grant_broad_except(self, line: int,
                           def_line: Optional[int]) -> Optional[Pragma]:
        """The pragma allowing a broad except at *line*, if any."""
        for candidate in (line, def_line):
            if candidate is None:
                continue
            pragma = self.pragmas.get(candidate)
            if pragma is not None and pragma.check == "broad-except":
                self.used.add(candidate)
                return pragma
        return None

    def unused(self) -> List[Pragma]:
        """Pragmas that suppressed nothing (stale grants)."""
        return [pragma for line, pragma in sorted(self.pragmas.items())
                if line not in self.used]


def _comment_tokens(source: str) -> List[Tuple[int, str]]:
    """(line, text) of every real comment token in *source*.

    Tokenizing (rather than line-scanning) keeps pragma *examples*
    inside docstrings and string literals from parsing as pragmas.
    """
    import io
    import tokenize
    comments: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def parse_pragmas(source: str) -> PragmaTable:
    """Extract every ``# repro: allow-*`` pragma from *source*.

    A pragma without a ``-- justification`` tail, or naming an unknown
    effect, is recorded as an issue — unexplained suppressions are
    exactly what the analyzer exists to forbid.
    """
    table = PragmaTable()
    for lineno, text in _comment_tokens(source):
        match = PRAGMA_PATTERN.search(text)
        if match is None:
            lookalike = PRAGMA_LOOKALIKE.search(text)
            if lookalike is not None:
                table.issues.append(PragmaIssue(
                    lineno, "unknown",
                    f"unrecognized pragma {lookalike.group(0)!r} (grammar: "
                    f"'# repro: allow-effect[EFFECT] -- justification')",
                    text.strip()))
            continue
        check = match.group("check")
        args = match.group("args")
        why = (match.group("why") or "").strip()
        effects: List[Effect] = []
        bad = False
        if check == "effect":
            names = [part.strip() for part in (args or "").split(",")
                     if part.strip()]
            if not names:
                table.issues.append(PragmaIssue(
                    lineno, "unknown",
                    "allow-effect pragma names no effect "
                    "(write allow-effect[WALL_CLOCK])", text.strip()))
                bad = True
            for name in names:
                try:
                    effects.append(Effect[name])
                except KeyError:
                    known = ", ".join(e.name for e in EFFECT_ORDER)
                    table.issues.append(PragmaIssue(
                        lineno, "unknown",
                        f"unknown effect {name!r} (known: {known})",
                        text.strip()))
                    bad = True
        elif args is not None:
            table.issues.append(PragmaIssue(
                lineno, "unknown",
                "allow-broad-except takes no [...] arguments",
                text.strip()))
            bad = True
        if not why:
            table.issues.append(PragmaIssue(
                lineno, "unjustified",
                f"pragma 'allow-{check}' has no '-- justification'; "
                f"unexplained suppressions are findings", text.strip()))
            bad = True
        if not bad:
            table.pragmas[lineno] = Pragma(
                lineno, check, tuple(effects), why, text.strip())
    return table
