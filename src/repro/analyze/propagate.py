"""Fixpoint effect propagation over the call graph.

Each function starts with its leaf effects; effects then flow caller-
ward along call edges until nothing changes.  For every (function,
effect) pair the propagation keeps one *witness* — the leaf site or
the call edge the effect first arrived through — so a contract
violation can print the full call chain down to the offending line.

Module pseudo-nodes (``pkg.mod:<module>``) participate like ordinary
functions; additionally, importing a program module executes its
top-level code, so module-node effects also flow along the static
import graph.  When module effects are later combined into an
entrypoint's certificate, :data:`~repro.analyze.effects.Effect.
GLOBAL_MUTATION` is exempted — import-time initialization of module
state (registries, memo tables, compiled patterns) runs exactly once
per process and is a function of the code version, not of run order.
Per-call mutation inside functions gets no such exemption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from .callgraph import CallEdge, CallGraph, EffectSite
from .effects import Effect, effect_sort_key

#: How an effect got into a function: its own leaf, or via a call.
Witness = Union[EffectSite, CallEdge]

#: function qualname -> effect -> witness
EffectMap = Dict[str, Dict[Effect, Witness]]


def propagate(graph: CallGraph) -> EffectMap:
    """Run leaf seeding + caller-ward propagation to a fixpoint."""
    effects: EffectMap = {}
    for qualname, info in graph.functions.items():
        table: Dict[Effect, Witness] = {}
        for site in info.effects:
            table.setdefault(site.effect, site)
        effects[qualname] = table

    # Reverse edges: callee -> list of (caller, edge).
    callers: Dict[str, List[Tuple[str, CallEdge]]] = {}
    for qualname, info in graph.functions.items():
        for edge in info.calls:
            callers.setdefault(edge.callee, []).append((qualname, edge))
    # Importing a module runs its top-level code: caller-ward edges
    # from each module node to the module nodes importing it.
    for module in graph.program.sorted_modules():
        importer = f"{module.name}:<module>"
        for imported in module.static_imports:
            if imported in graph.program:
                edge = CallEdge(1, f"{imported}:<module>")
                callers.setdefault(edge.callee, []).append((importer, edge))

    worklist: List[str] = [q for q, table in effects.items() if table]
    while worklist:
        callee = worklist.pop()
        callee_effects = effects.get(callee)
        if not callee_effects:
            continue
        for caller, edge in callers.get(callee, ()):
            caller_effects = effects[caller]
            changed = False
            for effect in callee_effects:
                if effect not in caller_effects:
                    caller_effects[effect] = edge
                    changed = True
            if changed:
                worklist.append(caller)
    return effects


@dataclass(frozen=True)
class ChainStep:
    """One hop of an effect's provenance chain."""

    qualname: str
    line: int
    code: str                  # call text or leaf code


def witness_chain(graph: CallGraph, effects: EffectMap, qualname: str,
                  effect: Effect, limit: int = 24) -> List[ChainStep]:
    """The call chain from *qualname* down to the leaf site."""
    chain: List[ChainStep] = []
    current = qualname
    seen: Set[str] = set()
    while current not in seen and len(chain) < limit:
        seen.add(current)
        witness = effects.get(current, {}).get(effect)
        if witness is None:
            break
        if isinstance(witness, EffectSite):
            chain.append(ChainStep(current, witness.line, witness.code))
            break
        chain.append(ChainStep(current, witness.line,
                               f"calls {witness.callee}"))
        current = witness.callee
    return chain


def function_effects(graph: CallGraph, effects: EffectMap,
                     qualname: str) -> List[Effect]:
    """An entrypoint's full effect set: own + its module's import-time
    effects (minus the import-time GLOBAL_MUTATION exemption)."""
    table = dict(effects.get(qualname, {}))
    info = graph.functions.get(qualname)
    if info is not None and not info.is_module_node:
        module_effects = effects.get(f"{info.module}:<module>", {})
        for effect, witness in module_effects.items():
            if effect is Effect.GLOBAL_MUTATION:
                continue
            table.setdefault(effect, witness)
    return sorted(table, key=effect_sort_key)


def module_effect_witness(graph: CallGraph, effects: EffectMap,
                          qualname: str,
                          effect: Effect) -> Optional[str]:
    """Which node an entrypoint's *effect* came from (for chains)."""
    if effect in effects.get(qualname, {}):
        return qualname
    info = graph.functions.get(qualname)
    if info is not None:
        module_node = f"{info.module}:<module>"
        if effect in effects.get(module_node, {}):
            return module_node
    return None
