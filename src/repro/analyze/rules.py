"""Rule metadata for the effect analyzer's findings.

Kept in a leaf module (no imports from :mod:`repro.lint` beyond the
severity enum) so the lint output layer can pull these descriptions
into its SARIF rules table without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..lint.findings import Severity

#: Analyzer findings are about source code, not DER artifacts.
KIND_CODE = "code"


@dataclass(frozen=True)
class AnalyzeRule:
    """One analyzer rule, mirroring the lint catalogue's shape."""

    rule_id: str
    summary: str
    severity: Severity
    kind: str = KIND_CODE
    reference: str = "DESIGN.md effect lattice"


ANALYZE_RULES: Tuple[AnalyzeRule, ...] = (
    AnalyzeRule(
        "ANALYZE_BROAD_EXCEPT",
        "broad 'except Exception' without an allow-broad-except pragma",
        Severity.WARN),
    AnalyzeRule(
        "ANALYZE_IMPURE_CONTRACT",
        "a contract entrypoint transitively reaches an ambient effect",
        Severity.ERROR),
    AnalyzeRule(
        "ANALYZE_PRAGMA_UNJUSTIFIED",
        "an allow pragma without a '-- justification' tail",
        Severity.ERROR),
    AnalyzeRule(
        "ANALYZE_PRAGMA_UNKNOWN",
        "a malformed pragma or one naming an unknown effect",
        Severity.ERROR),
    AnalyzeRule(
        "ANALYZE_PRAGMA_UNUSED",
        "an allow pragma that suppresses nothing",
        Severity.WARN),
    AnalyzeRule(
        "ANALYZE_UNRESOLVED_REF",
        "a declared module:function ref that does not resolve statically",
        Severity.ERROR),
)

#: rule_id -> rule, for the SARIF table synthesizer.
ANALYZE_RULE_INDEX: Dict[str, AnalyzeRule] = {
    rule.rule_id: rule for rule in ANALYZE_RULES}
