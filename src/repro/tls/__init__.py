"""Simplified TLS handshake model (status_request + CertificateStatus).

:mod:`repro.tls.messages` carries the object model the servers and
browsers exchange; :mod:`repro.tls.wire` encodes those messages as
real handshake bytes so harnesses can do the paper's packet-capture
checks on actual traffic.
"""

from .messages import ClientHello, HandshakeRecord, ServerHandshake
from .wire import (
    EXT_SERVER_NAME,
    EXT_STATUS_REQUEST,
    EXT_STATUS_REQUEST_V2,
    HandshakeCapture,
    WireError,
    decode_certificate_message,
    decode_certificate_status,
    decode_client_hello,
    encode_certificate_message,
    encode_certificate_status,
    encode_client_hello,
    solicits_ocsp,
)

__all__ = [
    "ClientHello",
    "EXT_SERVER_NAME",
    "EXT_STATUS_REQUEST",
    "EXT_STATUS_REQUEST_V2",
    "HandshakeCapture",
    "HandshakeRecord",
    "ServerHandshake",
    "WireError",
    "decode_certificate_message",
    "decode_certificate_status",
    "decode_client_hello",
    "encode_certificate_message",
    "encode_certificate_status",
    "encode_client_hello",
    "solicits_ocsp",
]
