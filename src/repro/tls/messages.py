"""Simplified TLS handshake messages.

Only the parts of the handshake that matter to OCSP stapling are
modelled: the ``status_request`` (Certificate Status Request, RFC 6066)
extension in the ClientHello, the certificate chain, and the
CertificateStatus message carrying the stapled DER OCSP response.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..x509 import Certificate


@dataclass
class ClientHello:
    """What the client announces: SNI plus the status_request extension.

    The paper's browser test captures whether each client "solicits an
    OCSP response by sending the Certificate Status Request extension
    in the TLS handshake" — that is exactly ``status_request`` here.
    ``status_request_v2`` is the RFC 6961 Multiple Certificate Status
    extension, which the paper notes "has yet to see wide adoption".
    """

    server_name: str
    status_request: bool = True
    status_request_v2: bool = False


@dataclass
class ServerHandshake:
    """The server's reply: certificate chain and optional stapled OCSP.

    ``handshake_delay_ms`` carries any extra latency the server
    introduced before replying — Apache's "pause" on a cold OCSP cache
    surfaces here.  ``stapled_ocsp_chain`` is the RFC 6961 multi-staple:
    one DER OCSP response per chain element (None for elements the
    server has no status for), leaf first.
    """

    certificate_chain: List[Certificate]
    stapled_ocsp: Optional[bytes] = None
    handshake_delay_ms: float = 0.0
    stapled_ocsp_chain: Optional[List[Optional[bytes]]] = None

    @property
    def leaf(self) -> Certificate:
        """The end-entity certificate."""
        if not self.certificate_chain:
            raise ValueError("handshake carried no certificates")
        return self.certificate_chain[0]


@dataclass
class HandshakeRecord:
    """One complete simulated handshake, for scanners and tests."""

    client_hello: ClientHello
    server_handshake: ServerHandshake
    timestamp: int

    @property
    def stapled(self) -> bool:
        """True when a CertificateStatus (staple) was present."""
        return self.server_handshake.stapled_ocsp is not None
