"""Byte-level TLS handshake encoding (simplified TLS 1.2 framing).

The paper's browser methodology is packet capture: "we capture all
traffic generated from the client to ascertain whether it solicits an
OCSP response by sending the Certificate Status Request extension in
the TLS handshake".  This module gives the simulation real bytes to
capture: ClientHello (with the server_name, status_request, and
status_request_v2 extensions), Certificate, and CertificateStatus
messages in RFC 5246 handshake framing.

Only the fields the measurements read are populated; everything else
uses fixed, protocol-shaped filler.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..x509 import Certificate
from .messages import ClientHello, ServerHandshake

# Handshake message types (RFC 5246 / 6066).
HANDSHAKE_CLIENT_HELLO = 0x01
HANDSHAKE_CERTIFICATE = 0x0B
HANDSHAKE_CERTIFICATE_STATUS = 0x16

# Extension numbers.
EXT_SERVER_NAME = 0x0000
EXT_STATUS_REQUEST = 0x0005          # RFC 6066
EXT_STATUS_REQUEST_V2 = 0x0011       # RFC 6961

#: TLS 1.2 protocol version bytes.
TLS_1_2 = b"\x03\x03"

#: A plausible cipher-suite offer (values only matter structurally).
_CIPHER_SUITES = bytes.fromhex("c02bc02fc00ac014009c003c002f0035")

CERTIFICATE_STATUS_TYPE_OCSP = 1


class WireError(ValueError):
    """Raised when handshake bytes do not parse."""


def _u16(value: int) -> bytes:
    return struct.pack(">H", value)


def _u24(value: int) -> bytes:
    return struct.pack(">I", value)[1:]


def _handshake(msg_type: int, body: bytes) -> bytes:
    return bytes([msg_type]) + _u24(len(body)) + body


def _split_handshake(data: bytes) -> Tuple[int, bytes, bytes]:
    if len(data) < 4:
        raise WireError("truncated handshake header")
    msg_type = data[0]
    length = int.from_bytes(data[1:4], "big")
    if len(data) < 4 + length:
        raise WireError("truncated handshake body")
    return msg_type, data[4:4 + length], data[4 + length:]


# -- ClientHello ---------------------------------------------------------------


def encode_client_hello(hello: ClientHello) -> bytes:
    """Encode a ClientHello carrying the extensions the paper watches."""
    random = hashlib.sha256(b"client-random|" + hello.server_name.encode()).digest()
    extensions = bytearray()

    # server_name (RFC 6066 section 3).
    name = hello.server_name.encode("ascii")
    sni_entry = b"\x00" + _u16(len(name)) + name
    sni_list = _u16(len(sni_entry)) + sni_entry
    extensions += _u16(EXT_SERVER_NAME) + _u16(len(sni_list)) + sni_list

    if hello.status_request:
        # CertificateStatusRequest: status_type=ocsp(1), empty
        # responder-id list, empty request extensions.
        body = b"\x01" + _u16(0) + _u16(0)
        extensions += _u16(EXT_STATUS_REQUEST) + _u16(len(body)) + body
    if hello.status_request_v2:
        # certificate_status_req_item: ocsp_multi(2) + empty request.
        item = b"\x02" + _u16(4) + _u16(0) + _u16(0)
        body = _u16(len(item)) + item
        extensions += _u16(EXT_STATUS_REQUEST_V2) + _u16(len(body)) + body

    hello_body = (
        TLS_1_2
        + random
        + b"\x00"                               # session id length
        + _u16(len(_CIPHER_SUITES)) + _CIPHER_SUITES
        + b"\x01\x00"                            # compression: null
        + _u16(len(extensions)) + bytes(extensions)
    )
    return _handshake(HANDSHAKE_CLIENT_HELLO, hello_body)


def decode_client_hello(data: bytes) -> ClientHello:
    """Parse ClientHello bytes back into the model object."""
    msg_type, body, _rest = _split_handshake(data)
    if msg_type != HANDSHAKE_CLIENT_HELLO:
        raise WireError(f"not a ClientHello (type 0x{msg_type:02x})")
    if body[:2] != TLS_1_2:
        raise WireError("unsupported protocol version")
    cursor = 2 + 32
    session_len = body[cursor]
    cursor += 1 + session_len
    suite_len = int.from_bytes(body[cursor:cursor + 2], "big")
    cursor += 2 + suite_len
    compression_len = body[cursor]
    cursor += 1 + compression_len
    extensions_len = int.from_bytes(body[cursor:cursor + 2], "big")
    cursor += 2
    end = cursor + extensions_len
    if end > len(body):
        raise WireError("extensions overrun ClientHello body")

    server_name = ""
    status_request = False
    status_request_v2 = False
    while cursor < end:
        ext_type = int.from_bytes(body[cursor:cursor + 2], "big")
        ext_len = int.from_bytes(body[cursor + 2:cursor + 4], "big")
        ext_body = body[cursor + 4:cursor + 4 + ext_len]
        cursor += 4 + ext_len
        if ext_type == EXT_SERVER_NAME and len(ext_body) >= 5:
            name_len = int.from_bytes(ext_body[3:5], "big")
            server_name = ext_body[5:5 + name_len].decode("ascii", "replace")
        elif ext_type == EXT_STATUS_REQUEST:
            status_request = True
        elif ext_type == EXT_STATUS_REQUEST_V2:
            status_request_v2 = True
    return ClientHello(server_name=server_name, status_request=status_request,
                       status_request_v2=status_request_v2)


def solicits_ocsp(client_hello_bytes: bytes) -> bool:
    """The paper's capture check: does this ClientHello request a staple?"""
    return decode_client_hello(client_hello_bytes).status_request


# -- Certificate / CertificateStatus ----------------------------------------------


def encode_certificate_message(chain: List[Certificate]) -> bytes:
    """Encode the Certificate handshake message (RFC 5246 7.4.2)."""
    entries = b"".join(_u24(len(c.der)) + c.der for c in chain)
    return _handshake(HANDSHAKE_CERTIFICATE, _u24(len(entries)) + entries)


def decode_certificate_message(data: bytes) -> List[Certificate]:
    """Parse a Certificate message into the chain."""
    msg_type, body, _ = _split_handshake(data)
    if msg_type != HANDSHAKE_CERTIFICATE:
        raise WireError(f"not a Certificate message (type 0x{msg_type:02x})")
    total = int.from_bytes(body[:3], "big")
    cursor = 3
    end = 3 + total
    chain = []
    while cursor < end:
        length = int.from_bytes(body[cursor:cursor + 3], "big")
        cursor += 3
        chain.append(Certificate.from_der(body[cursor:cursor + length]))
        cursor += length
    return chain


def encode_certificate_status(ocsp_der: bytes) -> bytes:
    """Encode CertificateStatus carrying a stapled OCSP response."""
    body = bytes([CERTIFICATE_STATUS_TYPE_OCSP]) + _u24(len(ocsp_der)) + ocsp_der
    return _handshake(HANDSHAKE_CERTIFICATE_STATUS, body)


def decode_certificate_status(data: bytes) -> bytes:
    """Parse CertificateStatus back to the raw OCSP response bytes."""
    msg_type, body, _ = _split_handshake(data)
    if msg_type != HANDSHAKE_CERTIFICATE_STATUS:
        raise WireError(f"not a CertificateStatus (type 0x{msg_type:02x})")
    if body[0] != CERTIFICATE_STATUS_TYPE_OCSP:
        raise WireError(f"unsupported status type {body[0]}")
    length = int.from_bytes(body[1:4], "big")
    return body[4:4 + length]


# -- capture --------------------------------------------------------------------


@dataclass
class HandshakeCapture:
    """A packet-capture-like record of one handshake's messages."""

    client_messages: List[bytes] = field(default_factory=list)
    server_messages: List[bytes] = field(default_factory=list)

    @classmethod
    def record(cls, hello: ClientHello, handshake: ServerHandshake
               ) -> "HandshakeCapture":
        """Capture one simulated handshake as wire bytes."""
        capture = cls()
        capture.client_messages.append(encode_client_hello(hello))
        capture.server_messages.append(
            encode_certificate_message(handshake.certificate_chain))
        if handshake.stapled_ocsp is not None:
            capture.server_messages.append(
                encode_certificate_status(handshake.stapled_ocsp))
        return capture

    def client_solicited_ocsp(self) -> bool:
        """Did the captured ClientHello carry status_request?"""
        for message in self.client_messages:
            if message and message[0] == HANDSHAKE_CLIENT_HELLO:
                return solicits_ocsp(message)
        return False

    def stapled_response(self) -> Optional[bytes]:
        """The captured stapled OCSP response, if one was sent."""
        for message in self.server_messages:
            if message and message[0] == HANDSHAKE_CERTIFICATE_STATUS:
                return decode_certificate_status(message)
        return None

    def certificate_chain(self) -> List[Certificate]:
        """The captured certificate chain."""
        for message in self.server_messages:
            if message and message[0] == HANDSHAKE_CERTIFICATE:
                return decode_certificate_message(message)
        return []

    @property
    def total_bytes(self) -> int:
        """Wire volume of the captured handshake."""
        return sum(len(m) for m in self.client_messages + self.server_messages)
