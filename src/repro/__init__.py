"""repro — a full reproduction of "Is the Web Ready for OCSP Must-Staple?"
(Chung et al., IMC 2018) as a Python library.

The package is layered bottom-up:

* :mod:`repro.asn1` / :mod:`repro.crypto` — DER codec and RSA, from scratch;
* :mod:`repro.x509` / :mod:`repro.ocsp` — certificates, CRLs, and OCSP;
* :mod:`repro.simnet` — the deterministic network simulator;
* :mod:`repro.ca`, :mod:`repro.tls`, :mod:`repro.webserver`,
  :mod:`repro.browser` — the PKI's principals;
* :mod:`repro.datasets` — synthetic stand-ins for Censys/Alexa inputs;
* :mod:`repro.scanner` — the measurement clients;
* :mod:`repro.core` — analyses producing every figure and table.

Quick taste::

    from repro.core import assess_readiness
    print(assess_readiness().render())
"""

__version__ = "1.0.0"

__all__ = [
    "asn1",
    "browser",
    "ca",
    "core",
    "crypto",
    "datasets",
    "ocsp",
    "scanner",
    "simnet",
    "tls",
    "webserver",
    "x509",
]
