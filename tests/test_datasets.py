"""Unit tests for the synthetic datasets: market share, corpus, Alexa,
history, and the measurement world."""

import math

import pytest

from repro.datasets import (
    ALEXA_MUST_STAPLE,
    AlexaConfig,
    AlexaModel,
    CertificateCorpus,
    CorpusConfig,
    CLOUDFLARE_AFTER,
    CLOUDFLARE_BEFORE,
    MUST_STAPLE_BY_CA,
    MUST_STAPLE_CERTIFICATES,
    MeasurementWorld,
    VALID_CERTIFICATES,
    WorldConfig,
    adoption_history,
    expected_ocsp_fraction,
    must_staple_weights,
    normalized_shares,
    snapshot_for,
    https_probability,
    ocsp_probability,
    stapling_probability,
)
from repro.simnet import MEASUREMENT_START


class TestMarketShare:
    def test_shares_normalized(self):
        assert abs(sum(s.share for s in normalized_shares()) - 1.0) < 1e-9

    def test_expected_ocsp_fraction_near_paper(self):
        # Paper: 95.4% of valid certificates support OCSP.
        assert 0.93 <= expected_ocsp_fraction() <= 0.97

    def test_must_staple_weights_match_paper(self):
        weights = must_staple_weights()
        assert abs(weights["Lets Encrypt"] - 28_919 / 29_709) < 1e-9
        assert abs(sum(weights.values()) - 1.0) < 1e-9

    def test_paper_constants(self):
        assert MUST_STAPLE_CERTIFICATES == 29_709
        assert sum(MUST_STAPLE_BY_CA.values()) == 29_709
        assert MUST_STAPLE_CERTIFICATES / VALID_CERTIFICATES < 0.0005  # "0.02%"

    def test_lets_encrypt_dominant(self):
        shares = normalized_shares()
        biggest = max(shares, key=lambda s: s.share)
        assert biggest.name == "Lets Encrypt"
        assert not biggest.supports_crl  # footnote 18


class TestCorpus:
    def test_deterministic(self):
        a = CertificateCorpus(CorpusConfig(size=500, seed=1))
        b = CertificateCorpus(CorpusConfig(size=500, seed=1))
        assert [r.ca_name for r in a] == [r.ca_name for r in b]

    def test_size(self, corpus):
        assert len(corpus) == 3_000

    def test_must_staple_only_from_issuing_cas(self, corpus):
        issuers = {r.ca_name for r in corpus.must_staple_records()}
        assert issuers <= set(MUST_STAPLE_BY_CA)

    def test_must_staple_implies_ocsp(self, corpus):
        assert all(r.has_ocsp for r in corpus.must_staple_records())

    def test_ocsp_fraction_near_model(self, corpus):
        fraction = len(corpus.ocsp_records()) / len(corpus)
        assert 0.90 <= fraction <= 0.99

    def test_lets_encrypt_lifetimes_are_90_days(self, corpus):
        from repro.simnet import DAY
        le = [r for r in corpus if r.ca_name == "Lets Encrypt"]
        assert le and all((r.not_after - r.not_before) == 90 * DAY for r in le)

    def test_validity_filters(self, corpus):
        now = corpus.config.snapshot_time
        valid = corpus.valid_at(now)
        assert all(r.not_before <= now <= r.not_after for r in valid)
        month = corpus.with_min_remaining(30, now)
        assert all(r.days_remaining(now) >= 30 for r in month)
        assert len(month) <= len(valid)

    def test_ocsp_url_derived_from_ca(self, corpus):
        record = corpus.ocsp_records()[0]
        assert record.ocsp_url.startswith("http://ocsp1.")

    def test_materialize_issues_real_certificates(self, now):
        from repro.ca import CertificateAuthority
        corpus = CertificateCorpus(CorpusConfig(size=40, seed=3))
        ca = CertificateAuthority.create_root(
            "Lets Encrypt", "http://ocsp.le.test", not_before=now - 86400 * 900)
        done = corpus.materialize(
            [r for r in corpus if r.ca_name == "Lets Encrypt"][:5],
            {"Lets Encrypt": ca},
        )
        assert done
        for record in done:
            assert record.certificate is not None
            assert record.certificate.must_staple == record.must_staple
            assert record.certificate.serial_number == record.serial_number


class TestAlexa:
    def test_probability_curves_decline_with_rank(self):
        assert https_probability(1) > https_probability(999_999)
        assert ocsp_probability(1) > ocsp_probability(999_999)
        assert stapling_probability(1) > stapling_probability(999_999)

    def test_population_fractions(self, alexa_model):
        n = len(alexa_model)
        https = len(alexa_model.https_domains())
        ocsp = len(alexa_model.ocsp_domains())
        stapling = len(alexa_model.stapling_domains())
        assert 0.70 <= https / n <= 0.80               # "close to 75%"
        assert 0.88 <= ocsp / https <= 0.94            # "91.3% on average"
        assert 0.30 <= stapling / ocsp <= 0.42         # "roughly 35%"

    def test_must_staple_quota_scaled(self, alexa_model):
        # 100 per million, scaled to the sample size.
        expected = round(ALEXA_MUST_STAPLE * len(alexa_model) / 1_000_000)
        assert len(alexa_model.must_staple_domains()) == max(1, expected)

    def test_must_staple_is_lets_encrypt(self, alexa_model):
        assert all(r.ca_name == "Lets Encrypt"
                   for r in alexa_model.must_staple_domains())

    def test_deterministic(self):
        a = AlexaModel(AlexaConfig(size=300, seed=9))
        b = AlexaModel(AlexaConfig(size=300, seed=9))
        assert [(r.rank, r.https, r.stapling) for r in a] == \
            [(r.rank, r.https, r.stapling) for r in b]

    def test_ranks_span_population(self, alexa_model):
        ranks = [r.rank for r in alexa_model]
        assert min(ranks) == 1
        assert max(ranks) > 990_000


class TestHistory:
    def test_span(self):
        history = adoption_history()
        assert (history[0].year, history[0].month) == (2016, 5)
        assert (history[-1].year, history[-1].month) == (2018, 9)
        assert len(history) == 29

    def test_growth(self):
        history = adoption_history()
        assert history[-1].ocsp_pct > history[0].ocsp_pct
        assert history[-1].stapling_pct > history[0].stapling_pct

    def test_cloudflare_jump(self):
        may = snapshot_for(2017, 5)
        june = snapshot_for(2017, 6)
        assert may.cloudflare_stapling_domains < CLOUDFLARE_BEFORE * 1.05
        assert june.cloudflare_stapling_domains == CLOUDFLARE_AFTER
        # The jump is visible in the stapling percentage too.
        assert june.stapling_pct - may.stapling_pct > 2.0

    def test_labels(self):
        assert snapshot_for(2017, 6).label == "2017-06"

    def test_unknown_month_raises(self):
        with pytest.raises(KeyError):
            snapshot_for(2020, 1)


class TestWorld:
    def test_population_size(self, small_world):
        assert len(small_world.sites) == 40
        assert len(small_world.scan_targets()) == 40  # 1 cert each

    def test_deterministic(self):
        a = MeasurementWorld(WorldConfig(n_responders=40, certs_per_responder=1, seed=13))
        b = MeasurementWorld(WorldConfig(n_responders=40, certs_per_responder=1, seed=13))
        assert [s.url for s in a.sites] == [s.url for s in b.sites]
        assert [s.profile.validity_period for s in a.sites] == \
            [s.profile.validity_period for s in b.sites]

    def test_event_groups_present(self, small_world):
        families = {site.family for site in small_world.sites}
        for expected in ("comodo", "digicert", "sheca", "postsignum",
                         "identrust-unreachable", "hinet", "cnnic",
                         "cpc-gov-ae", "generic"):
            assert expected in families

    def test_comodo_outage_scoped(self, small_world):
        from repro.simnet import at
        comodo = small_world.sites_by_family("comodo")
        assert comodo
        for site in comodo:
            outage = site.origin.active_outage("Oregon", at(2018, 4, 25, 19, 30))
            assert outage is not None
            assert site.origin.active_outage("Virginia", at(2018, 4, 25, 19, 30)) is None

    def test_unreachable_site_always_out(self, small_world):
        site = small_world.sites_by_family("identrust-unreachable")[0]
        for vantage in ("Oregon", "Seoul"):
            assert site.origin.active_outage(vantage, MEASUREMENT_START + 1000)

    def test_cpc_profile_includes_root(self, small_world):
        site = small_world.sites_by_family("cpc-gov-ae")[0]
        assert site.profile.include_root_chain

    def test_hinet_non_overlapping(self, small_world):
        site = small_world.sites_by_family("hinet")[0]
        assert site.profile.validity_period == site.profile.update_interval == 7200

    def test_certificates_point_at_their_responder(self, small_world):
        for site in small_world.sites[:10]:
            for certificate in site.certificates:
                assert certificate.ocsp_urls[0].rstrip("/") in (
                    site.url, site.url.replace("https://", "http://"))

    def test_noise_deterministic(self, small_world):
        a = small_world._noise("Sao-Paulo", "origin-5-generic", MEASUREMENT_START)
        b = small_world._noise("Sao-Paulo", "origin-5-generic", MEASUREMENT_START)
        assert a == b

    def test_noise_rate_roughly_calibrated(self, small_world):
        """Averaged over many origins, noise matches the configured
        rate — but concentrates on a flappy minority."""
        origins = [f"origin-{i}" for i in range(60)]
        samples = 300
        hits = sum(
            1 for origin in origins for i in range(samples)
            if small_world._noise("Sao-Paulo", origin, MEASUREMENT_START + i * 3600)
        )
        rate = hits / (len(origins) * samples)
        target = small_world.config.noise_rates["Sao-Paulo"]
        assert abs(rate - target) < 0.015

    def test_noise_concentrated_on_flappy_minority(self, small_world):
        origins = [f"origin-{i}" for i in range(80)]
        flappy = sum(1 for origin in origins if small_world._is_flappy(origin))
        assert 0.15 <= flappy / len(origins) <= 0.50
        # Non-flappy origins never see noise.
        clean = next(o for o in origins if not small_world._is_flappy(o))
        assert all(
            small_world._noise("Sao-Paulo", clean, MEASUREMENT_START + i * 3600) is None
            for i in range(200)
        )

    def test_too_small_world_rejected(self):
        with pytest.raises(ValueError):
            MeasurementWorld(WorldConfig(n_responders=5))

    def test_scale_factor(self):
        config = WorldConfig(n_responders=134)
        assert config.scale(536) == 134
        assert config.scale(1) == 1
        assert abs(config.scale_factor - 4.0) < 0.01

    def test_site_for_url(self, small_world):
        site = small_world.sites[0]
        assert small_world.site_for_url(site.url) is site
        assert small_world.site_for_url("http://nowhere.test") is None
