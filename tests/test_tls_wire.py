"""Tests for the TLS wire codec and handshake captures."""

import pytest

from hypothesis import given, strategies as st

from repro.tls import (
    ClientHello,
    HandshakeCapture,
    ServerHandshake,
    WireError,
    decode_certificate_message,
    decode_certificate_status,
    decode_client_hello,
    encode_certificate_message,
    encode_certificate_status,
    encode_client_hello,
    solicits_ocsp,
)


class TestClientHelloWire:
    def test_round_trip_defaults(self):
        hello = ClientHello("example.com")
        decoded = decode_client_hello(encode_client_hello(hello))
        assert decoded.server_name == "example.com"
        assert decoded.status_request is True
        assert decoded.status_request_v2 is False

    def test_round_trip_no_status_request(self):
        hello = ClientHello("x.test", status_request=False)
        decoded = decode_client_hello(encode_client_hello(hello))
        assert decoded.status_request is False

    def test_round_trip_v2(self):
        hello = ClientHello("x.test", status_request=True, status_request_v2=True)
        decoded = decode_client_hello(encode_client_hello(hello))
        assert decoded.status_request_v2 is True

    def test_solicits_ocsp(self):
        assert solicits_ocsp(encode_client_hello(ClientHello("a.test")))
        assert not solicits_ocsp(
            encode_client_hello(ClientHello("a.test", status_request=False)))

    def test_handshake_type_byte(self):
        assert encode_client_hello(ClientHello("a.test"))[0] == 0x01

    def test_truncated_rejected(self):
        data = encode_client_hello(ClientHello("a.test"))
        with pytest.raises(WireError):
            decode_client_hello(data[:10])

    def test_wrong_type_rejected(self):
        data = bytearray(encode_client_hello(ClientHello("a.test")))
        data[0] = 0x02
        with pytest.raises(WireError):
            decode_client_hello(bytes(data))

    @given(name=st.from_regex(r"[a-z0-9.-]{1,40}", fullmatch=True),
           sr=st.booleans(), v2=st.booleans())
    def test_round_trip_property(self, name, sr, v2):
        hello = ClientHello(name, status_request=sr, status_request_v2=v2)
        decoded = decode_client_hello(encode_client_hello(hello))
        assert decoded == hello


class TestCertificateWire:
    def test_chain_round_trip(self, ca, leaf):
        chain = [leaf, ca.certificate]
        decoded = decode_certificate_message(encode_certificate_message(chain))
        assert [c.der for c in decoded] == [c.der for c in chain]

    def test_empty_chain(self):
        assert decode_certificate_message(encode_certificate_message([])) == []

    def test_wrong_type_rejected(self, leaf):
        with pytest.raises(WireError):
            decode_certificate_status(encode_certificate_message([leaf]))


class TestCertificateStatusWire:
    def test_round_trip(self):
        payload = b"\x30\x03\x0a\x01\x00"
        assert decode_certificate_status(encode_certificate_status(payload)) == payload

    @given(payload=st.binary(min_size=1, max_size=4096))
    def test_round_trip_property(self, payload):
        assert decode_certificate_status(encode_certificate_status(payload)) == payload


class TestHandshakeCapture:
    def test_capture_with_staple(self, ca, leaf):
        hello = ClientHello("plain.example")
        handshake = ServerHandshake(certificate_chain=[leaf, ca.certificate],
                                    stapled_ocsp=b"\x30\x03\x0a\x01\x00")
        capture = HandshakeCapture.record(hello, handshake)
        assert capture.client_solicited_ocsp()
        assert capture.stapled_response() == b"\x30\x03\x0a\x01\x00"
        assert len(capture.certificate_chain()) == 2
        assert capture.total_bytes > len(leaf.der)

    def test_capture_without_staple(self, ca, leaf):
        hello = ClientHello("plain.example", status_request=False)
        handshake = ServerHandshake(certificate_chain=[leaf])
        capture = HandshakeCapture.record(hello, handshake)
        assert not capture.client_solicited_ocsp()
        assert capture.stapled_response() is None

    def test_capture_against_live_server(self, ca, leaf, fixture_network, now):
        from repro.webserver import IdealServer
        server = IdealServer(chain=[leaf, ca.certificate], issuer=ca.certificate,
                             network=fixture_network)
        server.tick(now)
        hello = ClientHello("plain.example")
        capture = HandshakeCapture.record(hello, server.handle_connection(hello, now))
        staple = capture.stapled_response()
        assert staple is not None
        # The captured staple verifies like the in-object one.
        from repro.ocsp import CertID, verify_response
        cert_id = CertID.for_certificate(leaf, ca.certificate)
        assert verify_response(staple, cert_id, ca.certificate, now).ok

    def test_table2_row1_from_capture(self):
        """Table 2's 'Request OCSP response' row now comes from bytes."""
        from repro.browser import run_browser_tests
        report = run_browser_tests()
        assert all(row.requests_ocsp_response for row in report.rows)
