"""Tests for the TLS stapling scanner (Section 7.1 methodology)."""

import pytest

from repro.ca import CertificateAuthority, OCSPResponder, ResponderProfile
from repro.crypto import generate_keypair
from repro.scanner import scan_servers, stapling_rate
from repro.simnet import DAY, HOUR, MEASUREMENT_START, Network, ocsp_service
from repro.webserver import ApacheServer, IdealServer, NginxServer

NOW = MEASUREMENT_START


@pytest.fixture()
def farm():
    """A small server farm: stapling and non-stapling sites."""
    ca = CertificateAuthority.create_root("Farm CA", "http://ocsp.farm.test",
                                          not_before=NOW - 365 * DAY)
    responder = OCSPResponder(ca, "http://ocsp.farm.test",
                              ResponderProfile(update_interval=None,
                                               this_update_margin=HOUR),
                              epoch_start=NOW - 7 * DAY)
    network = Network()
    network.bind("ocsp.farm.test",
                 network.add_origin("farm-ocsp", "us-east", ocsp_service(responder)))

    def site(name, server_class, stapling=True, must_staple=False):
        leaf = ca.issue_leaf(name, generate_keypair(512, rng=hash(name) & 0xFFFF),
                             not_before=NOW - DAY, must_staple=must_staple)
        return server_class(chain=[leaf, ca.certificate], issuer=ca.certificate,
                            network=network, stapling_enabled=stapling)

    servers = [
        site("a.example", IdealServer),
        site("b.example", ApacheServer),
        site("c.example", NginxServer),
        site("d.example", ApacheServer, stapling=False),
        site("e.example", NginxServer, stapling=False),
        site("f.example", IdealServer, must_staple=True),
    ]
    return servers


class TestScanServers:
    def test_observation_fields(self, farm):
        observations = scan_servers(farm, NOW)
        assert len(observations) == 6
        names = {o.hostname for o in observations}
        assert "a.example" in names and "f.example" in names

    def test_stapling_detected_after_warmup(self, farm):
        observations = scan_servers(farm, NOW, warmup_connections=2)
        by_host = {o.hostname: o for o in observations}
        assert by_host["a.example"].stapled       # ideal
        assert by_host["b.example"].stapled       # apache, warmed
        assert by_host["c.example"].stapled       # nginx, warmed
        assert not by_host["d.example"].stapled   # stapling off
        assert not by_host["e.example"].stapled

    def test_cold_nginx_undercounts(self, farm):
        """Without warm-up, nginx's first-client behaviour hides its
        stapling support — the measurement pitfall the scanner's
        warm-up parameter exists for."""
        cold = scan_servers([farm[2]], NOW, warmup_connections=0)
        assert not cold[0].stapled

    def test_must_staple_flag_surfaced(self, farm):
        observations = scan_servers(farm, NOW, warmup_connections=1)
        by_host = {o.hostname: o for o in observations}
        assert by_host["f.example"].must_staple
        assert not by_host["a.example"].must_staple

    def test_stapling_rate(self, farm):
        observations = scan_servers(farm, NOW, warmup_connections=2)
        rate = stapling_rate(observations)
        assert abs(rate - 4 / 6) < 1e-9

    def test_stapling_rate_empty(self):
        assert stapling_rate([]) == 0.0

    def test_apache_delay_visible(self, farm):
        """The scanner sees Apache's first-connection pause."""
        observations = scan_servers([farm[1]], NOW, warmup_connections=0)
        assert observations[0].handshake_delay_ms > 0
