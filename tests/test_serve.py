"""The serve stack: transport-neutral core, cache, batcher, daemon.

The load-bearing property throughout: every transport — the in-process
simnet exchange, the ServeApp fast path, and the asyncio daemon over
real TCP — answers byte-identically for the same (request bytes,
simulated clock), because they all drive the same responder core.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.ca import OCSPResponder, ResponderProfile
from repro.ocsp import OCSPRequest, ResponseArtifact
from repro.serve import (
    PresignedCache,
    ServeApp,
    ServeDaemon,
    SignQueue,
    expected_digest,
    replay_inprocess,
    replay_tcp,
    synthesize_traffic,
)
from repro.simnet import DAY, HOUR, HTTPRequest, ocsp_http_exchange, ocsp_request

URL = "http://ocsp.fixture.test"


@pytest.fixture()
def app(responder):
    built = ServeApp(now=1_525_000_000)
    built.add_responder("ocsp.fixture.test", responder)
    return built


def _request(cert_id, nonce=None, prefer_get=False):
    der = OCSPRequest.for_single(cert_id, nonce=nonce).encode()
    return ocsp_request(URL, der, prefer_get=prefer_get)


# ---------------------------------------------------------------------------
# transport-neutral byte-identity (the redesigned API's contract)
# ---------------------------------------------------------------------------

class TestByteIdentity:

    def test_post_matches_core(self, app, responder, cert_id):
        request = _request(cert_id)
        direct = ocsp_http_exchange(responder, request, app.now)
        served = app.exchange(request)
        assert served.status_code == direct.status_code == 200
        assert served.body == direct.body
        assert served.headers == direct.headers

    def test_warm_cache_hit_is_still_identical(self, app, responder, cert_id):
        request = _request(cert_id)
        direct = ocsp_http_exchange(responder, request, app.now)
        app.exchange(request)
        runtime = app.runtimes["ocsp.fixture.test"]
        assert runtime.cache.hits == 0
        again = app.exchange(request)
        assert runtime.cache.hits == 1
        assert again.body == direct.body

    def test_get_transport_identical(self, app, responder, cert_id):
        request = _request(cert_id, prefer_get=True)
        assert request.method == "GET"
        direct = ocsp_http_exchange(responder, request, app.now)
        assert app.exchange(request).body == direct.body
        # ...and the warm hit too (GET decodes to the same DER).
        assert app.exchange(request).body == direct.body

    def test_nonced_request_identical_and_cached_separately(
            self, app, responder, cert_id):
        plain = _request(cert_id)
        nonced = _request(cert_id, nonce=b"\x01" * 16)
        app.exchange(plain)
        direct = ocsp_http_exchange(responder, nonced, app.now)
        served = app.exchange(nonced)
        assert served.body == direct.body
        assert served.body != app.exchange(plain).body

    def test_undecodable_get_path_identical(self, app, responder):
        request = HTTPRequest("GET", URL + "/%%%not-base64")
        direct = ocsp_http_exchange(responder, request, app.now)
        served = app.exchange(request)
        assert served.status_code == direct.status_code == 200
        assert served.body == direct.body  # malformed-request envelope

    def test_empty_get_path_identical(self, app, responder):
        request = HTTPRequest("GET", URL + "/")
        assert app.exchange(request).body == \
            ocsp_http_exchange(responder, request, app.now).body

    def test_other_methods_405(self, app, responder, cert_id):
        der = OCSPRequest.for_single(cert_id).encode()
        request = HTTPRequest("PUT", URL, body=der)
        direct = ocsp_http_exchange(responder, request, app.now)
        served = app.exchange(request)
        assert served.status_code == direct.status_code == 405

    def test_unknown_host_404(self, app, cert_id):
        der = OCSPRequest.for_single(cert_id).encode()
        request = HTTPRequest("POST", "http://nobody.test/", body=der)
        assert app.exchange(request).status_code == 404

    def test_malformed_window_responder_never_cached(self, ca, now):
        """A transiently-malformed responder's body flips mid-epoch, so
        pre-signing it would serve stale malformed bytes — the runtime
        must bypass the cache entirely and track the core exactly."""
        from repro.ca import MalformedWindow
        hostile = OCSPResponder(
            ca, URL, ResponderProfile(
                update_interval=DAY,
                malformed_windows=(MalformedWindow(now, now + HOUR,
                                                   "truncated"),)),
            epoch_start=now - 7 * DAY)
        app = ServeApp(now=now)
        app.add_responder("ocsp.fixture.test", hostile)
        runtime = app.runtimes["ocsp.fixture.test"]
        assert not runtime.cacheable
        cert_id = _minted_cert_id(ca, now)
        request = _request(cert_id)
        # Inside the window: the malformed body, twice (no caching).
        inside = ocsp_http_exchange(hostile, request, now)
        assert app.exchange(request, now=now).body == inside.body
        assert app.exchange(request, now=now).body == inside.body
        # After the window closes (same generation epoch): real bytes.
        later = now + 2 * HOUR
        outside = ocsp_http_exchange(hostile, request, later)
        assert outside.body != inside.body
        assert app.exchange(request, now=later).body == outside.body
        assert len(runtime.cache) == 0


def _minted_cert_id(ca, now):
    from repro.crypto import generate_keypair
    from repro.ocsp import CertID
    leaf = ca.issue_leaf("cached.example", generate_keypair(512, rng=77),
                         not_before=now - DAY)
    return CertID.for_certificate(leaf, ca.certificate)


# ---------------------------------------------------------------------------
# the pre-signed cache (incl. the nextUpdate fencepost regression)
# ---------------------------------------------------------------------------

class TestPresignedCache:

    def _artifact(self, next_update):
        return ResponseArtifact(body=b"resp", next_update=next_update)

    def test_fencepost_next_update_equal_now_is_expired(self):
        """Regression: an entry whose nextUpdate == now must NOT be
        served — nextUpdate is the instant newer information exists."""
        cache = PresignedCache()
        cache.put(b"req", b"key", self._artifact(next_update=1000),
                  valid_until=1000)
        assert cache.get(b"req", 999) is not None
        assert cache.get(b"req", 1000) is None
        assert cache.expirations == 1
        # The expired entry is gone, not resurrectable.
        assert cache.get(b"req", 999) is None

    def test_epoch_roll_invalidates_even_when_clock_fresh(self):
        cache = PresignedCache()
        cache.put(b"req", b"key", self._artifact(next_update=10_000),
                  valid_until=10_000, epoch=(1, 0))
        assert cache.get(b"req", 5, epoch=(1, 0)) is not None
        assert cache.get(b"req", 5, epoch=(2, 0)) is None
        assert cache.expirations == 1

    def test_capacity_eviction_clears_generation(self):
        cache = PresignedCache(capacity=2)
        for index in range(3):
            cache.put(b"r%d" % index, b"k%d" % index,
                      self._artifact(None), valid_until=None)
        assert cache.evictions == 2
        assert len(cache) == 1

    def test_end_to_end_resign_at_next_update(self, ca, now):
        """The daemon serves a pre-generated responder right up to
        nextUpdate, then re-signs — never hands out the stale bytes."""
        responder = OCSPResponder(
            ca, URL, ResponderProfile(update_interval=DAY,
                                      validity_period=2 * HOUR,
                                      this_update_margin=0),
            epoch_start=now - 7 * DAY)
        app = ServeApp(now=now)
        app.add_responder("ocsp.fixture.test", responder)
        cert_id = _minted_cert_id(ca, now)
        request = _request(cert_id)
        first = app.exchange(request)
        runtime = app.runtimes["ocsp.fixture.test"]
        artifact = runtime.lookup(request.body, now)
        assert artifact is not None and artifact.next_update == now + 2 * HOUR
        # Same generation epoch one second before expiry: cache hit.
        assert app.exchange(request, now=artifact.next_update - 1).body \
            == first.body
        # At exactly nextUpdate: expired, re-signed, and byte-identical
        # to what the core answers at that instant.
        at_boundary = app.exchange(request, now=artifact.next_update)
        direct = ocsp_http_exchange(responder, request, artifact.next_update)
        assert at_boundary.body == direct.body
        assert runtime.cache.expirations == 1


# ---------------------------------------------------------------------------
# the signing queue
# ---------------------------------------------------------------------------

class TestSignQueue:

    def test_single_flight_coalescing(self):
        queue = SignQueue()
        calls = []
        job_a = queue.submit(("k",), lambda: calls.append("a") or
                             ResponseArtifact(body=b"a"))
        job_b = queue.submit(("k",), lambda: calls.append("b") or
                             ResponseArtifact(body=b"b"))
        assert job_a is job_b
        assert queue.coalesced == 1
        assert queue.drain() == 1
        assert calls == ["a"]  # the second thunk never runs
        assert job_a.artifact.body == b"a"

    def test_drain_batches_bounded_by_max_batch(self):
        queue = SignQueue(max_batch=2)
        for index in range(5):
            queue.submit((index,),
                         (lambda i=index: ResponseArtifact(body=b"%d" % i)))
        assert queue.pending == 5
        assert queue.drain() == 5
        assert queue.pending == 0
        assert queue.batches == 3  # 2 + 2 + 1
        assert queue.largest_batch == 2

    def test_callbacks_fire_on_resolve(self):
        queue = SignQueue()
        seen = []
        job = queue.submit(("k",), lambda: ResponseArtifact(body=b"x"))
        job.callbacks.append(lambda done: seen.append(done.artifact.body))
        queue.drain()
        assert seen == [b"x"]


# ---------------------------------------------------------------------------
# the deprecated HTTP-shaped core entrypoint
# ---------------------------------------------------------------------------

class TestRespondShim:

    def test_respond_warns_once_then_delegates(self, responder, cert_id, now):
        OCSPResponder._respond_warned = False
        request = _request(cert_id)
        with pytest.warns(DeprecationWarning, match="handle"):
            via_shim = responder.respond(request, now)
        assert via_shim.body == ocsp_http_exchange(responder, request, now).body
        # The latch: the second call is silent.
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            responder.respond(request, now)

    def test_handle_rejects_http_shaped_arguments(self, responder, cert_id,
                                                  now):
        with pytest.raises(TypeError, match="DER request bytes"):
            responder.handle(_request(cert_id), now)


# ---------------------------------------------------------------------------
# ResponseArtifact wire recovery
# ---------------------------------------------------------------------------

class TestResponseArtifact:

    def test_from_body_signed(self, responder, cert_id, now):
        der = OCSPRequest.for_single(cert_id).encode()
        artifact = responder.handle(der, now)
        recovered = ResponseArtifact.from_body(artifact.body)
        assert recovered.source == "fetched"
        assert recovered.produced_at == artifact.produced_at
        assert recovered.next_update == artifact.next_update

    def test_from_body_error_envelope(self, responder, now):
        artifact = responder.handle(None, now)
        assert artifact.source == "error:malformed_request"
        recovered = ResponseArtifact.from_body(artifact.body)
        assert recovered.source == "error:malformed_request"
        assert recovered.next_update is None

    def test_from_body_garbage(self):
        recovered = ResponseArtifact.from_body(b"\xff\x00garbage")
        assert recovered.source == "undecodable"
        assert recovered.produced_at is None

    def test_fresh_fencepost(self):
        artifact = ResponseArtifact(body=b"x", next_update=100)
        assert artifact.fresh(99)
        assert not artifact.fresh(100)
        assert ResponseArtifact(body=b"x").fresh(10**10)


# ---------------------------------------------------------------------------
# the daemon over real TCP (robustness: nothing takes it down)
# ---------------------------------------------------------------------------

def _post(host, path, body):
    return (f"POST {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(body)}\r\n\r\n").encode() + body


async def _rpc(port, raw):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    writer.write_eof()
    data = await reader.read(1 << 20)
    writer.close()
    return data


def _status(raw):
    return int(raw.split(b"\r\n", 1)[0].split(b" ")[1])


def _body(raw):
    return raw.partition(b"\r\n\r\n")[2]


class TestDaemonTCP:

    HOST = "ocsp.fixture.test"

    @pytest.fixture()
    def run_daemon(self, app):
        def runner(probes):
            async def main():
                daemon = ServeDaemon(app, port=0)
                _, port = await daemon.start()
                try:
                    return await probes(port, daemon)
                finally:
                    await daemon.close()
            return asyncio.run(main())
        return runner

    def test_post_and_get_byte_identical(self, run_daemon, app, responder,
                                         cert_id):
        import base64
        import urllib.parse
        der = OCSPRequest.for_single(cert_id).encode()
        direct = ocsp_http_exchange(responder, _request(cert_id), app.now)
        encoded = urllib.parse.quote(base64.b64encode(der).decode(), safe="")

        async def probes(port, daemon):
            post_raw = await _rpc(port, _post(self.HOST, "/", der))
            get_raw = await _rpc(
                port, f"GET /{encoded} HTTP/1.1\r\n"
                      f"Host: {self.HOST}\r\n\r\n".encode())
            return post_raw, get_raw

        post_raw, get_raw = run_daemon(probes)
        assert _status(post_raw) == 200
        assert _body(post_raw) == direct.body
        assert _body(get_raw) == direct.body

    def test_hostile_mutants_as_post_bodies(self, run_daemon, app, responder,
                                            cert_id):
        """Structure-aware DER mutants thrown at the HTTP layer: every
        one gets an answer, none kills the daemon."""
        from repro.hostile import mutate, seed_world
        world = seed_world()
        mutants = [mutate(world.documents["ocsp"], mutation_id, 4242,
                          donors=world.donors).der
                   for mutation_id in range(16)]
        good = OCSPRequest.for_single(cert_id).encode()

        async def probes(port, daemon):
            statuses = []
            for der in mutants:
                raw = await _rpc(port, _post(self.HOST, "/", der))
                statuses.append(_status(raw))
            survivor = await _rpc(port, _post(self.HOST, "/", good))
            return statuses, survivor

        statuses, survivor = run_daemon(probes)
        assert all(code == 200 for code in statuses)  # OCSP error envelopes
        assert _status(survivor) == 200
        direct = ocsp_http_exchange(responder, _request(cert_id), app.now)
        assert _body(survivor) == direct.body

    def test_oversized_body_413(self, run_daemon):
        async def probes(port, daemon):
            return await _rpc(port, _post(self.HOST, "/", b"x" * (1 << 17)))
        assert _status(run_daemon(probes)) == 413

    def test_garbage_request_line_400(self, run_daemon):
        async def probes(port, daemon):
            return await _rpc(port, b"\x16\x03\x01 not http\r\n\r\n")
        assert _status(run_daemon(probes)) == 400

    def test_bad_content_length_400(self, run_daemon):
        async def probes(port, daemon):
            return await _rpc(
                port, b"POST / HTTP/1.1\r\nHost: x\r\n"
                      b"Content-Length: banana\r\n\r\n")
        assert _status(run_daemon(probes)) == 400

    def test_oversized_headers_431(self, run_daemon):
        async def probes(port, daemon):
            filler = b"X-Filler: " + b"a" * 30_000 + b"\r\n"
            return await _rpc(
                port, b"GET /-/healthz HTTP/1.1\r\nHost: x\r\n"
                      + filler + b"\r\n")
        assert _status(run_daemon(probes)) == 431

    def test_connection_drop_mid_request_daemon_survives(
            self, run_daemon, app, responder, cert_id):
        der = OCSPRequest.for_single(cert_id).encode()

        async def probes(port, daemon):
            _, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"POST / HTTP/1.1\r\nHost: x\r\n"
                         b"Content-Length: 500\r\n\r\nonly-a-fragment")
            await writer.drain()
            writer.close()
            await asyncio.sleep(0.02)
            raw = await _rpc(port, _post(self.HOST, "/", der))
            return raw, daemon.dropped_connections

        raw, dropped = run_daemon(probes)
        assert _status(raw) == 200
        assert dropped == 1

    def test_get_quoting_edge_cases(self, run_daemon, app, responder):
        """Unquoted '+' and '/', doubly-quoted padding, trailing junk —
        each answers exactly what the in-process transport answers."""
        paths = ["/AAAA", "/%2B%2F%3D", "/SGVsbG8=", "/a/b/SGVsbG8%3D",
                 "/" ]

        async def probes(port, daemon):
            raws = []
            for path in paths:
                raws.append(await _rpc(
                    port, f"GET {path} HTTP/1.1\r\n"
                          f"Host: {self.HOST}\r\n\r\n".encode()))
            return raws

        raws = run_daemon(probes)
        for path, raw in zip(paths, raws):
            direct = ocsp_http_exchange(
                responder, HTTPRequest("GET", URL + path), app.now)
            assert _status(raw) == direct.status_code, path
            assert _body(raw) == direct.body, path

    def test_unknown_host_404_and_control_endpoints(self, run_daemon):
        async def probes(port, daemon):
            missing = await _rpc(port, _post("nosuch.test", "/", b"x"))
            health = await _rpc(
                port, b"GET /-/healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            stats = await _rpc(
                port, b"GET /-/stats HTTP/1.1\r\nHost: x\r\n\r\n")
            return missing, health, stats

        missing, health, stats = run_daemon(probes)
        assert _status(missing) == 404
        assert _status(health) == 200 and _body(health) == b"ok"
        import json
        document = json.loads(_body(stats))
        assert document["daemon"]["connections"] >= 2


# ---------------------------------------------------------------------------
# the load generator
# ---------------------------------------------------------------------------

class TestLoadgen:

    def test_synthesis_is_deterministic(self, small_world):
        first = synthesize_traffic(small_world, 50, seed=9)
        second = synthesize_traffic(small_world, 50, seed=9)
        assert [(r.method, r.url, r.body) for r in first] == \
            [(r.method, r.url, r.body) for r in second]
        different = synthesize_traffic(small_world, 50, seed=10)
        assert [(r.method, r.url, r.body) for r in first] != \
            [(r.method, r.url, r.body) for r in different]

    def test_inprocess_and_tcp_replays_match_core(self, small_world):
        from repro.serve import direct_responses
        traffic = synthesize_traffic(small_world, 120, seed=5,
                                     get_fraction=0.4, nonce_fraction=0.1)
        app = ServeApp.for_world(small_world)
        expected = expected_digest(
            direct_responses(small_world, traffic, app.now))
        report = replay_inprocess(app, traffic)
        assert report.body_digest == expected
        assert set(report.status_counts) == {200}

        tcp_app = ServeApp.for_world(small_world)

        async def serve_then_replay():
            daemon = ServeDaemon(tcp_app, port=0)
            _, port = await daemon.start()
            try:
                return await asyncio.to_thread(
                    _replay_in_fresh_loop, port, traffic)
            finally:
                await daemon.close()

        tcp_report = asyncio.run(serve_then_replay())
        assert tcp_report.body_digest == expected

    def test_report_percentiles(self):
        from repro.serve import LoadReport
        report = LoadReport(requests=4, duration_s=2.0,
                            latencies_ms=[1.0, 2.0, 3.0, 4.0])
        assert report.req_per_s == 2.0
        assert report.percentile_ms(0) == 1.0
        assert report.percentile_ms(50) == 3.0
        assert report.percentile_ms(99) == 4.0


def _replay_in_fresh_loop(port, traffic):
    return replay_tcp("127.0.0.1", port, traffic, concurrency=4)
