"""Tests for the universal-enforcement what-if experiment."""

import pytest

from repro.core.whatif import WhatIfConfig, run_whatif


@pytest.fixture(scope="module")
def result():
    return run_whatif(WhatIfConfig(n_sites=24, days=1, seed=5))


class TestWhatIf:
    def test_all_software_classes_present(self, result):
        assert set(result.by_software) == {
            "apache-2.4.18", "nginx-1.13.12", "ideal"}

    def test_ideal_never_fails(self, result):
        assert result.failure_rate("ideal") == 0.0

    def test_legacy_software_fails_some_loads(self, result):
        legacy = (result.failure_rate("apache-2.4.18")
                  + result.failure_rate("nginx-1.13.12"))
        assert legacy > 0.0

    def test_overall_rate_bounded(self, result):
        assert 0.0 < result.overall_failure_rate < 0.5

    def test_deterministic(self):
        a = run_whatif(WhatIfConfig(n_sites=10, days=1, seed=9))
        b = run_whatif(WhatIfConfig(n_sites=10, days=1, seed=9))
        assert a.by_software == b.by_software

    def test_failure_rate_unknown_software(self, result):
        assert result.failure_rate("iis") == 0.0

    def test_no_outages_still_shows_cold_start_breakage(self):
        """Even with perfect responders, no-prefetch software breaks
        the first enforcing visitor (Nginx) — the Table-3 point."""
        result = run_whatif(WhatIfConfig(n_sites=16, days=1, seed=6,
                                         responder_outage_fraction=0.0))
        assert result.failure_rate("ideal") == 0.0
        assert result.failure_rate("nginx-1.13.12") > 0.0
