"""Unit tests for OID and time codecs."""

import pytest

from repro.asn1 import ObjectIdentifier, oid
from repro.asn1.errors import DecodeError, EncodeError
from repro.asn1.timecodec import (
    decode_generalized_time,
    decode_utc_time,
    encode_generalized_time,
    encode_utc_time,
)


class TestObjectIdentifier:
    def test_from_string(self):
        assert ObjectIdentifier("1.3.6.1.5.5.7.1.24").arcs == (1, 3, 6, 1, 5, 5, 7, 1, 24)

    def test_from_tuple(self):
        assert ObjectIdentifier((2, 5, 29, 15)).dotted == "2.5.29.15"

    def test_copy_constructor(self):
        a = ObjectIdentifier("1.2.3")
        assert ObjectIdentifier(a) == a

    def test_equality_with_string(self):
        assert oid.TLS_FEATURE == "1.3.6.1.5.5.7.1.24"

    def test_hashable(self):
        assert len({oid.SHA256, oid.SHA256, oid.SHA1}) == 2

    def test_immutable(self):
        with pytest.raises(AttributeError):
            oid.SHA1.arcs = (1, 2)

    def test_large_arc_round_trip(self):
        big = ObjectIdentifier("1.2.840.113549.1.1.11")
        assert ObjectIdentifier.decode_content(big.encode_content()) == big

    def test_very_large_arc(self):
        huge = ObjectIdentifier((2, 999, 2 ** 40))
        assert ObjectIdentifier.decode_content(huge.encode_content()) == huge

    def test_single_arc_rejected(self):
        with pytest.raises(EncodeError):
            ObjectIdentifier("1")

    def test_bad_first_arc(self):
        with pytest.raises(EncodeError):
            ObjectIdentifier("3.1")

    def test_second_arc_bound(self):
        with pytest.raises(EncodeError):
            ObjectIdentifier("1.40")
        # but 2.x allows >= 40
        assert ObjectIdentifier("2.999").arcs == (2, 999)

    def test_bad_string(self):
        with pytest.raises(EncodeError):
            ObjectIdentifier("1.2.three")

    def test_empty_content_rejected(self):
        with pytest.raises(DecodeError):
            ObjectIdentifier.decode_content(b"")

    def test_dangling_continuation_rejected(self):
        with pytest.raises(DecodeError):
            ObjectIdentifier.decode_content(b"\x2b\x86")  # ends mid-arc

    def test_redundant_leading_0x80_rejected(self):
        with pytest.raises(DecodeError):
            ObjectIdentifier.decode_content(b"\x2b\x80\x01")

    def test_registry_names(self):
        assert "Must-Staple" in repr(oid.TLS_FEATURE)


class TestTimeCodec:
    def test_utc_round_trip(self):
        ts = 1_524_585_600  # 2018-04-24 16:00:00Z
        assert decode_utc_time(encode_utc_time(ts)) == ts

    def test_utc_format(self):
        assert encode_utc_time(0) == b"700101000000Z"

    def test_utc_century_split(self):
        # 49 -> 2049, 50 -> 1950 per RFC 5280.
        assert decode_utc_time(b"490101000000Z") > decode_utc_time(b"990101000000Z")

    def test_utc_out_of_range_encode(self):
        with pytest.raises(EncodeError):
            encode_utc_time(2_600_000_000)  # 2052

    def test_generalized_round_trip(self):
        ts = 2_600_000_000
        assert decode_generalized_time(encode_generalized_time(ts)) == ts

    def test_generalized_format(self):
        assert encode_generalized_time(0) == b"19700101000000Z"

    def test_missing_z_rejected(self):
        with pytest.raises(DecodeError):
            decode_utc_time(b"1804241600000")

    def test_fractional_seconds_rejected(self):
        with pytest.raises(DecodeError):
            decode_generalized_time(b"20180424160000.5Z")

    def test_non_digit_rejected(self):
        with pytest.raises(DecodeError):
            decode_utc_time(b"18o424160000Z")

    def test_month_out_of_range(self):
        with pytest.raises(DecodeError):
            decode_generalized_time(b"20181324160000Z")

    def test_non_ascii_rejected(self):
        with pytest.raises(DecodeError):
            decode_utc_time(b"\xff80424160000Z")
