"""Tests for the high-level OCSPClient and the self-test harness."""

import pytest

from repro.browser import ClientOCSPCache
from repro.ca import (
    CertificateAuthority,
    OCSPResponder,
    ResponderProfile,
    persistent_malformed_profile,
    zero_margin_profile,
)
from repro.crypto import generate_keypair
from repro.ocsp import CertStatus, OCSPClient
from repro.scanner import Grade, self_test_responder
from repro.simnet import DAY, HOUR, MEASUREMENT_START, Network, OutageWindow, ocsp_service

NOW = MEASUREMENT_START


def make_rig(profile=None, seed=90):
    ca = CertificateAuthority.create_root(
        f"Client CA {seed}", f"http://ocsp.client{seed}.test",
        not_before=NOW - 365 * DAY)
    leaf = ca.issue_leaf("client.example", generate_keypair(512, rng=seed),
                         not_before=NOW - DAY)
    responder = OCSPResponder(
        ca, ca.ocsp_url,
        profile or ResponderProfile(update_interval=None, this_update_margin=HOUR),
        epoch_start=NOW - 7 * DAY)
    network = Network()
    origin = network.add_origin(f"client-{seed}", "us-east", ocsp_service(responder))
    network.bind(f"ocsp.client{seed}.test", origin)
    return ca, leaf, network, origin


class TestOCSPClient:
    def test_basic_check(self):
        ca, leaf, network, _ = make_rig()
        client = OCSPClient(network)
        result = client.check(leaf, ca.certificate, NOW)
        assert result.ok
        assert result.status is CertStatus.GOOD
        assert not result.from_cache

    def test_revoked(self):
        ca, leaf, network, _ = make_rig(seed=91)
        ca.revoke(leaf, NOW - HOUR, reason=1)
        client = OCSPClient(network)
        result = client.check(leaf, ca.certificate, NOW)
        assert result.ok and result.status is CertStatus.REVOKED

    def test_cache_avoids_second_request(self):
        ca, leaf, network, _ = make_rig(seed=92)
        client = OCSPClient(network, cache=ClientOCSPCache())
        first = client.check(leaf, ca.certificate, NOW)
        second = client.check(leaf, ca.certificate, NOW + 600)
        assert not first.from_cache and second.from_cache
        assert client.requests_sent == 1

    def test_network_failure_reported(self):
        ca, leaf, network, origin = make_rig(seed=93)
        origin.add_outage(OutageWindow(NOW - 1, NOW + DAY))
        client = OCSPClient(network)
        result = client.check(leaf, ca.certificate, NOW)
        assert not result.ok
        assert result.fetch is not None and not result.fetch.ok

    def test_no_ocsp_url(self):
        ca, leaf, network, _ = make_rig(seed=94)
        bare = ca.issue_leaf("bare.example", generate_keypair(512, rng=95),
                             not_before=NOW - DAY, ocsp_url=None)
        # Strip the AIA by issuing through a CA with no OCSP? The
        # default always adds one; simulate by passing an empty URL set.
        client = OCSPClient(network)
        result = client.check(leaf, ca.certificate, NOW,
                              url="http://nonexistent.test")
        assert not result.ok

    def test_nonce_mode(self):
        ca, leaf, network, _ = make_rig(seed=96)
        client = OCSPClient(network, use_nonce=True)
        result = client.check(leaf, ca.certificate, NOW)
        assert result.ok
        assert result.check.response.basic.nonce is not None

    def test_get_mode(self):
        ca, leaf, network, _ = make_rig(seed=97)
        client = OCSPClient(network, use_get=True)
        result = client.check(leaf, ca.certificate, NOW)
        assert result.ok

    def test_clock_skew_tolerance(self):
        # A responder whose thisUpdate sits 60 s in the future: the
        # strict client rejects as not-yet-valid, the tolerant accepts.
        from repro.ca import future_this_update_profile
        ca, leaf, network, _ = make_rig(future_this_update_profile(60), seed=98)
        strict = OCSPClient(network)
        tolerant = OCSPClient(network, max_clock_skew=120)
        assert not strict.check(leaf, ca.certificate, NOW).ok
        assert tolerant.check(leaf, ca.certificate, NOW).ok


class TestSelfTest:
    def test_healthy_responder(self):
        ca, leaf, network, _ = make_rig(seed=100)
        report = self_test_responder(network, ca.ocsp_url, leaf,
                                     ca.certificate, NOW)
        assert report.healthy
        assert not report.failures
        checks = {f.check for f in report.findings}
        assert "global reachability" in checks
        assert "signature" in checks
        assert "nonce echo" in checks
        assert "HTTP GET support" in checks

    def test_malformed_responder_fails_structure(self):
        ca, leaf, network, _ = make_rig(persistent_malformed_profile("zero"),
                                        seed=101)
        report = self_test_responder(network, ca.ocsp_url, leaf,
                                     ca.certificate, NOW)
        assert not report.healthy
        assert any(f.check == "ASN.1 structure" and f.grade is Grade.FAIL
                   for f in report.findings)

    def test_zero_margin_warns(self):
        ca, leaf, network, _ = make_rig(zero_margin_profile(), seed=102)
        report = self_test_responder(network, ca.ocsp_url, leaf,
                                     ca.certificate, NOW)
        assert report.healthy  # a warning, not a failure
        assert any(f.check == "thisUpdate margin" and f.grade is Grade.WARN
                   for f in report.findings)

    def test_future_this_update_fails(self):
        from repro.ca import future_this_update_profile
        ca, leaf, network, _ = make_rig(future_this_update_profile(600), seed=103)
        report = self_test_responder(network, ca.ocsp_url, leaf,
                                     ca.certificate, NOW)
        assert any(f.check == "thisUpdate margin" and f.grade is Grade.FAIL
                   for f in report.findings)

    def test_long_validity_warns(self):
        from repro.ca import long_validity_profile
        ca, leaf, network, _ = make_rig(long_validity_profile(1251), seed=104)
        report = self_test_responder(network, ca.ocsp_url, leaf,
                                     ca.certificate, NOW)
        assert any(f.check == "nextUpdate" and f.grade is Grade.WARN
                   and "1251" in f.detail for f in report.findings)

    def test_blank_next_update_warns(self):
        from repro.ca import blank_next_update_profile
        ca, leaf, network, _ = make_rig(blank_next_update_profile(), seed=105)
        report = self_test_responder(network, ca.ocsp_url, leaf,
                                     ca.certificate, NOW)
        assert any(f.check == "nextUpdate" and "blank" in f.detail
                   for f in report.findings)

    def test_serial_stuffing_warns(self):
        from repro.ca import serial_stuffing_profile
        ca, leaf, network, _ = make_rig(serial_stuffing_profile(20), seed=106)
        report = self_test_responder(network, ca.ocsp_url, leaf,
                                     ca.certificate, NOW)
        assert any(f.check == "unsolicited serials" and f.grade is Grade.WARN
                   for f in report.findings)

    def test_unreachable_fails(self):
        ca, leaf, network, origin = make_rig(seed=107)
        origin.add_outage(OutageWindow(NOW - 1, NOW + DAY))
        report = self_test_responder(network, ca.ocsp_url, leaf,
                                     ca.certificate, NOW)
        assert not report.healthy
        assert any(f.check == "global reachability" and f.grade is Grade.FAIL
                   for f in report.findings)

    def test_partial_reachability_warns(self):
        ca, leaf, network, origin = make_rig(seed=108)
        origin.add_outage(OutageWindow(NOW - 1, NOW + DAY, vantages={"Seoul"}))
        report = self_test_responder(network, ca.ocsp_url, leaf,
                                     ca.certificate, NOW)
        assert report.healthy  # warn, not fail
        assert any(f.check == "global reachability" and f.grade is Grade.WARN
                   and "Seoul" in f.detail for f in report.findings)

    def test_render(self):
        ca, leaf, network, _ = make_rig(seed=109)
        report = self_test_responder(network, ca.ocsp_url, leaf,
                                     ca.certificate, NOW)
        text = report.render()
        assert "self-test report" in text
        assert "HEALTHY" in text
