"""Tests for tools/check_determinism.py — and the tier-1 gate itself:
the whole ``src/repro`` tree must be free of ambient-state calls."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
TOOL_PATH = REPO_ROOT / "tools" / "check_determinism.py"


def _load_tool():
    spec = importlib.util.spec_from_file_location("check_determinism",
                                                  TOOL_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_determinism", module)
    spec.loader.exec_module(module)
    return module


tool = _load_tool()


def codes(source, path="src/repro/example.py"):
    return [violation.code for violation in tool.scan_source(source, path)]


class TestBannedPatterns:
    def test_datetime_now(self):
        src = "from datetime import datetime\n" \
              "def f():\n    return datetime.now()\n"
        assert codes(src) == ["datetime.now()"]

    def test_datetime_utcnow(self):
        src = "import datetime\n" \
              "def f():\n    return datetime.datetime.utcnow()\n"
        assert codes(src) == ["datetime.datetime.utcnow()"]

    def test_time_time(self):
        src = "import time\ndef f():\n    return time.time()\n"
        assert codes(src) == ["time.time()"]

    def test_time_monotonic(self):
        src = "import time\ndef f():\n    return time.monotonic()\n"
        assert codes(src) == ["time.monotonic()"]

    def test_date_today(self):
        src = "from datetime import date\ndef f():\n    return date.today()\n"
        assert codes(src) == ["date.today()"]

    def test_unseeded_random(self):
        src = "import random\nrng = random.Random()\n"
        assert codes(src) == ["random.Random()"]

    def test_global_rng_function(self):
        src = "import random\nx = random.choice([1, 2])\n"
        assert codes(src) == ["random.choice()"]

    def test_system_random(self):
        src = "import random\nrng = random.SystemRandom()\n"
        assert codes(src) == ["random.SystemRandom()"]

    def test_os_urandom(self):
        src = "import os\nkey = os.urandom(16)\n"
        assert codes(src) == ["os.urandom()"]

    def test_secrets_module(self):
        src = "import secrets\ntoken = secrets.token_bytes(8)\n"
        assert codes(src) == ["secrets.token_bytes()"]

    def test_time_sleep(self):
        src = "import time\ndef f():\n    time.sleep(1)\n"
        assert codes(src) == ["time.sleep()"]

    def test_os_exit(self):
        src = "import os\ndef f():\n    os._exit(1)\n"
        assert codes(src) == ["os._exit()"]


class TestAllowedPatterns:
    def test_seeded_random_is_fine(self):
        assert codes("import random\nrng = random.Random(42)\n") == []

    def test_seeded_instance_methods_are_fine(self):
        src = "import random\nrng = random.Random(7)\nx = rng.choice([1])\n"
        assert codes(src) == []

    def test_local_name_choice_is_not_global_rng(self):
        # ``rng.choice`` on a non-module name must not be confused with
        # the module-level ``random.choice``
        assert codes("def f(rng):\n    return rng.choice([1, 2])\n") == []

    def test_reference_time_arithmetic_is_fine(self):
        src = "def f(now):\n    return now + 3600\n"
        assert codes(src) == []

    def test_allowlist_applies_by_path_and_code(self):
        src = "import random\nrng = random.Random()\n"
        assert codes(src, path="src/repro/crypto/rsa.py") == []
        # same code outside the allowlisted file still flags
        assert codes(src, path="src/repro/crypto/other.py") != []

    def test_chaos_harness_may_crash_and_sleep(self):
        """The fault-injection primitives are the chaos module's tested
        behaviour, allowlisted there and nowhere else."""
        src = "import os\nimport time\n" \
              "def f():\n    time.sleep(1)\n    os._exit(23)\n"
        assert codes(src, path="src/repro/runtime/chaos.py") == []
        assert len(codes(src, path="src/repro/runtime/supervisor.py")) == 2


class TestTreeScan:
    def test_src_repro_is_clean(self):
        violations = tool.scan_tree(REPO_ROOT / "src" / "repro")
        rendered = "\n".join(v.render() for v in violations)
        assert violations == [], f"determinism violations:\n{rendered}"

    def test_scan_covers_the_lint_package(self):
        files = list(tool.iter_python_files(REPO_ROOT / "src" / "repro"))
        assert any(path.match("*/lint/*.py") for path in files)

    def test_scan_covers_the_faults_package(self):
        """Fault injectors must stay pure functions of
        (request, vantage, now, seed) — the lint walks them too."""
        files = list(tool.iter_python_files(REPO_ROOT / "src" / "repro"))
        covered = {path.name for path in files
                   if path.match("*/faults/*.py")}
        assert {"injectors.py", "scenarios.py", "policy.py",
                "experiments.py"} <= covered

    def test_scan_covers_the_supervised_runtime(self):
        """The supervisor must schedule by deadlines, never by
        sleeping; the chaos harness rides on its allowlist entries.
        Both files must be in the walked set for that to mean
        anything."""
        files = list(tool.iter_python_files(REPO_ROOT / "src" / "repro"))
        covered = {path.name for path in files
                   if path.match("*/runtime/*.py")}
        assert {"supervisor.py", "chaos.py", "cache.py"} <= covered

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert tool.main([str(tmp_path)]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nt = time.time()\n")
        assert tool.main([str(tmp_path)]) == 1
        assert tool.main([str(tmp_path / "missing")]) == 2
        capsys.readouterr()
