"""Property tests: the hostile corpus against every parse entrypoint.

Satellite of the repro.hostile PR: 1k seeded mutants per document
kind, pushed through every strict parser plus the TLV walker — each
must either succeed or raise a typed
:class:`~repro.asn1.errors.ASN1Error`; anything else
(``RecursionError``, ``MemoryError``, ``IndexError``, ...) is a
hardening regression.  A second property bounds allocation: parsing a
length bomb must not allocate anywhere near the announced size.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.asn1 import ASN1Error, encoder, tags
from repro.hostile import KINDS, mutate, seed_world, tlv_fixed_point
from repro.hostile.tlv import parse_forest
from repro.lint import LintContext, LintEngine
from repro.ocsp import OCSPResponse
from repro.x509 import Certificate, CertificateList

MUTANTS_PER_KIND = 1000
SEED = 2018

ENTRYPOINTS = (
    ("Certificate.from_der", Certificate.from_der),
    ("OCSPResponse.from_der", OCSPResponse.from_der),
    ("CertificateList.from_der", CertificateList.from_der),
    ("tlv.parse_forest", parse_forest),
)


@pytest.fixture(scope="module")
def world():
    return seed_world()


@pytest.mark.parametrize("kind", KINDS)
def test_mutants_raise_only_asn1_errors(world, kind):
    """Every entrypoint, every mutant: success or ASN1Error, nothing else."""
    document = world.documents[kind]
    donors = world.donors
    for mutation_id in range(MUTANTS_PER_KIND):
        mutant = mutate(document, mutation_id, SEED, donors=donors)
        for name, parse in ENTRYPOINTS:
            try:
                parse(mutant.der)
            except ASN1Error:
                pass
            except Exception as exc:  # pragma: no cover - the regression
                pytest.fail(f"{name} raised {type(exc).__name__} on "
                            f"{kind}/{mutation_id} ({mutant.family}): {exc}")


@pytest.mark.parametrize("kind", KINDS)
def test_lint_engine_never_raises_on_mutants(world, kind):
    """The lint layer classifies every mutant instead of crashing."""
    document = world.documents[kind]
    engine = LintEngine(LintContext(reference_time=world.reference_time,
                                    issuer=world.issuer,
                                    cert_id=world.cert_id))
    for mutation_id in range(0, MUTANTS_PER_KIND, 4):
        mutant = mutate(document, mutation_id, SEED, donors=world.donors)
        findings = engine.lint_der(mutant.der, kind, f"prop/{mutation_id}")
        assert isinstance(findings, list)


def test_surviving_mutants_reach_tlv_fixed_point(world):
    """decode -> re-encode -> decode is a fixed point for survivors."""
    from repro.hostile import classify_mutant
    for kind in KINDS:
        document = world.documents[kind]
        for mutation_id in range(0, MUTANTS_PER_KIND, 2):
            mutant = mutate(document, mutation_id, SEED, donors=world.donors)
            row = classify_mutant(kind, mutant.der, world)
            if row["outcome"] == "survived":
                assert row["fixed_point"] is True, (kind, mutation_id)


def test_length_bomb_allocation_is_bounded():
    """A 2^60-byte announced length must not drive allocation."""
    huge = (1 << 60) + 7
    bomb = bytes([tags.SEQUENCE, 0x88]) + huge.to_bytes(8, "big") + b"\x05\x00"
    tracemalloc.start()
    try:
        for _, parse in ENTRYPOINTS:
            with pytest.raises(ASN1Error):
                parse(bomb)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    # Generous constant bound: parsing state only, nothing proportional
    # to the announced content length.
    assert peak < 1_000_000, peak


def test_depth_bomb_allocation_and_recursion_bounded():
    """Deep nesting hits the depth cap, not the interpreter limit."""
    body = encoder.encode_null()
    for _ in range(5000):
        body = encoder.encode_tlv(tags.SEQUENCE, body)
    tracemalloc.start()
    try:
        for _, parse in ENTRYPOINTS:
            with pytest.raises(ASN1Error):
                parse(body)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert peak < 10 * len(body) + 1_000_000, peak


def test_mutation_is_reproducible_across_calls(world):
    """Same (document, mutation_id, seed) -> same bytes, any order."""
    document = world.documents["ocsp"]
    first = [mutate(document, mid, SEED, donors=world.donors).der
             for mid in range(100)]
    second = [mutate(document, mid, SEED, donors=world.donors).der
              for mid in reversed(range(100))]
    assert first == list(reversed(second))


def test_fixed_point_of_originals(world):
    for kind in KINDS:
        assert tlv_fixed_point(world.documents[kind])
