"""Tests for the extension features: nonces, OCSP-GET, PEM,
multi-stapling, attacks, latency, and alternatives."""

import pytest

from repro.browser import by_label, hardened_browser
from repro.ca import CertificateAuthority, OCSPResponder, ResponderProfile
from repro.core import (
    AttackerCapabilities,
    ManInTheMiddle,
    MechanismParameters,
    compare_mechanisms,
    measure_attack_window,
    measure_cdn_latency,
    measure_direct_latency,
)
from repro.crypto import generate_keypair
from repro.ocsp import CertID, OCSPError, OCSPRequest, OCSPResponse, verify_response
from repro.simnet import (DAY, HOUR, MEASUREMENT_START, Network, ocsp_get,
                          ocsp_http_exchange, ocsp_post, ocsp_service)
from repro.tls import ClientHello
from repro.webserver import IdealServer, MultiStapleServer, verify_chain_staples
from repro.x509 import TrustStore
from repro.x509.pem import (
    certificate_to_pem,
    certificates_from_pem,
    chain_to_pem,
    crl_from_pem,
    crl_to_pem,
    decode_pem,
    encode_pem,
)

NOW = MEASUREMENT_START


class TestNonce:
    def test_nonce_round_trip_in_response(self, ca, leaf, responder, cert_id, now):
        request = OCSPRequest.for_single(cert_id, nonce=b"\xaa" * 16)
        response = ocsp_http_exchange(responder, 
            ocsp_post(responder.url + "/", request.encode()), now)
        parsed = OCSPResponse.from_der(response.body)
        assert parsed.basic.nonce == b"\xaa" * 16

    def test_matching_nonce_accepted(self, ca, responder, cert_id, now):
        request = OCSPRequest.for_single(cert_id, nonce=b"\xbb" * 8)
        response = ocsp_http_exchange(responder, 
            ocsp_post(responder.url + "/", request.encode()), now)
        check = verify_response(response.body, cert_id, ca.certificate, now,
                                expected_nonce=b"\xbb" * 8)
        assert check.ok

    def test_wrong_nonce_rejected(self, ca, responder, cert_id, now):
        request = OCSPRequest.for_single(cert_id, nonce=b"\xbb" * 8)
        response = ocsp_http_exchange(responder, 
            ocsp_post(responder.url + "/", request.encode()), now)
        check = verify_response(response.body, cert_id, ca.certificate, now,
                                expected_nonce=b"\xcc" * 8)
        assert check.error is OCSPError.NONCE_MISMATCH

    def test_missing_nonce_rejected_when_expected(self, ca, responder, cert_id, now):
        request = OCSPRequest.for_single(cert_id)  # no nonce
        response = ocsp_http_exchange(responder, 
            ocsp_post(responder.url + "/", request.encode()), now)
        check = verify_response(response.body, cert_id, ca.certificate, now,
                                expected_nonce=b"\xdd" * 8)
        assert check.error is OCSPError.NONCE_MISMATCH

    def test_nonce_not_required_by_default(self, ca, responder, cert_id, now):
        request = OCSPRequest.for_single(cert_id, nonce=b"\xee" * 8)
        response = ocsp_http_exchange(responder, 
            ocsp_post(responder.url + "/", request.encode()), now)
        assert verify_response(response.body, cert_id, ca.certificate, now).ok


class TestOcspGet:
    def test_get_round_trip(self, ca, responder, cert_id, now):
        request = OCSPRequest.for_single(cert_id)
        response = ocsp_http_exchange(responder, ocsp_get(responder.url, request.encode()), now)
        assert verify_response(response.body, cert_id, ca.certificate, now).ok

    def test_get_path_decoding(self):
        from repro.simnet import decode_ocsp_get_path
        payload = b"\x30\x03\x02\x01\x05"
        request = ocsp_get("http://o.test", payload)
        assert decode_ocsp_get_path(request.path) == payload

    def test_get_path_url_safe(self):
        # base64 of bytes with '+' and '/' characters must survive URL
        # encoding.
        payload = bytes(range(256))
        request = ocsp_get("http://o.test", payload)
        from repro.simnet import decode_ocsp_get_path
        assert decode_ocsp_get_path(request.path) == payload

    def test_bad_path_raises(self):
        from repro.simnet import decode_ocsp_get_path
        with pytest.raises(ValueError):
            decode_ocsp_get_path("/not-base64-!!!")


class TestPEM:
    def test_certificate_round_trip(self, leaf):
        pem = certificate_to_pem(leaf)
        assert pem.startswith("-----BEGIN CERTIFICATE-----")
        [parsed] = certificates_from_pem(pem)
        assert parsed.der == leaf.der

    def test_chain_round_trip(self, ca, leaf):
        pem = chain_to_pem([leaf, ca.certificate])
        parsed = certificates_from_pem(pem)
        assert [c.der for c in parsed] == [leaf.der, ca.certificate.der]

    def test_crl_round_trip(self, ca, now):
        crl = ca.build_crl(now)
        assert crl_from_pem(crl_to_pem(crl)).der == crl.der

    def test_line_length(self, leaf):
        pem = certificate_to_pem(leaf)
        body_lines = pem.splitlines()[1:-1]
        assert all(len(line) <= 64 for line in body_lines)

    def test_surrounding_text_ignored(self, leaf):
        text = "preamble junk\n" + certificate_to_pem(leaf) + "trailing junk"
        assert len(certificates_from_pem(text)) == 1

    def test_bad_base64_raises(self):
        with pytest.raises(ValueError):
            decode_pem("-----BEGIN CERTIFICATE-----\n!!!\n-----END CERTIFICATE-----")

    def test_no_crl_block_raises(self):
        with pytest.raises(ValueError):
            crl_from_pem("no blocks here")

    def test_multiple_labels(self, ca, leaf, now):
        text = certificate_to_pem(leaf) + crl_to_pem(ca.build_crl(now))
        labels = [label for label, _ in decode_pem(text)]
        assert labels == ["CERTIFICATE", "X509 CRL"]


def _multistaple_rig():
    root = CertificateAuthority.create_root(
        "T Root", "http://ocsp.troot.test", not_before=NOW - 3 * 365 * DAY)
    intermediate = root.create_intermediate("T Int", "http://ocsp.tint.test")
    leaf = intermediate.issue_leaf("ms.example", generate_keypair(512, rng=50),
                                   not_before=NOW - DAY)
    network = Network()
    for name, authority in (("troot", root), ("tint", intermediate)):
        responder = OCSPResponder(
            authority, f"http://ocsp.{name}.test",
            ResponderProfile(update_interval=None, this_update_margin=HOUR),
            epoch_start=NOW - 7 * DAY)
        network.bind(f"ocsp.{name}.test",
                     network.add_origin(f"{name}", "us-east", ocsp_service(responder)))
    server = MultiStapleServer(
        chain=[leaf, intermediate.certificate, root.certificate],
        issuer=intermediate.certificate, network=network)
    issuers = [intermediate.certificate, root.certificate, root.certificate]
    return root, intermediate, leaf, server, issuers


class TestMultiStaple:
    def test_v2_client_gets_chain_staples(self):
        *_, server, issuers = _multistaple_rig()
        server.tick(NOW)
        hello = ClientHello("ms.example", status_request=True,
                            status_request_v2=True)
        handshake = server.handle_connection(hello, NOW)
        assert handshake.stapled_ocsp_chain is not None
        assert len(handshake.stapled_ocsp_chain) == 3
        assert handshake.stapled_ocsp_chain[0] is not None  # leaf
        assert handshake.stapled_ocsp_chain[1] is not None  # intermediate
        assert handshake.stapled_ocsp_chain[2] is None      # root: no status

    def test_v1_client_gets_single_staple_only(self):
        *_, server, _ = _multistaple_rig()
        server.tick(NOW)
        hello = ClientHello("ms.example", status_request=True)
        handshake = server.handle_connection(hello, NOW)
        assert handshake.stapled_ocsp is not None
        assert handshake.stapled_ocsp_chain is None

    def test_verify_chain_staples_healthy(self):
        *_, server, issuers = _multistaple_rig()
        server.tick(NOW)
        hello = ClientHello("ms.example", status_request=True,
                            status_request_v2=True)
        verdicts = verify_chain_staples(
            server.handle_connection(hello, NOW), issuers, NOW)
        assert verdicts == [True, True, None]

    def test_revoked_intermediate_detected(self):
        root, intermediate, leaf, server, issuers = _multistaple_rig()
        server.tick(NOW)
        root.revoke(intermediate.certificate, NOW + HOUR, reason=2)
        server.cache = None
        server._chain_cache.clear()
        server.tick(NOW + 2 * HOUR)
        hello = ClientHello("ms.example", status_request=True,
                            status_request_v2=True)
        verdicts = verify_chain_staples(
            server.handle_connection(hello, NOW + 2 * HOUR),
            issuers, NOW + 2 * HOUR)
        assert verdicts[0] is True   # leaf itself not revoked
        assert verdicts[1] is False  # intermediate flagged

    def test_no_chain_without_v2_extension(self):
        *_, server, issuers = _multistaple_rig()
        server.tick(NOW)
        handshake = server.handle_connection(
            ClientHello("ms.example", status_request=True), NOW)
        assert verify_chain_staples(handshake, issuers, NOW) == [None, None, None]


def _attack_rig(validity=DAY):
    ca = CertificateAuthority.create_root(
        "ATK2 CA", "http://ocsp.atk2.test", not_before=NOW - 365 * DAY)
    leaf = ca.issue_leaf("atk2.example", generate_keypair(512, rng=60),
                         not_before=NOW - DAY, must_staple=True,
                         lifetime=400 * DAY)
    responder = OCSPResponder(
        ca, "http://ocsp.atk2.test",
        ResponderProfile(update_interval=None, this_update_margin=0,
                         validity_period=validity),
        epoch_start=NOW - 7 * DAY)
    network = Network()
    network.bind("ocsp.atk2.test",
                 network.add_origin("atk2", "us-east", ocsp_service(responder)))
    server = IdealServer(chain=[leaf, ca.certificate], issuer=ca.certificate,
                         network=network)
    return ca, leaf, server, network, TrustStore([ca.certificate])


class TestAttacks:
    def test_replay_window_equals_validity(self):
        firefox = by_label()["Firefox 60 (Linux)"]
        ca, leaf, server, network, trust = _attack_rig(validity=6 * HOUR)
        ca.revoke(leaf, NOW, reason=1)
        outcome = measure_attack_window(
            firefox, server, leaf, ca.certificate, trust,
            AttackerCapabilities(replay_staple=True),
            revoked_at=NOW, horizon=3 * DAY, step=HOUR,
            network=network, server_tick=server.tick)
        assert not outcome.unbounded
        assert abs(outcome.window - 6 * HOUR) <= HOUR

    def test_strip_blocks_soft_fail_forever(self):
        chrome = by_label()["Chrome 66 (Linux)"]
        ca, leaf, server, network, trust = _attack_rig()
        ca.revoke(leaf, NOW, reason=1)
        outcome = measure_attack_window(
            chrome, server, leaf, ca.certificate, trust,
            AttackerCapabilities(strip_staple=True, block_ocsp=True),
            revoked_at=NOW, horizon=10 * DAY, step=DAY,
            network=network, server_tick=server.tick)
        assert outcome.unbounded

    def test_must_staple_stops_strip_immediately(self):
        firefox = by_label()["Firefox 60 (Linux)"]
        ca, leaf, server, network, trust = _attack_rig()
        ca.revoke(leaf, NOW, reason=1)
        outcome = measure_attack_window(
            firefox, server, leaf, ca.certificate, trust,
            AttackerCapabilities(strip_staple=True, block_ocsp=True),
            revoked_at=NOW, horizon=DAY, step=HOUR,
            network=network, server_tick=server.tick)
        assert outcome.window == 0

    def test_no_attacker_honest_server_converges(self):
        firefox = by_label()["Firefox 60 (Linux)"]
        ca, leaf, server, network, trust = _attack_rig(validity=2 * HOUR)
        ca.revoke(leaf, NOW, reason=1)
        outcome = measure_attack_window(
            firefox, server, leaf, ca.certificate, trust,
            AttackerCapabilities(),
            revoked_at=NOW, horizon=2 * DAY, step=HOUR,
            network=network, server_tick=server.tick)
        # The honest server's next refresh delivers the REVOKED staple.
        assert not outcome.unbounded
        assert outcome.window <= 3 * HOUR

    def test_mitm_passthrough_without_capabilities(self):
        ca, leaf, server, network, trust = _attack_rig()
        server.tick(NOW)
        mitm = ManInTheMiddle(server, AttackerCapabilities(), leaf, ca.certificate)
        handshake = mitm.handle_connection(ClientHello("atk2.example"), NOW)
        assert handshake.stapled_ocsp is not None


class TestLatency:
    @pytest.fixture(scope="class")
    def latency_world(self):
        from repro.datasets import MeasurementWorld, WorldConfig
        return MeasurementWorld(WorldConfig(n_responders=40,
                                            certs_per_responder=1, seed=13))

    def test_direct_latency_shape(self, latency_world):
        report = measure_direct_latency(latency_world, hours=4)
        assert len(report) > 100
        assert 100 <= report.median_ms <= 600

    def test_cdn_cuts_median(self, latency_world):
        direct = measure_direct_latency(latency_world, hours=4)
        cdn = measure_cdn_latency(latency_world, hours=4)
        assert cdn.median_ms < direct.median_ms / 3

    def test_percentiles_ordered(self, latency_world):
        report = measure_direct_latency(latency_world, hours=2)
        assert report.percentile_ms(50) <= report.percentile_ms(90) \
            <= report.percentile_ms(99)


class TestAlternatives:
    @pytest.fixture(scope="class")
    def rows(self):
        return compare_mechanisms(MechanismParameters(
            ocsp_validity=DAY, short_lived_lifetime=2 * DAY,
            horizon=20 * DAY))

    def test_four_mechanisms(self, rows):
        assert len(rows) == 4

    def test_soft_fail_unbounded_under_attack(self, rows):
        by_name = {r.mechanism: r for r in rows}
        assert by_name["CRL (soft-fail client)"].attacked_window is None
        assert by_name["OCSP (soft-fail client)"].attacked_window is None

    def test_must_staple_bounded(self, rows):
        by_name = {r.mechanism: r for r in rows}
        row = by_name["OCSP Must-Staple (hard-fail client)"]
        assert row.attacked_window is not None
        assert abs(row.attacked_window - DAY) <= HOUR

    def test_short_lived_bounded_by_lifetime(self, rows):
        by_name = {r.mechanism: r for r in rows}
        assert by_name["Short-lived certificates"].attacked_window == 2 * DAY
