"""Tests for the figure/table data generator (the "data release")."""

import csv
import os

import pytest

from repro.core.figures import FigureScale, generate_all


@pytest.fixture(scope="module")
def release(tmp_path_factory):
    outdir = tmp_path_factory.mktemp("release")
    scale = FigureScale(n_responders=40, certs_per_responder=1, scan_days=3,
                        scan_interval=12 * 3600, alexa_size=2_000,
                        corpus_size=2_000, consistency_scale=2_000, seed=13)
    written = generate_all(str(outdir), scale)
    return outdir, written


EXPECTED_FILES = [
    "sec4_deployment.txt",
    "fig2_adoption.csv",
    "fig3_availability.csv",
    "fig4_domains_unable.csv",
    "fig5_unusable.csv",
    "fig6_certs_cdf.csv",
    "fig7_serials_cdf.csv",
    "fig8_validity_cdf.csv",
    "fig9_margin_cdf.csv",
    "fig10_time_deltas.csv",
    "fig11_stapling_adoption.csv",
    "fig12_history.csv",
    "table1_discrepancies.txt",
    "table2_browsers.txt",
    "table3_webservers.txt",
]


class TestGenerateAll:
    def test_every_artefact_has_a_file(self, release):
        outdir, written = release
        names = {os.path.basename(path) for path in written}
        for expected in EXPECTED_FILES:
            assert expected in names
            assert (outdir / expected).stat().st_size > 0

    def test_fig3_csv_schema(self, release):
        outdir, _ = release
        with open(outdir / "fig3_availability.csv") as stream:
            rows = list(csv.DictReader(stream))
        assert rows
        assert set(rows[0]) == {"timestamp", "vantage", "success_pct"}
        assert all(0 <= float(row["success_pct"]) <= 100 for row in rows)
        vantages = {row["vantage"] for row in rows}
        assert len(vantages) == 6

    def test_fig8_contains_infinity(self, release):
        outdir, _ = release
        with open(outdir / "fig8_validity_cdf.csv") as stream:
            values = [row["value"] for row in csv.DictReader(stream)]
        assert "inf" in values  # blank-nextUpdate responders

    def test_fig12_has_29_months(self, release):
        outdir, _ = release
        with open(outdir / "fig12_history.csv") as stream:
            rows = list(csv.DictReader(stream))
        assert len(rows) == 29
        assert rows[0]["month"] == "2016-05"

    def test_table2_text(self, release):
        outdir, _ = release
        text = (outdir / "table2_browsers.txt").read_text()
        assert "Firefox 60 (Linux)" in text

    def test_table3_text(self, release):
        outdir, _ = release
        text = (outdir / "table3_webservers.txt").read_text()
        assert "pause conn." in text
        assert "nginx-1.13.12" in text

    def test_deterministic(self, release, tmp_path):
        outdir, _ = release
        scale = FigureScale(n_responders=40, certs_per_responder=1, scan_days=3,
                            scan_interval=12 * 3600, alexa_size=2_000,
                            corpus_size=2_000, consistency_scale=2_000, seed=13)
        generate_all(str(tmp_path), scale)
        a = (outdir / "fig3_availability.csv").read_text()
        b = (tmp_path / "fig3_availability.csv").read_text()
        assert a == b
