"""Unit tests for the crypto substrate: primes, RSA, PKCS#1, SPKI."""

import random

import pytest

from repro.crypto import (
    KeyPool,
    SignatureError,
    decode_rsa_public_key,
    decode_spki,
    encode_rsa_public_key,
    encode_spki,
    generate_keypair,
    generate_prime,
    is_probable_prime,
    is_valid,
    shared_pool,
    sign,
    verify,
)


class TestPrimes:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 97, 251):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 9, 100, 561, 8911):  # includes Carmichael numbers
            assert not is_probable_prime(c)

    def test_known_large_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert is_probable_prime(2 ** 127 - 1)

    def test_known_large_composite(self):
        assert not is_probable_prime((2 ** 127 - 1) * 7)

    def test_generate_prime_has_exact_bits(self):
        rng = random.Random(1)
        for bits in (64, 128, 256):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_generate_prime_too_small(self):
        with pytest.raises(ValueError):
            generate_prime(4, random.Random(0))

    def test_deterministic_given_seed(self):
        assert generate_prime(128, random.Random(42)) == generate_prime(128, random.Random(42))


class TestKeygen:
    def test_keypair_consistency(self):
        key = generate_keypair(512, rng=7)
        assert key.n == key.p * key.q
        assert key.n.bit_length() == 512
        # d inverts e mod phi.
        phi = (key.p - 1) * (key.q - 1)
        assert (key.d * key.e) % phi == 1

    def test_seed_determinism(self):
        assert generate_keypair(512, rng=3).n == generate_keypair(512, rng=3).n

    def test_different_seeds_differ(self):
        assert generate_keypair(512, rng=3).n != generate_keypair(512, rng=4).n

    def test_too_small_modulus_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(64)

    def test_raw_sign_verify_inverse(self):
        key = generate_keypair(512, rng=11)
        message = 123456789
        assert key.public_key.raw_verify(key.raw_sign(message)) == message

    def test_raw_sign_range_check(self):
        key = generate_keypair(512, rng=11)
        with pytest.raises(ValueError):
            key.raw_sign(key.n)


class TestPKCS1:
    @pytest.fixture(scope="class")
    def key(self):
        return generate_keypair(512, rng=20)

    def test_sign_verify(self, key):
        signature = sign(key, b"hello world")
        verify(key.public_key, b"hello world", signature)

    def test_signature_length_is_modulus_length(self, key):
        assert len(sign(key, b"x")) == 64

    def test_tampered_message_fails(self, key):
        signature = sign(key, b"hello world")
        with pytest.raises(SignatureError):
            verify(key.public_key, b"hello worle", signature)

    def test_tampered_signature_fails(self, key):
        signature = bytearray(sign(key, b"m"))
        signature[10] ^= 0x01
        assert not is_valid(key.public_key, b"m", bytes(signature))

    def test_wrong_key_fails(self, key):
        other = generate_keypair(512, rng=21)
        signature = sign(key, b"m")
        assert not is_valid(other.public_key, b"m", signature)

    def test_wrong_length_fails(self, key):
        with pytest.raises(SignatureError):
            verify(key.public_key, b"m", b"\x00" * 63)

    def test_sha1_mode(self, key):
        signature = sign(key, b"legacy", hash_name="sha1")
        verify(key.public_key, b"legacy", signature, hash_name="sha1")
        # Cross-hash verification fails.
        assert not is_valid(key.public_key, b"legacy", signature, hash_name="sha256")

    def test_unsupported_hash(self, key):
        with pytest.raises(ValueError):
            sign(key, b"m", hash_name="md5")

    def test_empty_message(self, key):
        signature = sign(key, b"")
        verify(key.public_key, b"", signature)

    def test_signature_deterministic(self, key):
        assert sign(key, b"m") == sign(key, b"m")

    def test_out_of_range_signature_rejected(self, key):
        too_big = (key.n).to_bytes(64, "big")
        with pytest.raises(SignatureError):
            verify(key.public_key, b"m", too_big)


class TestKeySerialization:
    def test_rsa_public_key_round_trip(self):
        key = generate_keypair(512, rng=30).public_key
        assert decode_rsa_public_key(encode_rsa_public_key(key)) == key

    def test_spki_round_trip(self):
        key = generate_keypair(512, rng=31).public_key
        assert decode_spki(encode_spki(key)) == key

    def test_spki_rejects_non_rsa(self):
        from repro.asn1 import encoder, oid
        bogus = encoder.encode_sequence(
            encoder.encode_sequence(encoder.encode_oid(oid.SHA1), encoder.encode_null()),
            encoder.encode_bit_string(b"\x00"),
        )
        with pytest.raises(ValueError):
            decode_spki(bogus)


class TestKeyPool:
    def test_lazy_generation(self):
        pool = KeyPool(size=3, seed=1)
        assert len(pool) == 0
        pool.take()
        assert len(pool) == 1

    def test_round_robin_after_fill(self):
        pool = KeyPool(size=2, seed=1)
        first, second = pool.take(), pool.take()
        assert pool.take() is first
        assert pool.take() is second

    def test_fresh_not_in_pool(self):
        pool = KeyPool(size=1, seed=1)
        a = pool.take()
        b = pool.fresh()
        assert a.n != b.n
        assert len(pool) == 1

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            KeyPool(size=0)

    def test_shared_pool_memoized(self):
        assert shared_pool(4, 512, 77) is shared_pool(4, 512, 77)
        assert shared_pool(4, 512, 77) is not shared_pool(4, 512, 78)

    def test_deterministic_across_instances(self):
        assert KeyPool(size=2, seed=5).take().n == KeyPool(size=2, seed=5).take().n
