"""Unit tests for the network simulator: clock, URLs, fetch pipeline."""

import pytest

from repro.simnet import (
    DAY,
    HOUR,
    MEASUREMENT_END,
    MEASUREMENT_START,
    FailureKind,
    HTTPRequest,
    HTTPResponse,
    Network,
    Origin,
    OutageWindow,
    SimulatedClock,
    SkewedClock,
    at,
    default_vantages,
    ocsp_post,
    one_way_latency_ms,
    rtt_ms,
    split_url,
)


class TestClock:
    def test_at_builds_known_timestamp(self):
        assert at(1970, 1, 1) == 0
        assert at(2018, 4, 25) == MEASUREMENT_START

    def test_measurement_window_is_132_days(self):
        assert (MEASUREMENT_END - MEASUREMENT_START) // DAY == 132

    def test_advance(self):
        clock = SimulatedClock(100)
        assert clock.advance(50) == 150
        assert clock.now() == 150

    def test_no_backwards(self):
        with pytest.raises(ValueError):
            SimulatedClock(0).advance(-1)

    def test_advance_to(self):
        clock = SimulatedClock(100)
        clock.advance_to(500)
        assert clock.now() == 500
        clock.advance_to(400)  # no-op
        assert clock.now() == 500

    def test_skewed_clock(self):
        base = SimulatedClock(1000)
        slow = SkewedClock(base, skew=-30)
        assert slow.now() == 970
        base.advance(10)
        assert slow.now() == 980


class TestURLs:
    def test_split_basic(self):
        assert split_url("http://ocsp.example.com/path/x") == \
            ("http", "ocsp.example.com", None, "/path/x")

    def test_split_no_path(self):
        assert split_url("http://host.test") == ("http", "host.test", None, "/")

    def test_split_with_port(self):
        # The paper's odd real URL: http://ocsp.pki.wayport.net:2560
        scheme, host, port, path = split_url("http://ocsp.pki.wayport.net:2560")
        assert (scheme, host, port) == ("http", "ocsp.pki.wayport.net", 2560)

    def test_split_https(self):
        assert split_url("https://x.test/")[0] == "https"

    def test_host_lowercased(self):
        assert split_url("http://OCSP.Example.COM/")[1] == "ocsp.example.com"

    def test_no_scheme_rejected(self):
        with pytest.raises(ValueError):
            split_url("ocsp.example.com/")

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError):
            split_url("http://x.test:99x9/")

    def test_ocsp_post_shape(self):
        request = ocsp_post("http://o.test", b"\x30\x00")
        assert request.method == "POST"
        assert request.body == b"\x30\x00"
        assert request.headers["Content-Type"] == "application/ocsp-request"
        assert request.host == "o.test"


class TestLatency:
    def test_symmetric(self):
        assert one_way_latency_ms("us-west", "asia") == one_way_latency_ms("asia", "us-west")

    def test_local_is_fast(self):
        assert one_way_latency_ms("europe", "europe") < 10

    def test_rtt_doubles(self):
        assert rtt_ms("Paris", "europe") == 2 * one_way_latency_ms("europe", "europe")

    def test_unknown_pair_raises(self):
        with pytest.raises(KeyError):
            one_way_latency_ms("europe", "mars")

    def test_six_vantages(self):
        vantages = default_vantages()
        assert len(vantages) == 6
        assert {v.name for v in vantages} == {
            "Oregon", "Virginia", "Sao-Paulo", "Paris", "Sydney", "Seoul"}


def echo_service(request: HTTPRequest, now: int) -> HTTPResponse:
    return HTTPResponse(200, b"echo:" + request.body)


@pytest.fixture()
def network():
    network = Network()
    origin = network.add_origin("svc", "us-east", echo_service)
    network.bind("svc.test", origin)
    return network


class TestFetchPipeline:
    def test_success(self, network):
        result = network.fetch("Virginia", HTTPRequest("GET", "http://svc.test/"), 0)
        assert result.ok
        assert result.response.body == b"echo:"
        assert result.elapsed_ms > 0

    def test_unknown_host_is_dns_failure(self, network):
        result = network.fetch("Virginia", HTTPRequest("GET", "http://nx.test/"), 0)
        assert result.failure is FailureKind.DNS
        assert not result.ok

    def test_persistent_dns_failure_per_vantage(self, network):
        binding = network.get_binding("svc.test")
        binding.dns_fail_vantages.add("Seoul")
        assert network.fetch("Seoul", HTTPRequest("GET", "http://svc.test/"), 0).failure \
            is FailureKind.DNS
        assert network.fetch("Paris", HTTPRequest("GET", "http://svc.test/"), 0).ok

    def test_persistent_fault_repaired(self, network):
        binding = network.get_binding("svc.test")
        binding.dns_fail_vantages.add("Seoul")
        binding.repaired_at = 1000
        assert not network.fetch("Seoul", HTTPRequest("GET", "http://svc.test/"), 999).ok
        assert network.fetch("Seoul", HTTPRequest("GET", "http://svc.test/"), 1000).ok

    def test_tcp_failure(self, network):
        network.get_binding("svc.test").tcp_fail_vantages.add("Oregon")
        result = network.fetch("Oregon", HTTPRequest("GET", "http://svc.test/"), 0)
        assert result.failure is FailureKind.TCP

    def test_http_error_vantage(self, network):
        network.get_binding("svc.test").http_error_vantages["Sao-Paulo"] = 404
        result = network.fetch("Sao-Paulo", HTTPRequest("GET", "http://svc.test/"), 0)
        assert result.failure is FailureKind.HTTP
        assert result.status_code == 404

    def test_invalid_https_cert(self, network):
        network.get_binding("svc.test").https_invalid_cert = True
        result = network.fetch("Paris", HTTPRequest("GET", "https://svc.test/"), 0)
        assert result.failure is FailureKind.TLS
        # Plain HTTP is unaffected.
        assert network.fetch("Paris", HTTPRequest("GET", "http://svc.test/"), 0).ok

    def test_outage_window(self, network):
        origin = network.get_origin("svc")
        origin.add_outage(OutageWindow(start=100, end=200))
        assert not network.fetch("Paris", HTTPRequest("GET", "http://svc.test/"), 150).ok
        assert network.fetch("Paris", HTTPRequest("GET", "http://svc.test/"), 99).ok
        assert network.fetch("Paris", HTTPRequest("GET", "http://svc.test/"), 200).ok

    def test_outage_vantage_scoped(self, network):
        origin = network.get_origin("svc")
        origin.add_outage(OutageWindow(start=0, end=100, vantages={"Seoul"}))
        assert not network.fetch("Seoul", HTTPRequest("GET", "http://svc.test/"), 50).ok
        assert network.fetch("Sydney", HTTPRequest("GET", "http://svc.test/"), 50).ok

    def test_http_kind_outage_returns_status(self, network):
        origin = network.get_origin("svc")
        origin.add_outage(OutageWindow(start=0, end=100, kind=FailureKind.HTTP,
                                       status_code=503))
        result = network.fetch("Paris", HTTPRequest("GET", "http://svc.test/"), 50)
        assert result.failure is FailureKind.HTTP
        assert result.status_code == 503

    def test_shared_origin_shares_outage(self, network):
        """The Comodo pattern: aliases share fate via one origin."""
        origin = network.get_origin("svc")
        network.bind("alias.test", origin)
        origin.add_outage(OutageWindow(start=0, end=100))
        for host in ("svc.test", "alias.test"):
            assert not network.fetch("Paris", HTTPRequest("GET", f"http://{host}/"), 50).ok

    def test_noise_hook(self):
        hits = []

        def noise(vantage, origin_name, now):
            hits.append((vantage, origin_name, now))
            return FailureKind.TCP if now == 7 else None

        network = Network(noise=noise)
        origin = network.add_origin("svc", "us-east", echo_service)
        network.bind("svc.test", origin)
        assert network.fetch("Paris", HTTPRequest("GET", "http://svc.test/"), 7).failure \
            is FailureKind.TCP
        assert network.fetch("Paris", HTTPRequest("GET", "http://svc.test/"), 8).ok
        assert hits == [("Paris", "svc", 7), ("Paris", "svc", 8)]

    def test_duplicate_origin_rejected(self, network):
        with pytest.raises(ValueError):
            network.add_origin("svc", "us-east", echo_service)

    def test_duplicate_binding_rejected(self, network):
        with pytest.raises(ValueError):
            network.bind("svc.test", network.get_origin("svc"))

    def test_farther_vantage_has_higher_latency(self, network):
        near = network.fetch("Virginia", HTTPRequest("GET", "http://svc.test/"), 0)
        far = network.fetch("Sydney", HTTPRequest("GET", "http://svc.test/"), 0)
        assert far.elapsed_ms > near.elapsed_ms

    def test_non_200_service_response_is_http_failure(self):
        network = Network()
        origin = network.add_origin("err", "us-east",
                                    lambda request, now: HTTPResponse(500, b""))
        network.bind("err.test", origin)
        result = network.fetch("Paris", HTTPRequest("GET", "http://err.test/"), 0)
        assert result.failure is FailureKind.HTTP
        assert result.status_code == 500


class TestOutageWindow:
    def test_duration(self):
        assert OutageWindow(start=10, end=70).duration == 60

    def test_applies(self):
        window = OutageWindow(start=10, end=20, vantages={"Paris"})
        assert window.applies("Paris", 15)
        assert not window.applies("Paris", 20)  # end-exclusive
        assert not window.applies("Seoul", 15)

    def test_boundary_instants(self):
        """Half-open semantics: start is inside, end is outside."""
        window = OutageWindow(start=10, end=20)
        assert window.applies("Paris", 10)  # start == now
        assert not window.applies("Paris", 20)  # end == now
        assert not window.applies("Paris", 9)

    def test_zero_length_window_never_applies(self):
        window = OutageWindow(start=10, end=10)
        assert window.duration == 0
        for now in (9, 10, 11):
            assert not window.applies("Paris", now)

    def test_zero_length_window_on_origin_is_inert(self):
        network = Network()
        origin = network.add_origin("zl", "us-east", echo_service)
        network.bind("zl.test", origin)
        origin.add_outage(OutageWindow(start=10, end=10))
        assert origin.had_any_outage()
        assert origin.active_outage("Paris", 10) is None
        assert network.fetch("Paris", HTTPRequest("GET", "http://zl.test/"), 10).ok

    def test_overlapping_windows_first_match_wins(self):
        """The first scheduled window active at *now* decides the
        failure mode; a later overlapping window never shadows it."""
        origin = Origin("ov", "us-east", echo_service)
        tcp = OutageWindow(start=0, end=100, kind=FailureKind.TCP)
        http = OutageWindow(start=50, end=150, kind=FailureKind.HTTP,
                            status_code=502)
        origin.add_outage(tcp)
        origin.add_outage(http)
        assert origin.active_outage("Paris", 75) is tcp
        assert origin.active_outage("Paris", 120) is http
        assert origin.active_outage("Paris", 150) is None

    def test_vantage_scoped_and_global_windows_coexist(self):
        origin = Origin("mix", "us-east", echo_service)
        seoul_only = OutageWindow(start=0, end=100, vantages={"Seoul"})
        everywhere = OutageWindow(start=200, end=300)
        origin.add_outage(seoul_only)
        origin.add_outage(everywhere)
        assert origin.active_outage("Seoul", 50) is seoul_only
        assert origin.active_outage("Paris", 50) is None
        for vantage in ("Seoul", "Paris", "Sydney"):
            assert origin.active_outage(vantage, 250) is everywhere
        assert origin.active_outage("Seoul", 150) is None
