"""Additional property-based tests: names, PEM, URLs, stats helpers."""

import math

from hypothesis import given, settings, strategies as st

from repro.core import cdf_points, fraction_at_or_below, mean, median, percentile
from repro.simnet import split_url
from repro.simnet.http import decode_ocsp_get_path, ocsp_get
from repro.x509 import Name
from repro.x509.pem import decode_pem, encode_pem

# -- Names ---------------------------------------------------------------------

name_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF),
    min_size=1, max_size=40,
)


@given(common_name=name_text, organization=st.one_of(st.none(), name_text))
def test_name_round_trip(common_name, organization):
    name = Name.build(common_name, organization=organization)
    assert Name.from_der(name.encode()) == name
    assert name.common_name == common_name


@given(common_name=name_text)
def test_name_hash_stable(common_name):
    a = Name.build(common_name)
    b = Name.build(common_name)
    assert hash(a) == hash(b)
    assert a.hash_sha1() == b.hash_sha1()


# -- PEM ---------------------------------------------------------------------

labels = st.sampled_from(["CERTIFICATE", "X509 CRL", "OCSP REQUEST"])


@given(payload=st.binary(max_size=2048), label=labels)
def test_pem_round_trip(payload, label):
    text = encode_pem(payload, label)
    [(decoded_label, decoded)] = decode_pem(text)
    assert decoded_label == label
    assert decoded == payload


@given(payloads=st.lists(st.binary(max_size=200), min_size=1, max_size=5))
def test_pem_multiple_blocks(payloads):
    text = "".join(encode_pem(p, "CERTIFICATE") for p in payloads)
    decoded = [der for _, der in decode_pem(text)]
    assert decoded == payloads


# -- URLs ---------------------------------------------------------------------

hostnames = st.from_regex(r"[a-z0-9]([a-z0-9-]{0,10}[a-z0-9])?(\.[a-z]{2,6}){1,3}",
                          fullmatch=True)


@given(host=hostnames, port=st.one_of(st.none(), st.integers(1, 65535)),
       path=st.from_regex(r"(/[a-zA-Z0-9._-]{0,12}){0,4}", fullmatch=True))
def test_split_url_round_trip(host, port, path):
    url = f"http://{host}" + (f":{port}" if port else "") + path
    scheme, parsed_host, parsed_port, parsed_path = split_url(url)
    assert scheme == "http"
    assert parsed_host == host
    assert parsed_port == port
    assert parsed_path == (path or "/")


@given(payload=st.binary(min_size=1, max_size=512))
def test_ocsp_get_path_round_trip(payload):
    request = ocsp_get("http://responder.test", payload)
    assert decode_ocsp_get_path(request.path) == payload


# -- stats helpers ----------------------------------------------------------------

finite_floats = st.floats(allow_nan=False, allow_infinity=False,
                          min_value=-1e9, max_value=1e9)


@given(values=st.lists(finite_floats, min_size=1, max_size=100))
def test_cdf_is_monotonic_and_complete(values):
    points = cdf_points(values)
    fractions = [f for _, f in points]
    assert all(b >= a for a, b in zip(fractions, fractions[1:]))
    assert math.isclose(fractions[-1], 1.0)
    xs = [v for v, _ in points]
    assert xs == sorted(xs)


@given(values=st.lists(finite_floats, min_size=1, max_size=100),
       threshold=finite_floats)
def test_fraction_at_or_below_bounds(values, threshold):
    fraction = fraction_at_or_below(values, threshold)
    assert 0.0 <= fraction <= 1.0
    if threshold >= max(values):
        assert fraction == 1.0
    if threshold < min(values):
        assert fraction == 0.0


@given(values=st.lists(finite_floats, min_size=1, max_size=50))
def test_median_between_min_and_max(values):
    m = median(values)
    assert min(values) <= m <= max(values)


@given(values=st.lists(finite_floats, min_size=1, max_size=50))
def test_mean_between_min_and_max(values):
    m = mean(values)
    assert min(values) - 1e-6 <= m <= max(values) + 1e-6


@given(values=st.lists(finite_floats, min_size=1, max_size=50),
       q=st.floats(min_value=0, max_value=100))
def test_percentile_is_a_member(values, q):
    assert percentile(values, q) in values
