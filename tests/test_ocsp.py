"""Unit tests for OCSP requests, responses, and client verification."""

import pytest

from repro.crypto import generate_keypair
from repro.ocsp import (
    CertID,
    CertStatus,
    OCSPError,
    OCSPRequest,
    OCSPResponse,
    ResponseStatus,
    RevokedInfo,
    SingleResponse,
    encode_error_response,
    encode_response,
    verify_response,
)
from repro.simnet import DAY, HOUR, WEEK
from repro.x509 import CertificateBuilder, Name, self_signed

NOW = 1_525_132_800


@pytest.fixture(scope="module")
def setup():
    ca_key = generate_keypair(512, rng=80)
    leaf_key = generate_keypair(512, rng=81)
    ca = self_signed(Name.build("OCSP CA", "T"), ca_key, 1,
                     NOW - 365 * DAY, NOW + 3650 * DAY)
    leaf = (
        CertificateBuilder().serial_number(4242).issuer(ca.subject)
        .subject(Name.build("site.test")).public_key(leaf_key.public_key)
        .validity(NOW - DAY, NOW + 90 * DAY).leaf().sign(ca_key)
    )
    cert_id = CertID.for_certificate(leaf, ca)
    return ca_key, ca, leaf, cert_id


def good_response(setup, this_update=NOW - HOUR, next_update=NOW + WEEK,
                  produced_at=None, **kwargs):
    ca_key, ca, leaf, cert_id = setup
    single = SingleResponse(cert_id, CertStatus.GOOD, this_update, next_update)
    return encode_response([single], produced_at or this_update, ca_key,
                           ca.key_hash_sha1(), **kwargs)


class TestCertID:
    def test_for_certificate_fields(self, setup):
        _, ca, leaf, cert_id = setup
        assert cert_id.serial_number == 4242
        assert len(cert_id.issuer_name_hash) == 20
        assert len(cert_id.issuer_key_hash) == 20

    def test_round_trip(self, setup):
        from repro.asn1 import Reader
        *_, cert_id = setup
        assert CertID.decode(Reader(cert_id.encode())) == cert_id

    def test_matches_issuer(self, setup):
        _, ca, leaf, cert_id = setup
        assert cert_id.matches_issuer(ca)

    def test_does_not_match_other_issuer(self, setup):
        *_, cert_id = setup
        other_key = generate_keypair(512, rng=82)
        other = self_signed(Name.build("Other CA"), other_key, 1, NOW, NOW + DAY)
        assert not cert_id.matches_issuer(other)

    def test_sha256_variant(self, setup):
        _, ca, leaf, _ = setup
        cid = CertID.for_certificate(leaf, ca, hash_name="sha256")
        assert len(cid.issuer_name_hash) == 32
        from repro.asn1 import Reader
        assert CertID.decode(Reader(cid.encode())) == cid

    def test_unsupported_hash(self, setup):
        _, ca, leaf, _ = setup
        with pytest.raises(ValueError):
            CertID.for_certificate(leaf, ca, hash_name="md5")


class TestRequest:
    def test_single_round_trip(self, setup):
        *_, cert_id = setup
        request = OCSPRequest.for_single(cert_id)
        parsed = OCSPRequest.from_der(request.encode())
        assert parsed.cert_ids == [cert_id]
        assert parsed.nonce is None

    def test_nonce_round_trip(self, setup):
        *_, cert_id = setup
        request = OCSPRequest.for_single(cert_id, nonce=b"\xaa\xbb")
        assert OCSPRequest.from_der(request.encode()).nonce == b"\xaa\xbb"

    def test_multi_certid(self, setup):
        *_, cert_id = setup
        other = CertID(cert_id.hash_name, cert_id.issuer_name_hash,
                       cert_id.issuer_key_hash, 999)
        request = OCSPRequest(cert_ids=[cert_id, other])
        assert OCSPRequest.from_der(request.encode()).serial_numbers == [4242, 999]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            OCSPRequest(cert_ids=[])


class TestResponseParsing:
    def test_successful_round_trip(self, setup):
        der = good_response(setup)
        response = OCSPResponse.from_der(der)
        assert response.is_successful
        assert response.basic.serial_numbers == [4242]
        single = response.basic.single_responses[0]
        assert single.cert_status is CertStatus.GOOD
        assert single.validity_period == WEEK + HOUR

    def test_error_statuses(self):
        for status in (ResponseStatus.TRY_LATER, ResponseStatus.UNAUTHORIZED,
                       ResponseStatus.MALFORMED_REQUEST, ResponseStatus.INTERNAL_ERROR):
            der = encode_error_response(status)
            response = OCSPResponse.from_der(der)
            assert response.response_status is status
            assert response.basic is None

    def test_error_response_rejects_successful(self):
        with pytest.raises(ValueError):
            encode_error_response(ResponseStatus.SUCCESSFUL)

    def test_empty_singles_rejected(self, setup):
        ca_key, ca, *_ = setup
        with pytest.raises(ValueError):
            encode_response([], NOW, ca_key, ca.key_hash_sha1())

    def test_blank_next_update(self, setup):
        der = good_response(setup, next_update=None)
        single = OCSPResponse.from_der(der).basic.single_responses[0]
        assert single.next_update is None
        assert single.validity_period is None

    def test_revoked_with_reason(self, setup):
        ca_key, ca, leaf, cert_id = setup
        single = SingleResponse(cert_id, CertStatus.REVOKED, NOW - HOUR, NOW + DAY,
                                revoked_info=RevokedInfo(NOW - 5 * DAY, 1))
        der = encode_response([single], NOW - HOUR, ca_key, ca.key_hash_sha1())
        parsed = OCSPResponse.from_der(der).basic.single_responses[0]
        assert parsed.cert_status is CertStatus.REVOKED
        assert parsed.revoked_info.revocation_time == NOW - 5 * DAY
        assert parsed.revoked_info.reason == 1

    def test_unknown_status(self, setup):
        ca_key, ca, leaf, cert_id = setup
        single = SingleResponse(cert_id, CertStatus.UNKNOWN, NOW - HOUR, NOW + DAY)
        der = encode_response([single], NOW - HOUR, ca_key, ca.key_hash_sha1())
        parsed = OCSPResponse.from_der(der).basic.single_responses[0]
        assert parsed.cert_status is CertStatus.UNKNOWN

    def test_produced_at_carried(self, setup):
        der = good_response(setup, produced_at=NOW - 42)
        assert OCSPResponse.from_der(der).basic.produced_at == NOW - 42

    def test_garbage_rejected(self):
        from repro.asn1.errors import ASN1Error
        for garbage in (b"", b"0", b"<html></html>", b"\x30\x02\x0a"):
            with pytest.raises((ASN1Error, ValueError)):
                OCSPResponse.from_der(garbage)

    def test_nonce_echoed(self, setup):
        der = good_response(setup, nonce=b"\x01\x02\x03")
        # parse succeeds with responseExtensions present
        assert OCSPResponse.from_der(der).is_successful


class TestVerification:
    def test_good_accepted(self, setup):
        _, ca, _, cert_id = setup
        result = verify_response(good_response(setup), cert_id, ca, NOW)
        assert result.ok and result.good and not result.revoked

    def test_malformed(self, setup):
        _, ca, _, cert_id = setup
        assert verify_response(b"0", cert_id, ca, NOW).error is OCSPError.MALFORMED

    def test_error_status(self, setup):
        _, ca, _, cert_id = setup
        result = verify_response(encode_error_response(ResponseStatus.TRY_LATER),
                                 cert_id, ca, NOW)
        assert result.error is OCSPError.ERROR_STATUS
        assert result.response_status is ResponseStatus.TRY_LATER

    def test_serial_mismatch(self, setup):
        _, ca, _, cert_id = setup
        wrong = CertID(cert_id.hash_name, cert_id.issuer_name_hash,
                       cert_id.issuer_key_hash, 1)
        assert verify_response(good_response(setup), wrong, ca, NOW).error is \
            OCSPError.SERIAL_MISMATCH

    def test_bad_signature(self, setup):
        ca_key, ca, leaf, cert_id = setup
        wrong_key = generate_keypair(512, rng=83)
        single = SingleResponse(cert_id, CertStatus.GOOD, NOW - HOUR, NOW + WEEK)
        der = encode_response([single], NOW, wrong_key, ca.key_hash_sha1())
        assert verify_response(der, cert_id, ca, NOW).error is OCSPError.BAD_SIGNATURE

    def test_not_yet_valid(self, setup):
        _, ca, _, cert_id = setup
        der = good_response(setup, this_update=NOW + 300, next_update=NOW + WEEK)
        assert verify_response(der, cert_id, ca, NOW).error is OCSPError.NOT_YET_VALID

    def test_clock_skew_tolerance(self, setup):
        _, ca, _, cert_id = setup
        der = good_response(setup, this_update=NOW + 300, next_update=NOW + WEEK)
        assert verify_response(der, cert_id, ca, NOW, max_clock_skew=600).ok

    def test_expired(self, setup):
        _, ca, _, cert_id = setup
        der = good_response(setup, this_update=NOW - WEEK, next_update=NOW - DAY,
                            produced_at=NOW - WEEK)
        assert verify_response(der, cert_id, ca, NOW).error is OCSPError.EXPIRED

    def test_blank_next_update_never_expires(self, setup):
        _, ca, _, cert_id = setup
        der = good_response(setup, this_update=NOW - 400 * DAY, next_update=None)
        assert verify_response(der, cert_id, ca, NOW).ok

    def test_delegated_signer_accepted(self, setup):
        ca_key, ca, leaf, cert_id = setup
        signer_key = generate_keypair(512, rng=84)
        delegate = (
            CertificateBuilder().serial_number(9).issuer(ca.subject)
            .subject(Name.build("Delegate")).public_key(signer_key.public_key)
            .validity(NOW - DAY, NOW + DAY).leaf().ocsp_signing().sign(ca_key)
        )
        single = SingleResponse(cert_id, CertStatus.GOOD, NOW - HOUR, NOW + WEEK)
        der = encode_response([single], NOW, signer_key, delegate.key_hash_sha1(),
                              certificates=[delegate])
        result = verify_response(der, cert_id, ca, NOW)
        assert result.ok and result.delegated

    def test_delegate_without_eku_rejected(self, setup):
        ca_key, ca, leaf, cert_id = setup
        signer_key = generate_keypair(512, rng=85)
        impostor = (
            CertificateBuilder().serial_number(10).issuer(ca.subject)
            .subject(Name.build("NoEKU")).public_key(signer_key.public_key)
            .validity(NOW - DAY, NOW + DAY).leaf().sign(ca_key)  # no OCSPSigning
        )
        single = SingleResponse(cert_id, CertStatus.GOOD, NOW - HOUR, NOW + WEEK)
        der = encode_response([single], NOW, signer_key, impostor.key_hash_sha1(),
                              certificates=[impostor])
        assert verify_response(der, cert_id, ca, NOW).error is OCSPError.BAD_SIGNATURE

    def test_delegate_from_other_ca_rejected(self, setup):
        ca_key, ca, leaf, cert_id = setup
        rogue_ca_key = generate_keypair(512, rng=86)
        rogue_ca = self_signed(Name.build("Rogue CA"), rogue_ca_key, 1,
                               NOW - DAY, NOW + 3650 * DAY)
        signer_key = generate_keypair(512, rng=87)
        rogue_delegate = (
            CertificateBuilder().serial_number(11).issuer(rogue_ca.subject)
            .subject(Name.build("Rogue Delegate")).public_key(signer_key.public_key)
            .validity(NOW - DAY, NOW + DAY).leaf().ocsp_signing().sign(rogue_ca_key)
        )
        single = SingleResponse(cert_id, CertStatus.GOOD, NOW - HOUR, NOW + WEEK)
        der = encode_response([single], NOW, signer_key,
                              rogue_delegate.key_hash_sha1(),
                              certificates=[rogue_delegate])
        assert verify_response(der, cert_id, ca, NOW).error is OCSPError.BAD_SIGNATURE

    def test_multi_serial_response_finds_requested(self, setup):
        ca_key, ca, leaf, cert_id = setup
        others = [
            SingleResponse(
                CertID(cert_id.hash_name, cert_id.issuer_name_hash,
                       cert_id.issuer_key_hash, 5000 + i),
                CertStatus.GOOD, NOW - HOUR, NOW + WEEK)
            for i in range(5)
        ]
        mine = SingleResponse(cert_id, CertStatus.REVOKED, NOW - HOUR, NOW + WEEK,
                              revoked_info=RevokedInfo(NOW - DAY))
        der = encode_response([*others, mine], NOW, ca_key, ca.key_hash_sha1())
        result = verify_response(der, cert_id, ca, NOW)
        assert result.ok and result.revoked

    def test_revoked_result_flags(self, setup):
        ca_key, ca, leaf, cert_id = setup
        single = SingleResponse(cert_id, CertStatus.REVOKED, NOW - HOUR, NOW + WEEK,
                                revoked_info=RevokedInfo(NOW - DAY))
        der = encode_response([single], NOW, ca_key, ca.key_hash_sha1())
        result = verify_response(der, cert_id, ca, NOW)
        assert result.revoked and not result.good and bool(result)
