"""Tests for dataset persistence and the CLI."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.core.experiments import all_experiments, experiment, paper_artefacts
from repro.scanner.io import (
    dump_dataset,
    dumps_dataset,
    export_quality_csv,
    export_success_series_csv,
    load_dataset,
    loads_dataset,
)


class TestDatasetIO:
    def test_round_trip(self, scan_dataset):
        text = dumps_dataset(scan_dataset)
        loaded = loads_dataset(text)
        assert len(loaded) == len(scan_dataset)
        assert loaded.interval == scan_dataset.interval
        assert tuple(loaded.vantages) == tuple(scan_dataset.vantages)
        original = scan_dataset.records[0]
        restored = loaded.records[0]
        assert restored.vantage == original.vantage
        assert restored.outcome == original.outcome
        assert restored.timestamp == original.timestamp
        assert restored.this_update == original.this_update

    def test_analysis_identical_after_round_trip(self, scan_dataset):
        from repro.core import analyze_availability
        loaded = loads_dataset(dumps_dataset(scan_dataset))
        a = analyze_availability(scan_dataset)
        b = analyze_availability(loaded)
        assert a.failure_rate == b.failure_rate
        assert a.never_successful_anywhere == b.never_successful_anywhere

    def test_header_first_line(self, scan_dataset):
        text = dumps_dataset(scan_dataset)
        header = json.loads(text.splitlines()[0])
        assert header["format"] == "repro-scan"
        assert header["version"] == 1

    def test_empty_file_rejected(self):
        with pytest.raises(ValueError):
            loads_dataset("")

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            loads_dataset('{"format": "something-else"}\n')

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError):
            loads_dataset('{"format": "repro-scan", "version": 99}\n')

    def test_success_series_csv(self, scan_dataset):
        buffer = io.StringIO()
        export_success_series_csv(scan_dataset, buffer)
        lines = buffer.getvalue().splitlines()
        assert lines[0] == "timestamp,vantage,success_pct"
        assert len(lines) > 10

    def test_quality_csv(self, scan_dataset):
        buffer = io.StringIO()
        export_quality_csv(scan_dataset, buffer)
        lines = buffer.getvalue().splitlines()
        assert lines[0].startswith("responder_url,")
        # Header + one row per responder that ever produced a parseable
        # response (unreachable/malformed ones have no quality row).
        assert 30 <= len(lines) - 1 <= 40


class TestExperimentRegistry:
    def test_every_paper_artefact_present(self):
        ids = {e.experiment_id for e in paper_artefacts()}
        for expected in ("sec4-deployment", "fig2", "fig3", "fig4", "fig5",
                         "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
                         "fig12", "tbl1", "tbl2", "tbl3", "sec5-freshness",
                         "sec8-readiness"):
            assert expected in ids

    def test_benchmarks_exist_on_disk(self):
        import os
        root = os.path.join(os.path.dirname(__file__), "..")
        for entry in all_experiments():
            assert os.path.exists(os.path.join(root, entry.benchmark)), \
                entry.benchmark

    def test_modules_importable(self):
        import importlib
        for entry in all_experiments():
            for module in entry.modules:
                importlib.import_module(module)

    def test_lookup(self):
        assert experiment("tbl2").paper_ref == "Table 2"
        with pytest.raises(KeyError):
            experiment("fig99")


class TestCLI:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["browsers"])
        assert args.command == "browsers"

    def test_browsers_command(self, capsys):
        assert main(["browsers"]) == 0
        out = capsys.readouterr().out
        assert "Firefox 60 (Linux)" in out
        assert "Table 2" in out

    def test_servers_command(self, capsys):
        assert main(["servers"]) == 0
        out = capsys.readouterr().out
        assert "apache-2.4.18" in out
        assert "pause conn." in out

    def test_experiments_command(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "tbl1" in out

    def test_issue_command(self, capsys):
        assert main(["issue", "cli.example", "--must-staple"]) == 0
        out = capsys.readouterr().out
        from repro.x509.pem import certificates_from_pem
        chain = certificates_from_pem(out)
        assert len(chain) == 2
        assert chain[0].must_staple
        assert chain[0].matches_hostname("cli.example")

    def test_audit_command(self, capsys):
        assert main(["audit", "--scale", "2000"]) == 0
        out = capsys.readouterr().out
        assert "ocsp.camerfirma.com" in out

    def test_scan_and_analyze(self, tmp_path, capsys):
        scan_file = tmp_path / "scan.jsonl"
        assert main(["scan", "--responders", "40", "--days", "1",
                     "--interval", "12", "--out", str(scan_file)]) == 0
        assert scan_file.exists()
        assert main(["analyze", str(scan_file)]) == 0
        out = capsys.readouterr().out
        assert "failure rate by vantage" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])
