"""The fault-profile matrix: every responder pathology, end to end.

One parametrized sweep drives the complete pipeline — profile →
responder → network → scanner probe → classification — and asserts
each pathology lands in exactly the outcome class the paper's
methodology assigns it.
"""

import pytest

from repro.ca import (
    CertificateAuthority,
    OCSPResponder,
    ResponderProfile,
)
from repro.crypto import generate_keypair
from repro.datasets.world import ResponderSite, ScanTarget
from repro.ocsp import CertID, OCSPRequest
from repro.scanner import ProbeOutcome
from repro.scanner.results import classify_probe
from repro.simnet import DAY, HOUR, Network, ocsp_post, ocsp_service
from repro.ocsp import verify_response

NOW = 1_524_614_400

CASES = [
    ("well-behaved", ResponderProfile(update_interval=None,
                                      this_update_margin=HOUR),
     ProbeOutcome.OK),
    ("delegated", ResponderProfile(update_interval=None,
                                   this_update_margin=HOUR,
                                   delegated_signing=True),
     ProbeOutcome.OK),
    ("zero-margin", ResponderProfile(update_interval=None,
                                     this_update_margin=0),
     ProbeOutcome.OK),  # valid for a perfectly synced client
    ("future-thisupdate", ResponderProfile(update_interval=None,
                                           this_update_margin=-600),
     ProbeOutcome.NOT_YET_VALID),
    ("blank-nextupdate", ResponderProfile(update_interval=None,
                                          this_update_margin=HOUR,
                                          blank_next_update=True),
     ProbeOutcome.OK),
    ("serial-stuffing", ResponderProfile(update_interval=None,
                                         this_update_margin=HOUR,
                                         serials_per_response=20),
     ProbeOutcome.OK),
    ("superfluous-certs", ResponderProfile(update_interval=None,
                                           this_update_margin=HOUR,
                                           extra_certs=2,
                                           delegated_signing=True),
     ProbeOutcome.OK),
    ("malformed-empty", ResponderProfile(update_interval=None,
                                         malformed_mode="empty"),
     ProbeOutcome.MALFORMED),
    ("malformed-zero", ResponderProfile(update_interval=None,
                                        malformed_mode="zero"),
     ProbeOutcome.MALFORMED),
    ("malformed-javascript", ResponderProfile(update_interval=None,
                                              malformed_mode="javascript"),
     ProbeOutcome.MALFORMED),
    ("malformed-truncated", ResponderProfile(update_interval=None,
                                             malformed_mode="truncated"),
     ProbeOutcome.MALFORMED),
    ("wrong-key", ResponderProfile(update_interval=None, wrong_key=True,
                                   this_update_margin=HOUR),
     ProbeOutcome.BAD_SIGNATURE),
    ("serial-mismatch", ResponderProfile(update_interval=None,
                                         this_update_margin=HOUR,
                                         serial_mismatch=True),
     ProbeOutcome.SERIAL_MISMATCH),
    ("try-later", ResponderProfile(update_interval=None,
                                   always_try_later=True),
     ProbeOutcome.ERROR_STATUS),
    ("pre-generated", ResponderProfile(update_interval=DAY,
                                       this_update_margin=HOUR),
     ProbeOutcome.OK),
    ("stale-backends", ResponderProfile(update_interval=DAY,
                                        this_update_margin=0,
                                        stale_backends=3,
                                        backend_skew=600),
     ProbeOutcome.OK),
]


@pytest.mark.parametrize("label,profile,expected",
                         CASES, ids=[c[0] for c in CASES])
def test_profile_classification(label, profile, expected):
    ca = CertificateAuthority.create_root(
        f"Matrix CA {label}", f"http://ocsp.{label}.matrix.test",
        not_before=NOW - 365 * DAY)
    leaf = ca.issue_leaf(f"{label}.example",
                         generate_keypair(512, rng=hash(label) & 0xFFFF),
                         not_before=NOW - DAY)
    responder = OCSPResponder(ca, ca.ocsp_url, profile,
                              epoch_start=NOW - 30 * DAY)
    network = Network()
    network.bind(f"ocsp.{label}.matrix.test",
                 network.add_origin(f"matrix-{label}", "us-east",
                                    ocsp_service(responder)))

    cert_id = CertID.for_certificate(leaf, ca.certificate)
    request_der = OCSPRequest.for_single(cert_id).encode()
    # Probe an hour into the current epoch so pre-generated responses
    # have a realistic (positive) age.
    probe_time = NOW + HOUR
    fetch = network.fetch("Virginia",
                          ocsp_post(ca.ocsp_url + "/", request_der), probe_time)
    assert fetch.ok  # every case here returns HTTP 200
    check = verify_response(fetch.response.body, cert_id, ca.certificate,
                            probe_time)
    record = classify_probe("Virginia", ca.ocsp_url, "matrix",
                            cert_id.serial_number, probe_time, fetch, check)
    assert record.outcome is expected
    # Transport succeeded in every case; usability varies.
    assert record.transport_ok
    assert record.usable == (expected is ProbeOutcome.OK)
