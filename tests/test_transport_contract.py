"""Transport conformance suite: one contract, three mechanisms.

:class:`~repro.runtime.transport.ShardTransport` is the seam that
keeps every topology byte-identical — the supervisor owns policy, the
transport moves attempts.  This suite drives the *same* obligations
through all three implementations (pipe pool, filesystem job queue,
TCP socket fleet), each behind the worker harness it needs:

* ``slots()`` is positive on a fresh transport;
* every dispatched ticket is owed exactly one outcome, tagged with a
  known outcome kind, with rows on ``ok`` and a type name on
  ``error``;
* with a single worker, outcomes arrive in dispatch order;
* ``poll`` honours its timeout bound even when nothing is running;
* ``close`` is idempotent and safe with attempts outstanding;
* a worker that raises reports ``error`` (never a lost ticket, never
  a transport exception).

A new transport implementation earns its place by passing this file
unmodified — add it to ``TRANSPORTS`` and provide a harness.
"""

from __future__ import annotations

import json
import threading
import time
from typing import List

import pytest

from repro.datasets import CorpusConfig
from repro.runtime import (
    ArtifactCache,
    CorpusRunConfig,
    JobQueueTransport,
    PipePoolTransport,
    QueueWorker,
    SocketTransport,
    SocketWorker,
)
from repro.runtime.dist import stop_workers
from repro.runtime.sharding import corpus_shards
from repro.runtime.transport import ATTEMPT_OUTCOMES

#: 4 shards of 8 corpus records: enough to see ordering, fast to run.
CORPUS_CONFIG = CorpusRunConfig(corpus=CorpusConfig(size=32, seed=13),
                                shards=4)
POLL_S = 0.02

TRANSPORTS = ("pipe", "jobqueue", "socket")


def specs():
    return corpus_shards(CORPUS_CONFIG)


class Harness:
    """One transport plus whatever worker machinery it needs."""

    def __init__(self, kind: str, tmp_path, fleet: int = 1):
        self.kind = kind
        self._threads: List[threading.Thread] = []
        self._queue_dir = str(tmp_path / "queue")
        self._workers: List[SocketWorker] = []
        if kind == "pipe":
            self.transport = PipePoolTransport(workers=fleet)
        elif kind == "jobqueue":
            self.transport = JobQueueTransport(
                self._queue_dir, lease_s=0.5, poll_s=POLL_S)
            for index in range(fleet):
                worker = QueueWorker(self._queue_dir, f"cw{index}",
                                     poll_s=POLL_S,
                                     cache=ArtifactCache(enabled=False))
                self._start(worker.run)
        elif kind == "socket":
            self.transport = SocketTransport("127.0.0.1", 0,
                                             lease_s=0.5, poll_s=POLL_S)
            for index in range(fleet):
                worker = SocketWorker(
                    self.transport.host, self.transport.port,
                    f"cw{index}", cache=ArtifactCache(enabled=False),
                    recv_timeout_s=0.05, backoff_base_s=0.01,
                    backoff_cap_s=0.1)
                self._workers.append(worker)
                self._start(worker.run)
        else:
            raise ValueError(kind)

    def _start(self, target):
        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        self._threads.append(thread)

    def dispatch_spec(self, ticket: int, spec) -> None:
        self.transport.dispatch(ticket, spec.worker, spec.payload,
                                spec.key(), spec.label)

    def run_to_completion(self, items, timeout_s: float = 60.0):
        """Drive dispatch/poll the way the supervisor does: dispatch
        while slots allow, poll for outcomes, until every ticket is
        accounted for.  Returns outcomes in arrival order."""
        pending = list(enumerate(items))
        outcomes = []
        deadline = time.perf_counter() + timeout_s
        while len(outcomes) < len(items):
            assert time.perf_counter() < deadline, \
                f"only {len(outcomes)}/{len(items)} outcomes in time"
            while pending and self.transport.slots() > 0:
                ticket, spec = pending.pop(0)
                self.dispatch_spec(ticket, spec)
            outcomes.extend(self.transport.poll(0.1))
        return outcomes

    def close(self):
        # Socket first broadcasts stop; jobqueue needs the marker
        # before the transport's directory goes away.
        if self.kind == "jobqueue":
            stop_workers(self._queue_dir)
        self.transport.close()
        for thread in self._threads:
            thread.join(timeout=10.0)


@pytest.fixture(params=TRANSPORTS)
def harness(request, tmp_path):
    built = Harness(request.param, tmp_path)
    yield built
    built.close()


class TestTransportContract:
    def test_slots_positive_on_fresh_transport(self, harness):
        assert harness.transport.slots() > 0

    def test_every_ticket_owed_exactly_one_outcome(self, harness):
        items = specs()
        outcomes = harness.run_to_completion(items)
        assert sorted(o.ticket for o in outcomes) == \
            list(range(len(items)))
        for outcome in outcomes:
            assert outcome.outcome in ATTEMPT_OUTCOMES
            assert outcome.outcome == "ok"
            assert isinstance(outcome.rows, list) and outcome.rows
            assert outcome.owner != ""

    def test_single_worker_completes_in_dispatch_order(self, harness):
        outcomes = harness.run_to_completion(specs())
        assert [o.ticket for o in outcomes] == \
            list(range(len(specs())))

    def test_rows_are_topology_independent(self, harness, tmp_path):
        """The heart of the byte-identity contract: rows that come
        back through any transport equal a direct in-process call."""
        from repro.runtime.executor import resolve_worker
        items = specs()[:2]
        outcomes = harness.run_to_completion(items)
        by_ticket = {o.ticket: o for o in outcomes}
        for ticket, spec in enumerate(items):
            direct = resolve_worker(spec.worker)(spec.payload)
            assert json.dumps(by_ticket[ticket].rows, sort_keys=True) \
                == json.dumps(direct, sort_keys=True)

    def test_poll_timeout_is_bounded_when_idle(self, harness):
        started = time.perf_counter()
        assert harness.transport.poll(0.2) == []
        assert time.perf_counter() - started < 2.0

    def test_worker_exception_reports_error_not_loss(self, harness):
        harness.transport.dispatch(
            0, "no.such.module:worker", {"x": 1}, "", "bad")
        deadline = time.perf_counter() + 30.0
        outcomes = []
        while not outcomes:
            assert time.perf_counter() < deadline
            outcomes = harness.transport.poll(0.1)
        outcome, = outcomes
        assert outcome.ticket == 0
        assert outcome.outcome == "error"
        assert outcome.type_name == "ModuleNotFoundError"

    def test_close_is_idempotent(self, harness):
        harness.close()
        harness.transport.close()
        harness.transport.close()
