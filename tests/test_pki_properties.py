"""Property-based tests (hypothesis) on PKI-level invariants.

These go beyond codec round-trips: arbitrary certificates, CRLs, and
OCSP exchanges generated from random parameters must preserve the
protocol's core invariants.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto import KeyPool
from repro.ocsp import (
    CertID,
    CertStatus,
    OCSPRequest,
    OCSPResponse,
    RevokedInfo,
    SingleResponse,
    encode_response,
    verify_response,
)
from repro.simnet import DAY, HOUR
from repro.x509 import (
    CRLBuilder,
    CertificateBuilder,
    CertificateList,
    Certificate,
    Name,
    self_signed,
)

NOW = 1_525_132_800

_pool = KeyPool(size=4, bits=512, seed=12321)
_CA_KEY = _pool.take()
_LEAF_KEY = _pool.take()
_CA = self_signed(Name.build("Prop CA", "T"), _CA_KEY, 1,
                  NOW - 365 * DAY, NOW + 3650 * DAY)

common = settings(max_examples=25,
                  suppress_health_check=[HealthCheck.too_slow],
                  deadline=None)

serials = st.integers(min_value=1, max_value=2 ** 100)
domains = st.from_regex(r"[a-z]{1,12}(\.[a-z]{1,8}){1,2}", fullmatch=True)


@common
@given(serial=serials, domain=domains,
       lifetime=st.integers(min_value=HOUR, max_value=3650 * DAY),
       must_staple=st.booleans())
def test_certificate_issue_parse_invariants(serial, domain, lifetime, must_staple):
    builder = (
        CertificateBuilder().serial_number(serial).issuer(_CA.subject)
        .subject(Name.build(domain)).public_key(_LEAF_KEY.public_key)
        .validity(NOW, NOW + lifetime).leaf().dns_names([domain])
    )
    if must_staple:
        builder.must_staple()
    certificate = builder.sign(_CA_KEY)
    reparsed = Certificate.from_der(certificate.der)
    assert reparsed.serial_number == serial
    assert reparsed.must_staple == must_staple
    assert reparsed.validity.lifetime == lifetime
    assert reparsed.matches_hostname(domain)
    assert reparsed.verify_signature(_CA_KEY.public_key)
    # Any single-bit flip in the TBS region must break the signature.
    tampered = bytearray(certificate.der)
    tampered[20] ^= 0x01
    try:
        bad = Certificate.from_der(bytes(tampered))
    except Exception:
        return  # broken encoding is equally acceptable
    assert not bad.verify_signature(_CA_KEY.public_key) or bad.der == certificate.der


@common
@given(entries=st.lists(
    st.tuples(serials, st.integers(min_value=0, max_value=NOW),
              st.sampled_from([None, 0, 1, 4, 5])),
    max_size=20, unique_by=lambda e: e[0]))
def test_crl_membership_invariant(entries):
    builder = CRLBuilder(_CA.subject).update_window(NOW, NOW + 7 * DAY)
    for serial, revoked_at, reason in entries:
        builder.add_entry(serial, revoked_at, reason)
    crl = builder.sign(_CA_KEY)
    reparsed = CertificateList.from_der(crl.der)
    assert len(reparsed) == len(entries)
    for serial, revoked_at, reason in entries:
        entry = reparsed.lookup(serial)
        assert entry is not None
        assert entry.revocation_date == revoked_at
        assert entry.reason == reason
    assert not reparsed.is_revoked(2 ** 101)  # outside the serial domain
    assert reparsed.verify_signature(_CA_KEY.public_key)


@common
@given(serial=serials,
       status=st.sampled_from(list(CertStatus)),
       margin=st.integers(min_value=0, max_value=DAY),
       validity=st.integers(min_value=HOUR, max_value=400 * DAY),
       blank=st.booleans())
def test_ocsp_exchange_invariants(serial, status, margin, validity, blank):
    cert_id = CertID(
        hash_name="sha1",
        issuer_name_hash=_CA.subject.hash_sha1(),
        issuer_key_hash=_CA.key_hash_sha1(),
        serial_number=serial,
    )
    revoked_info = RevokedInfo(NOW - DAY, 1) if status is CertStatus.REVOKED else None
    single = SingleResponse(
        cert_id, status,
        this_update=NOW - margin,
        next_update=None if blank else NOW - margin + validity,
        revoked_info=revoked_info,
    )
    der = encode_response([single], NOW - margin, _CA_KEY, _CA.key_hash_sha1())

    # Parse invariants.
    response = OCSPResponse.from_der(der)
    parsed = response.basic.find_single(serial)
    assert parsed is not None and parsed.cert_status is status

    # Verification invariants: valid exactly while NOW is inside the
    # [thisUpdate, nextUpdate] window (a margin exceeding the validity
    # means the response arrives pre-expired).
    check = verify_response(der, cert_id, _CA, NOW)
    if blank or margin <= validity:
        assert check.ok
        assert check.revoked == (status is CertStatus.REVOKED)
    else:
        from repro.ocsp import OCSPError
        assert check.error is OCSPError.EXPIRED

    # Requests for a different serial never match.
    other = CertID(cert_id.hash_name, cert_id.issuer_name_hash,
                   cert_id.issuer_key_hash, serial + 1)
    assert not verify_response(der, other, _CA, NOW).ok

    # Blank nextUpdate responses never expire; dated ones eventually do.
    far_future = NOW + 500 * DAY
    later = verify_response(der, cert_id, _CA, far_future)
    if blank:
        assert later.ok
    elif NOW - margin + validity < far_future:
        assert not later.ok


@common
@given(serials_list=st.lists(serials, min_size=1, max_size=10, unique=True),
       nonce=st.one_of(st.none(), st.binary(min_size=1, max_size=32)))
def test_request_round_trip_properties(serials_list, nonce):
    cert_ids = [
        CertID("sha1", _CA.subject.hash_sha1(), _CA.key_hash_sha1(), s)
        for s in serials_list
    ]
    request = OCSPRequest(cert_ids=cert_ids, nonce=nonce)
    parsed = OCSPRequest.from_der(request.encode())
    assert parsed.serial_numbers == serials_list
    assert parsed.nonce == nonce


@common
@given(data=st.binary(min_size=0, max_size=300))
def test_verify_response_total_on_garbage(data):
    """verify_response never raises: every input classifies."""
    cert_id = CertID("sha1", _CA.subject.hash_sha1(), _CA.key_hash_sha1(), 1)
    result = verify_response(data, cert_id, _CA, NOW)
    assert result.ok or result.error is not None
