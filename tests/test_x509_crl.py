"""Unit tests for CRL building and parsing."""

import pytest

from repro.crypto import generate_keypair
from repro.simnet import DAY, WEEK
from repro.x509 import (
    CRLBuilder,
    CertificateList,
    Name,
    REASON_KEY_COMPROMISE,
    REASON_SUPERSEDED,
    RevokedCertificate,
)

NOW = 1_525_132_800


@pytest.fixture(scope="module")
def issuer_key():
    return generate_keypair(512, rng=70)


@pytest.fixture(scope="module")
def issuer_name():
    return Name.build("CRL Issuer", "T")


def build_crl(issuer_name, issuer_key, entries=(), this_update=NOW,
              next_update=NOW + WEEK):
    builder = CRLBuilder(issuer_name).update_window(this_update, next_update)
    for serial, revoked_at, reason in entries:
        builder.add_entry(serial, revoked_at, reason)
    return builder.sign(issuer_key)


class TestCRLBuild:
    def test_empty_crl(self, issuer_name, issuer_key):
        crl = build_crl(issuer_name, issuer_key)
        assert len(crl) == 0
        assert crl.issuer == issuer_name

    def test_entries_round_trip(self, issuer_name, issuer_key):
        entries = [(100, NOW - DAY, REASON_KEY_COMPROMISE), (200, NOW - 2 * DAY, None)]
        crl = build_crl(issuer_name, issuer_key, entries)
        reparsed = CertificateList.from_der(crl.der)
        assert reparsed.is_revoked(100)
        assert reparsed.is_revoked(200)
        assert not reparsed.is_revoked(300)
        assert reparsed.lookup(100).reason == REASON_KEY_COMPROMISE
        assert reparsed.lookup(200).reason is None
        assert reparsed.lookup(100).revocation_date == NOW - DAY

    def test_signature_verifies(self, issuer_name, issuer_key):
        crl = build_crl(issuer_name, issuer_key, [(1, NOW, None)])
        assert crl.verify_signature(issuer_key.public_key)

    def test_wrong_key_fails(self, issuer_name, issuer_key):
        crl = build_crl(issuer_name, issuer_key)
        other = generate_keypair(512, rng=71)
        assert not crl.verify_signature(other.public_key)

    def test_tampered_crl_fails(self, issuer_name, issuer_key):
        crl = build_crl(issuer_name, issuer_key, [(1, NOW, None)])
        tampered = bytearray(crl.der)
        tampered[-5] ^= 0xFF
        assert not CertificateList.from_der(bytes(tampered)).verify_signature(
            issuer_key.public_key)

    def test_missing_window_rejected(self, issuer_name, issuer_key):
        with pytest.raises(ValueError):
            CRLBuilder(issuer_name).sign(issuer_key)

    def test_inverted_window_rejected(self, issuer_name):
        with pytest.raises(ValueError):
            CRLBuilder(issuer_name).update_window(NOW, NOW - 1)

    def test_no_next_update_allowed(self, issuer_name, issuer_key):
        crl = build_crl(issuer_name, issuer_key, next_update=None)
        assert crl.next_update is None
        assert crl.is_fresh(NOW + 100 * DAY)  # never expires


class TestFreshness:
    def test_fresh_inside_window(self, issuer_name, issuer_key):
        crl = build_crl(issuer_name, issuer_key)
        assert crl.is_fresh(NOW)
        assert crl.is_fresh(NOW + WEEK)

    def test_stale_after_next_update(self, issuer_name, issuer_key):
        crl = build_crl(issuer_name, issuer_key)
        assert not crl.is_fresh(NOW + WEEK + 1)

    def test_not_yet_valid(self, issuer_name, issuer_key):
        crl = build_crl(issuer_name, issuer_key)
        assert not crl.is_fresh(NOW - 1)


class TestSize:
    def test_size_grows_with_entries(self, issuer_name, issuer_key):
        """The paper's 76 MB CRL observation: size scales with entries."""
        small = build_crl(issuer_name, issuer_key, [(i, NOW, None) for i in range(1, 11)])
        large = build_crl(issuer_name, issuer_key, [(i, NOW, None) for i in range(1, 1001)])
        assert large.size_bytes > small.size_bytes * 20

    def test_size_bytes_matches_der(self, issuer_name, issuer_key):
        crl = build_crl(issuer_name, issuer_key)
        assert crl.size_bytes == len(crl.der)


class TestRevokedCertificate:
    def test_entry_round_trip_via_reader(self):
        from repro.asn1 import Reader
        entry = RevokedCertificate(555, NOW, REASON_SUPERSEDED)
        decoded = RevokedCertificate.decode(Reader(entry.encode()))
        assert decoded == entry

    def test_entry_without_reason(self):
        from repro.asn1 import Reader
        entry = RevokedCertificate(556, NOW)
        decoded = RevokedCertificate.decode(Reader(entry.encode()))
        assert decoded.reason is None
