"""repro.monitor: event schema, reducer algebra, windows, convergence.

The subsystem's load-bearing claim is algebraic: reduce any partition
of an event log independently, merge the states in any order, and
``finalize`` emits bytes identical to a single-partition replay — so
the batch pipeline (one partition) and the streaming monitor (many)
can never disagree.  The property tests here attack that claim with
seeded random partitionings and merge orders; the convergence tests
pin it against the real batch analyzers.
"""

from __future__ import annotations

import asyncio
import io
import json
import random

import pytest

from repro.canon import stable_digest
from repro.monitor import (
    EVENT_KINDS,
    EventLogWriter,
    MonitorEvent,
    TRANSPORT_FAILURES,
    WindowedAggregate,
    convergence,
    dataset_to_events,
    default_reducers,
    domain_events,
    dumps_events,
    event_to_record,
    fig3_convergence,
    handshake_events,
    loads_events,
    merge_states,
    partition_events,
    probe_events,
    read_header,
    reduce_log,
    rows_to_events,
    write_events,
)


# ---------------------------------------------------------------------------
# event schema and wire format
# ---------------------------------------------------------------------------

def _probe_event(seq=(0,), ts=1_524_614_400, outcome="OK", **extra):
    data = {"vantage": "us-east", "url": "http://ocsp.a.test",
            "ts": ts, "outcome": outcome}
    data.update(extra)
    return MonitorEvent(kind="probe", ts=ts, seq=seq, data=data)


def _access_event(seq, status=200, size=512, source="cache",
                  host="ocsp.a.test", ts=1_524_614_400):
    return MonitorEvent(kind="access", ts=ts, seq=seq,
                        data={"host": host, "method": "POST",
                              "status": status, "size": size,
                              "source": source})


class TestEventSchema:
    def test_wire_round_trip(self):
        event = _probe_event(seq=(3, 1, 4), elapsed_ms=1.234)
        rebuilt = MonitorEvent.from_dict(
            json.loads(json.dumps(event.to_dict())))
        assert rebuilt == event
        assert rebuilt.seq == (3, 1, 4)  # tuple again, not list

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            MonitorEvent(kind="nope", ts=0, seq=(0,), data={}).validate()

    def test_missing_payload_keys_rejected(self):
        with pytest.raises(ValueError, match="missing keys"):
            MonitorEvent(kind="access", ts=0, seq=(0,),
                         data={"host": "a"}).validate()

    def test_empty_seq_rejected(self):
        with pytest.raises(ValueError, match="ordinal"):
            _probe_event(seq=()).validate()

    def test_log_round_trip_with_meta(self):
        events = [_probe_event(seq=(i,)) for i in range(5)]
        text = dumps_events(events, meta={"source": "test", "seed": 7})
        header = read_header(io.StringIO(text))
        assert header["meta"] == {"source": "test", "seed": 7}
        assert loads_events(text) == events

    def test_writer_assigns_running_ordinals(self):
        buffer = io.StringIO()
        writer = EventLogWriter(buffer)
        first = writer.append("access", 100, _access_event((0,)).data)
        second = writer.append("access", 101, _access_event((0,)).data)
        assert (first.seq, second.seq) == ((0,), (1,))
        assert [e.seq for e in loads_events(buffer.getvalue())] \
            == [(0,), (1,)]

    def test_not_a_log_rejected(self):
        with pytest.raises(ValueError, match="not a repro monitor"):
            loads_events('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="empty"):
            loads_events("")

    def test_writer_validates_on_emit(self):
        writer = EventLogWriter(io.StringIO())
        with pytest.raises(ValueError):
            writer.emit(MonitorEvent(kind="access", ts=0, seq=(0,),
                                     data={}))


class TestProducers:
    def test_transport_failures_mirror_probe_record(self):
        """The reducers' literal failure set must equal the set
        ProbeRecord.transport_ok rejects."""
        from repro.scanner import ProbeOutcome
        from repro.scanner.results import ProbeRecord
        derived = {
            outcome.name for outcome in ProbeOutcome
            if not ProbeRecord(vantage="v", responder_url="u",
                               family="f", serial_number=1,
                               timestamp=0, outcome=outcome).transport_ok
        }
        assert TRANSPORT_FAILURES == derived

    def test_probe_event_round_trips_to_record(self, scan_dataset):
        records = scan_dataset.records[:50]
        events = list(probe_events(records))
        assert [event_to_record(e) for e in events] == list(records)
        assert [e.seq for e in events] == [(i,) for i in range(50)]
        assert all(e.ts == r.timestamp
                   for e, r in zip(events, records))

    def test_event_to_record_rejects_other_kinds(self):
        with pytest.raises(ValueError, match="not a probe event"):
            event_to_record(_access_event((0,)))

    def test_shard_rows_reduce_like_the_dataset(self, scan_dataset):
        """Shard rows carry (ts, ti, vi) ordinals; the dataset carries
        running indexes.  Both orders are consistent with the log
        order, so every reducer converges to the same bytes."""
        from repro.runtime.runners import scan_shard
        from repro.runtime.configs import ScanCampaignConfig, WorldConfig
        config = ScanCampaignConfig(
            world=WorldConfig(n_responders=40, certs_per_responder=1,
                              seed=13),
            interval=scan_dataset.interval,
            start=scan_dataset.start, end=scan_dataset.end)
        rows = scan_shard({"campaign": config.to_dict(),
                           "lo": 0, "hi": 40})
        row_states = reduce_log(rows_to_events(rows))
        dataset_states = reduce_log(dataset_to_events(scan_dataset))
        for name, reducer in default_reducers().items():
            assert stable_digest(reducer.finalize(row_states[name])) \
                == stable_digest(reducer.finalize(dataset_states[name]))

    def test_domain_events_validate(self, alexa_model):
        events = list(domain_events(alexa_model.records[:20]))
        assert len(events) == 20
        assert all(e.validate() for e in events)
        assert [e.data["rank"] for e in events] \
            == [r.rank for r in alexa_model.records[:20]]


# ---------------------------------------------------------------------------
# reducer algebra (the mergeable contract, attacked with seeded noise)
# ---------------------------------------------------------------------------

def _random_events(rng: random.Random, count: int):
    """A seeded mixed-kind event stream exercising every reducer."""
    outcomes = ["OK", "DNS_FAILURE", "TCP_FAILURE", "TLS_FAILURE",
                "HTTP_ERROR", "STALE", "MALFORMED"]
    vantages = ["us-east", "eu-west", "ap-south"]
    events = []
    for index in range(count):
        ts = 1_524_614_400 + rng.randrange(0, 7) * 43_200
        kind = rng.choice(list(EVENT_KINDS))
        if kind == "probe":
            this_update = rng.choice([None, ts - rng.randrange(0, 3_600)])
            next_update = None
            if this_update is not None:
                next_update = rng.choice(
                    [None, this_update + rng.randrange(1, 7_200)])
            data = {
                "vantage": rng.choice(vantages),
                "url": f"http://ocsp{rng.randrange(6)}.test",
                "ts": ts,
                "outcome": rng.choice(outcomes),
                "http_status": rng.choice([None, 200, 404, 500]),
                "size": rng.choice([None, rng.randrange(300, 3_000)]),
                "elapsed_ms": round(rng.random() * 50, 3),
                "this_update": this_update,
                "next_update": next_update,
            }
        elif kind == "domain":
            https = rng.random() < 0.7
            has_ocsp = https and rng.random() < 0.9
            data = {"rank": rng.randrange(1, 100_000),
                    "domain": f"site{index}.test", "https": https,
                    "has_ocsp": has_ocsp,
                    "stapling": has_ocsp and rng.random() < 0.3}
        elif kind == "handshake":
            stapled = rng.random() < 0.4
            data = {"hostname": f"www{rng.randrange(9)}.test",
                    "software": rng.choice(["nginx", "apache", None]),
                    "stapled": stapled,
                    "staple_fresh": stapled and rng.random() < 0.8,
                    "must_staple": rng.random() < 0.1}
        elif kind == "access":
            data = {"host": f"ocsp{rng.randrange(6)}.test",
                    "method": rng.choice(["GET", "POST"]),
                    "status": rng.choice([200, 404, 405]),
                    "size": rng.randrange(0, 3_000),
                    "source": rng.choice(["cache", "signed", "error",
                                          "control"])}
        else:
            data = {"worker": f"w{rng.randrange(4)}",
                    "state": rng.choice(["dispatched", "claim",
                                         "computed", "done", "retried",
                                         "quarantined"]),
                    "shard": f"shard-{rng.randrange(8)}"}
        events.append(MonitorEvent(kind=kind, ts=ts, seq=(index,),
                                   data=data).validate())
    return events


@pytest.fixture(scope="module", params=[11, 23, 47])
def noisy_events(request):
    return _random_events(random.Random(request.param), 400)


@pytest.fixture(scope="module", params=sorted(default_reducers()))
def reducer(request):
    return default_reducers()[request.param]


class TestReducerAlgebra:
    def test_any_partitioning_finalizes_identically(self, noisy_events,
                                                    reducer):
        """Random partition assignment + shuffled merge order must
        reproduce the single-partition bytes."""
        rng = random.Random(hash((reducer.name, len(noisy_events))) & 0xffff)
        single = stable_digest(reducer.finalize(
            reducer.reduce(noisy_events)))
        for partitions in (1, 2, 5, 9):
            lanes = [[] for _ in range(partitions)]
            for event in noisy_events:
                lanes[rng.randrange(partitions)].append(event)
            states = [reducer.reduce(lane) for lane in lanes]
            rng.shuffle(states)
            merged = merge_states(reducer, states)
            assert stable_digest(reducer.finalize(merged)) == single

    def test_merge_is_associative(self, noisy_events, reducer):
        a, b, c = (reducer.reduce(part) for part in
                   partition_events(noisy_events, 3, "round-robin"))
        left = reducer.merge(reducer.merge(a, b), c)
        right = reducer.merge(a, reducer.merge(b, c))
        assert stable_digest(reducer.finalize(left)) \
            == stable_digest(reducer.finalize(right))

    def test_merge_is_commutative(self, noisy_events, reducer):
        a, b = (reducer.reduce(part) for part in
                partition_events(noisy_events, 2, "contiguous"))
        assert stable_digest(reducer.finalize(reducer.merge(a, b))) \
            == stable_digest(reducer.finalize(reducer.merge(b, a)))

    def test_merge_does_not_mutate_arguments(self, noisy_events, reducer):
        a, b = (reducer.reduce(part) for part in
                partition_events(noisy_events, 2, "round-robin"))
        before = (stable_digest(a), stable_digest(b))
        reducer.merge(a, b)
        assert (stable_digest(a), stable_digest(b)) == before

    def test_init_is_the_merge_identity(self, noisy_events, reducer):
        state = reducer.reduce(noisy_events)
        digest = stable_digest(reducer.finalize(state))
        assert stable_digest(reducer.finalize(
            reducer.merge(reducer.init(), state))) == digest
        assert stable_digest(reducer.finalize(
            reducer.merge(state, reducer.init()))) == digest

    def test_states_are_json_trees(self, noisy_events, reducer):
        """States must survive the runtime's shard cache (JSON)."""
        state = reducer.reduce(noisy_events)
        thawed = json.loads(json.dumps(state))
        assert stable_digest(reducer.finalize(thawed)) \
            == stable_digest(reducer.finalize(state))

    def test_convergence_check_round_robin(self, noisy_events, reducer):
        check = convergence(noisy_events, reducer, partitions=7,
                            scheme="round-robin")
        assert check.converged
        assert check.events == len(noisy_events)

    def test_partition_events_rejects_bad_args(self, noisy_events):
        with pytest.raises(ValueError, match="at least one"):
            partition_events(noisy_events, 0)
        with pytest.raises(ValueError, match="unknown partition scheme"):
            partition_events(noisy_events, 2, "hashed")


# ---------------------------------------------------------------------------
# stream-vs-batch convergence (the acceptance property)
# ---------------------------------------------------------------------------

class TestBatchConvergence:
    def test_fig3_stream_equals_batch(self, scan_dataset):
        check = fig3_convergence(scan_dataset, partitions=5)
        assert check.converged
        assert check.events == len(scan_dataset)

    def test_availability_report_fields_survive_streaming(self,
                                                          scan_dataset):
        """Not just digests: the streamed report is the same object
        contents the batch analyzer produced."""
        from repro.core import analyze_availability
        batch = analyze_availability(scan_dataset)
        states = reduce_log(dataset_to_events(scan_dataset))
        streamed = default_reducers()["availability"].finalize(
            states["availability"])
        assert streamed == batch
        assert list(streamed.success_series) \
            == list(batch.success_series)  # vantage insertion order

    def test_fig2_curves_match_adoption_reducer(self, alexa_model):
        from repro.core.adoption import RANK_BIN, figure2_adoption
        from repro.monitor import AdoptionReducer
        reducer = AdoptionReducer(bin_width=RANK_BIN)
        final = reducer.finalize(reducer.reduce(
            domain_events(alexa_model.records)))
        figure = figure2_adoption(alexa_model)
        assert final[AdoptionReducer.HTTPS] \
            == figure.curves["Domains with certificate"]
        assert final[AdoptionReducer.OCSP] \
            == figure.curves["Certificates with OCSP responder"]

    def test_handshake_events_feed_freshness(self):
        from repro.ca import (
            CertificateAuthority,
            OCSPResponder,
            ResponderProfile,
        )
        from repro.crypto import generate_keypair
        from repro.scanner import scan_servers
        from repro.simnet import (
            DAY,
            HOUR,
            MEASUREMENT_START,
            Network,
            ocsp_service,
        )
        from repro.webserver import ApacheServer, IdealServer, NginxServer
        now = MEASUREMENT_START
        ca = CertificateAuthority.create_root(
            "Mon CA", "http://ocsp.mon.test",
            not_before=now - 365 * DAY)
        ocsp = OCSPResponder(ca, "http://ocsp.mon.test",
                             ResponderProfile(update_interval=None,
                                              this_update_margin=HOUR),
                             epoch_start=now - 7 * DAY)
        network = Network()
        network.bind("ocsp.mon.test", network.add_origin(
            "mon-ocsp", "us-east", ocsp_service(ocsp)))

        def site(name, server_class, stapling=True):
            leaf = ca.issue_leaf(name,
                                 generate_keypair(512, rng=hash(name)
                                                  & 0xFFFF),
                                 not_before=now - DAY)
            return server_class(chain=[leaf, ca.certificate],
                                issuer=ca.certificate, network=network,
                                stapling_enabled=stapling)

        servers = [site("a.mon.test", IdealServer),
                   site("b.mon.test", ApacheServer),
                   site("c.mon.test", NginxServer, stapling=False)]
        observations = scan_servers(servers, now)
        events = list(handshake_events(observations, ts=now))
        assert all(e.validate() for e in events)
        final = default_reducers()["freshness"].finalize(
            reduce_log(events)["freshness"])
        assert final["handshakes"] == len(observations)
        stapled = sum(1 for o in observations if o.stapled)
        assert final["stapling_pct"] == pytest.approx(
            100.0 * stapled / len(observations))
        assert set(final["stapling_by_software"]) \
            == {o.software for o in observations}


# ---------------------------------------------------------------------------
# worker lifecycle reducer (distributed-runtime telemetry)
# ---------------------------------------------------------------------------

class TestWorkerLifecycleReducer:
    @staticmethod
    def _event(seq, worker, state, shard="s0", ts=1_524_614_400):
        return MonitorEvent(kind="worker", ts=ts, seq=seq,
                            data={"worker": worker, "state": state,
                                  "shard": shard}).validate()

    def test_worker_kind_validates(self):
        self._event((0,), "w0", "claim")
        with pytest.raises(ValueError, match="missing keys"):
            MonitorEvent(kind="worker", ts=0, seq=(0,),
                         data={"worker": "w0"}).validate()

    def test_census_counts_states_and_shards(self):
        reducer = default_reducers()["worker-lifecycle"]
        events = [
            self._event((0,), "w0", "claim", "s0"),
            self._event((1,), "w1", "claim", "s1"),
            self._event((2,), "w0", "done", "s0"),
            self._event((3,), "w0", "claim", "s2"),
            self._event((4,), "w1", "error", "s1"),
            self._event((5,), "w0", "done", "s2"),
        ]
        final = reducer.finalize(reducer.reduce(events))
        assert final["events"] == 6
        assert final["states"] == {"claim": 3, "done": 2, "error": 1}
        assert final["worker_count"] == 2
        assert list(final["workers"]) == ["w0", "w1"]  # first-seen order
        assert final["workers"]["w0"] == {
            "states": {"claim": 2, "done": 2}, "shards": 2}
        assert final["workers"]["w1"] == {
            "states": {"claim": 1, "error": 1}, "shards": 1}

    def test_first_seen_order_survives_merge(self):
        """Per-worker log files merge to the order a single
        concatenated replay would produce, whatever the merge order."""
        reducer = default_reducers()["worker-lifecycle"]
        log_a = [self._event((3,), "late", "claim"),
                 self._event((4,), "late", "done")]
        log_b = [self._event((0,), "early", "claim"),
                 self._event((1,), "early", "done")]
        merged = reducer.merge(reducer.reduce(log_a),
                               reducer.reduce(log_b))
        flipped = reducer.merge(reducer.reduce(log_b),
                                reducer.reduce(log_a))
        assert list(reducer.finalize(merged)["workers"]) \
            == list(reducer.finalize(flipped)["workers"]) \
            == ["early", "late"]

    def test_connection_states_count_but_skip_the_shard_census(self):
        """Socket-fleet connect/disconnect/reconnect events carry an
        empty shard label: they count as states but must not inflate
        the per-worker shard census — a flapping link is not work."""
        reducer = default_reducers()["worker-lifecycle"]
        events = [
            self._event((0,), "w0", "connect", ""),
            self._event((1,), "w0", "claim", "s0"),
            self._event((2,), "w0", "disconnect", ""),
            self._event((3,), "w0", "reconnect", ""),
            self._event((4,), "w0", "done", "s0"),
            self._event((5,), "w0", "disconnect", ""),
        ]
        final = reducer.finalize(reducer.reduce(events))
        assert final["states"] == {"claim": 1, "connect": 1,
                                   "disconnect": 2, "done": 1,
                                   "reconnect": 1}
        assert final["workers"]["w0"]["shards"] == 1  # s0 only
        assert final["reconnects"] == 1

    def test_reconnects_sum_across_merged_logs(self):
        reducer = default_reducers()["worker-lifecycle"]
        log_a = [self._event((0,), "w0", "connect", ""),
                 self._event((1,), "w0", "reconnect", "")]
        log_b = [self._event((2,), "w1", "connect", ""),
                 self._event((3,), "w1", "reconnect", ""),
                 self._event((4,), "w1", "reconnect", "")]
        merged = reducer.merge(reducer.reduce(log_a),
                               reducer.reduce(log_b))
        assert reducer.finalize(merged)["reconnects"] == 3
        assert reducer.finalize(reducer.merge(
            reducer.reduce(log_b), reducer.reduce(log_a)))["reconnects"] \
            == 3


# ---------------------------------------------------------------------------
# tumbling windows and watermarks
# ---------------------------------------------------------------------------

class TestWindows:
    WIDTH = 100

    def _event(self, ts, index):
        return _access_event((index,), ts=ts)

    def test_watermark_closes_ripe_windows_in_order(self):
        window = WindowedAggregate(default_reducers()["response-stats"],
                                   width=self.WIDTH)
        closed = []
        for index, ts in enumerate([10, 50, 120, 130, 310]):
            closed.extend(window.observe(self._event(ts, index)))
        # ts=310 closes [0,100) and [100,200), oldest first.
        assert [(w.start, w.end, w.events) for w in closed] \
            == [(0, 100, 2), (100, 200, 2)]
        assert closed[0].result["events"] == 2

    def test_flush_closes_remainder_in_time_order(self):
        """Out-of-order events behind the watermark close their window
        immediately on observe; flush only drains what is still open."""
        window = WindowedAggregate(default_reducers()["response-stats"],
                                   width=self.WIDTH)
        closed = []
        for index, ts in enumerate([250, 20, 110]):
            closed.extend(window.observe(self._event(ts, index)))
        assert [(w.start, w.end) for w in closed] \
            == [(0, 100), (100, 200)]
        assert [(w.start, w.end) for w in window.flush()] == [(200, 300)]
        assert window.counters()["open_windows"] == 0
        assert window.counters()["closed_windows"] == 3

    def test_late_events_are_counted_not_applied(self):
        window = WindowedAggregate(default_reducers()["response-stats"],
                                   width=self.WIDTH)
        window.observe(self._event(10, 0))
        closed = window.observe(self._event(250, 1))
        assert [(w.start, w.events) for w in closed] == [(0, 1)]
        # A straggler for the closed [0,100) window.
        assert window.observe(self._event(20, 2)) == []
        counters = window.counters()
        assert counters["late_events"] == 1
        assert counters["watermark"] == 250
        # The straggler is not in any window's result.
        total = sum(w.result["events"] for w in window.flush())
        assert total == 1  # only the ts=250 event remains open

    def test_allowed_lateness_defers_closing(self):
        strict = WindowedAggregate(default_reducers()["response-stats"],
                                   width=self.WIDTH)
        lenient = WindowedAggregate(default_reducers()["response-stats"],
                                    width=self.WIDTH, allowed_lateness=60)
        for index, ts in enumerate([10, 130]):
            strict_closed = strict.observe(self._event(ts, index))
            lenient_closed = lenient.observe(self._event(ts, index))
        assert [(w.start, w.end) for w in strict_closed] == [(0, 100)]
        assert lenient_closed == []  # 130 < 100 + 60
        assert [(w.start, w.end) for w in
                lenient.observe(self._event(161, 2))] == [(0, 100)]

    def test_bad_parameters_rejected(self):
        reducer = default_reducers()["response-stats"]
        with pytest.raises(ValueError, match="width"):
            WindowedAggregate(reducer, width=0)
        with pytest.raises(ValueError, match="lateness"):
            WindowedAggregate(reducer, width=10, allowed_lateness=-1)

    def test_windowed_totals_match_unwindowed(self, noisy_events):
        """Summing closed-window event counts reconciles with a flat
        replay — windows partition the stream, they don't drop it
        (absent lateness)."""
        reducer = default_reducers()["response-stats"]
        window = WindowedAggregate(reducer, width=43_200,
                                   allowed_lateness=10**9)
        closed = []
        for event in sorted(noisy_events, key=lambda e: e.ts):
            closed.extend(window.observe(event))
        closed.extend(window.flush())
        flat = reducer.finalize(reducer.reduce(noisy_events))
        consumed = sum(w.result["events"] for w in closed)
        assert consumed == flat["events"]
        assert window.counters()["late_events"] == 0


# ---------------------------------------------------------------------------
# serve integration: access events, /-/stats, the loadgen gate
# ---------------------------------------------------------------------------

class TestServeAccessEvents:
    @pytest.fixture()
    def app(self, responder):
        from repro.serve import ServeApp
        built = ServeApp(now=1_525_000_000)
        built.add_responder("ocsp.fixture.test", responder)
        return built

    def _exchange(self, app, cert_id, prefer_get=False):
        from repro.ocsp import OCSPRequest
        from repro.simnet import ocsp_request
        der = OCSPRequest.for_single(cert_id).encode()
        return app.exchange(ocsp_request("http://ocsp.fixture.test", der,
                                         prefer_get=prefer_get))

    def test_sources_tag_the_serving_path(self, app, cert_id):
        from repro.simnet import HTTPRequest
        sink = []
        app.access_sink = sink.append
        self._exchange(app, cert_id)            # miss -> signed
        self._exchange(app, cert_id)            # hit  -> cache
        app.exchange(HTTPRequest(method="POST",
                                 url="http://nobody.test/", body=b""))
        assert [e.data["source"] for e in sink] \
            == ["signed", "cache", "error"]
        assert [e.seq for e in sink] == [(0,), (1,), (2,)]
        assert all(e.ts == app.now for e in sink)
        assert all(e.validate() for e in sink)
        assert app.access_events == 3

    def test_no_sink_means_no_events(self, app, cert_id):
        self._exchange(app, cert_id)
        assert app.access_events == 0
        assert app.stats()["access"] == {"events": 0, "enabled": False}

    def test_access_events_reduce_consistently(self, app, cert_id):
        sink = []
        app.access_sink = sink.append
        for _ in range(5):
            self._exchange(app, cert_id)
        final = default_reducers()["response-stats"].finalize(
            reduce_log(sink)["response-stats"])
        assert final["events"] == 5
        assert final["by_kind"] == {"access": 5}
        assert final["status_counts"] == {"200": 5}
        assert final["sources"] == {"cache": 4, "signed": 1}
        assert final["total_bytes"] == sum(e.data["size"] for e in sink)

    def test_batch_size_histogram(self, app, cert_id):
        from repro.ocsp import OCSPRequest
        from repro.simnet import ocsp_request
        for nonce in range(7):
            der = OCSPRequest.for_single(
                cert_id, nonce=bytes([nonce]) * 8).encode()
            outcome = app.dispatch(
                ocsp_request("http://ocsp.fixture.test", der))
            app.queue.submit(outcome.queue_key(), outcome.signer())
        app.queue.drain()
        stats = app.queue.stats()
        assert stats["batch_sizes"] == {"7": 1}
        histogram = {int(size): count
                     for size, count in stats["batch_sizes"].items()}
        assert sum(histogram.values()) == stats["batches"]
        assert sum(size * count for size, count in histogram.items()) \
            == stats["signed"]

    def test_stats_expose_cache_by_host(self, app, cert_id):
        self._exchange(app, cert_id)
        self._exchange(app, cert_id)
        stats = app.stats()
        per_host = stats["cache_by_host"]["ocsp.fixture.test"]
        assert per_host["hits"] == 1
        assert per_host["misses"] == 1
        assert stats["cache"]["hits"] == 1


class TestDaemonAccessLog:
    def test_daemon_writes_monitor_events(self, responder, cert_id):
        from repro.ocsp import OCSPRequest
        from repro.serve import ServeApp, ServeDaemon

        app = ServeApp(now=1_525_000_000)
        app.add_responder("ocsp.fixture.test", responder)
        buffer = io.StringIO()
        app.access_sink = EventLogWriter(buffer, meta={"source": "t"}).emit
        der = OCSPRequest.for_single(cert_id).encode()
        raw = (b"POST / HTTP/1.1\r\nHost: ocsp.fixture.test\r\n"
               b"Content-Length: %d\r\n\r\n" % len(der)) + der

        async def main():
            daemon = ServeDaemon(app, port=0)
            _, port = await daemon.start()
            try:
                results = []
                for payload in (raw, raw,
                                b"GET /-/stats HTTP/1.1\r\n"
                                b"Host: x\r\n\r\n"):
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", port)
                    writer.write(payload)
                    await writer.drain()
                    writer.write_eof()
                    results.append(await reader.read(1 << 20))
                    writer.close()
                return results
            finally:
                await daemon.close()

        first, second, stats_raw = asyncio.run(main())
        events = loads_events(buffer.getvalue())
        assert [e.data["source"] for e in events] \
            == ["signed", "cache", "control"]
        assert all(e.data["status"] == 200 for e in events)
        stats = json.loads(stats_raw.partition(b"\r\n\r\n")[2])
        # The stats body is rendered before its own access event logs.
        assert stats["access"] == {"events": 2, "enabled": True}
        assert "batch_sizes" in stats["batcher"]
        assert "cache_by_host" in stats
        assert stats["cache_by_host"]["ocsp.fixture.test"]["hits"] == 1


class TestLoadgenGate:
    def _report(self, **overrides):
        from repro.serve import LoadReport
        report = LoadReport(requests=4, duration_s=0.1,
                            status_counts={200: 4},
                            body_digest="abc")
        for name, value in overrides.items():
            setattr(report, name, value)
        return report

    def test_clean_report_passes(self):
        from repro.serve import loadgen_gate
        assert loadgen_gate(self._report()) == []
        assert loadgen_gate(self._report(), expected="abc") == []

    def test_each_failure_mode_is_named(self):
        from repro.serve import loadgen_gate
        assert "never got a complete" in loadgen_gate(
            self._report(incomplete=2))[0]
        assert "non-200" in loadgen_gate(
            self._report(status_counts={200: 3, 500: 1}))[0]
        assert "digest mismatch" in loadgen_gate(
            self._report(), expected="other")[0]

    def test_failures_accumulate(self):
        from repro.serve import loadgen_gate
        problems = loadgen_gate(
            self._report(incomplete=1, status_counts={500: 4}),
            expected="other")
        assert len(problems) == 3

    def test_summary_carries_incomplete(self):
        assert self._report(incomplete=3).summary()["incomplete"] == 3


# ---------------------------------------------------------------------------
# the monitor-convergence experiment and the CLI
# ---------------------------------------------------------------------------

class TestMonitorExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.runtime import (
            MonitorConvergenceConfig,
            ScanCampaignConfig,
            run_experiment,
        )
        from repro.datasets import WorldConfig
        from repro.simnet import DAY, HOUR, MEASUREMENT_START
        campaign = ScanCampaignConfig(
            world=WorldConfig(n_responders=14, certs_per_responder=1,
                              seed=7),
            interval=12 * HOUR, start=MEASUREMENT_START,
            end=MEASUREMENT_START + 2 * DAY)
        config = MonitorConvergenceConfig(campaign=campaign, partitions=3)
        return run_experiment("monitor-convergence", config=config,
                              cache=False)

    def test_stream_converges_to_batch(self, result):
        summary = result.summary
        assert summary["converged"]
        assert summary["merge_commutes"]
        assert summary["stream_digest"] == summary["batch_digest"]
        assert summary["events"] == 14 * 4 * 6  # targets x ticks x vantages
        assert summary["partitions"] == 3

    def test_summary_reports_operational_stats(self, result):
        summary = result.summary
        assert summary["events_per_s"] > 0
        assert summary["responders"] == 14
        assert set(summary["status_counts"]) <= {"200", "404", "500"}

    def test_deterministic_rows_exclude_timing(self, result):
        """Every row except the wall-clock throughput shard is
        deterministic content."""
        kinds = {row["kind"] for row in result.rows}
        assert kinds == {"state", "throughput"}
        for row in result.rows:
            if row["kind"] == "state":
                json.dumps(row["state"])  # JSON tree, cache-safe


class TestMonitorCli:
    @pytest.fixture()
    def log_path(self, tmp_path, scan_dataset):
        path = tmp_path / "events.jsonl"
        with open(path, "w", encoding="ascii") as stream:
            write_events(stream,
                         probe_events(scan_dataset.records[:240]),
                         meta={"source": "test"})
        return str(path)

    def test_replay_with_convergence_gate(self, log_path, capsys):
        from repro.cli import main
        assert main(["monitor", "replay", log_path,
                     "--partitions", "4"]) == 0
        out = capsys.readouterr().out
        assert "converges over 4 partitions" in out
        for name in default_reducers():
            assert name in out

    def test_replay_json_document(self, log_path, capsys):
        from repro.cli import main
        assert main(["monitor", "replay", log_path, "--json"]) == 0
        last_line = capsys.readouterr().out.strip().splitlines()[-1]
        document = json.loads(last_line)
        assert document["events"] == 240
        assert set(document["aggregates"]) == set(default_reducers())

    def test_summarize(self, log_path, capsys):
        from repro.cli import main
        assert main(["monitor", "summarize", log_path]) == 0
        out = capsys.readouterr().out
        assert "240 events" in out
        assert "probe: 240" in out
        assert "source=test" in out

    def test_tail_windows(self, log_path, capsys):
        from repro.cli import main
        assert main(["monitor", "tail", log_path,
                     "--window", "43200"]) == 0
        out = capsys.readouterr().out
        assert "late_events=0" in out
        assert "[" in out  # at least one closed window line

    def test_unreadable_log_exits_2(self, tmp_path, capsys):
        from repro.cli import main
        missing = str(tmp_path / "nope.jsonl")
        assert main(["monitor", "replay", missing]) == 2
        assert "cannot read" in capsys.readouterr().err
