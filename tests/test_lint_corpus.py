"""Corpus batch-lint, property, and CLI tests for repro.lint."""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ca import CertificateAuthority, OCSPResponder
from repro.cli import main
from repro.crypto import KeyPool
from repro.datasets.world import WorldConfig
from repro.lint import (
    FIGURE5_CLASSES,
    KIND_CERTIFICATE,
    KIND_CRL,
    KIND_OCSP,
    LintContext,
    LintEngine,
    classify_findings,
    lint_world,
    self_test,
)
from repro.lint.corpus import USABLE
from repro.ocsp import CertID, OCSPRequest
from repro.simnet import DAY, MEASUREMENT_START
from repro.x509.pem import CERTIFICATE_LABEL, encode_pem

NOW = MEASUREMENT_START


@pytest.fixture(scope="module")
def summary():
    return lint_world(config=WorldConfig(n_responders=16,
                                         certs_per_responder=1, seed=13))


class TestCorpusLint:
    def test_probe_accounting(self, summary):
        assert summary.probes == 16
        assert summary.certificates == 16
        assert summary.crls == 16
        assert sum(summary.lint_classes.values()) == summary.probes
        assert sum(summary.verify_classes.values()) == summary.probes

    def test_static_and_dynamic_paths_agree(self, summary):
        assert summary.disagreements == []
        assert summary.agreement == summary.probes
        assert summary.lint_classes == summary.verify_classes

    def test_figure5_classes_derive_from_quality_taxonomy(self):
        assert FIGURE5_CLASSES == ("malformed", "serial_mismatch",
                                   "bad_signature")

    def test_figure5_percentages(self, summary):
        percent = summary.figure5_percent()
        assert set(percent) == set(FIGURE5_CLASSES)
        # the world plants one persistently malformed responder per ~62
        assert percent["malformed"] > 0.0
        assert summary.unusable_percent() == pytest.approx(
            sum(percent.values()))

    def test_to_dict_is_json_ready_and_deterministic(self, summary):
        first = json.dumps(summary.to_dict(), sort_keys=True)
        second = json.dumps(summary.to_dict(), sort_keys=True)
        assert first == second
        assert json.loads(first)["probes"] == 16

    def test_classify_precedence_matches_verifier(self):
        assert classify_findings([]) == USABLE

    def test_self_test_passes(self):
        ok, text = self_test()
        assert ok, text
        assert "self-test OK" in text


class TestMintedChainProperty:
    """Freshly minted, well-formed chains lint with zero ERROR findings."""

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2 ** 16),
           lifetime_days=st.integers(min_value=2, max_value=365),
           must_staple=st.booleans())
    def test_minted_chain_is_error_free(self, seed, lifetime_days,
                                        must_staple):
        pool = KeyPool(size=3, bits=512, seed=seed)
        url = "http://ocsp.prop.test"
        root = CertificateAuthority.create_root(
            f"Prop Root {seed}", ocsp_url=url, key_pool=pool,
            not_before=NOW - 2 * 365 * DAY)
        leaf = root.issue_leaf(
            "prop.example", pool.take(), not_before=NOW - DAY,
            lifetime=lifetime_days * DAY, must_staple=must_staple)
        cert_id = CertID.for_certificate(leaf, root.certificate)
        responder = OCSPResponder(root, url, epoch_start=NOW - 30 * DAY)
        response = responder.handle(
            OCSPRequest.for_single(cert_id).encode(), NOW).body
        crl = root.build_crl(NOW)

        engine = LintEngine()
        context = LintContext(reference_time=NOW, issuer=root.certificate,
                              cert_id=cert_id)
        findings = []
        findings += engine.lint_der(root.certificate.der, KIND_CERTIFICATE,
                                    "root", LintContext(reference_time=NOW))
        findings += engine.lint_der(leaf.der, KIND_CERTIFICATE, "leaf",
                                    context)
        findings += engine.lint_der(response, KIND_OCSP, "ocsp", context)
        findings += engine.lint_der(crl.der, KIND_CRL, "crl", context)
        errors = [f for f in findings if f.severity.label == "error"]
        assert errors == [], [f.render() for f in errors]


class TestLintCLI:
    def test_self_test(self, capsys):
        assert main(["lint", "--self-test"]) == 0
        assert "self-test OK" in capsys.readouterr().out

    def test_rules_catalogue(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        assert "X509_MUST_STAPLE_ENCODING" in out
        assert "OCSP_EXPIRED" in out
        assert "CRL_STALE" in out

    def test_lint_pem_file(self, tmp_path, capsys, ca, leaf):
        path = tmp_path / "chain.pem"
        path.write_text(encode_pem(ca.certificate.der, CERTIFICATE_LABEL)
                        + encode_pem(leaf.der, CERTIFICATE_LABEL))
        assert main(["lint", str(path)]) == 0
        assert "chain.pem" in capsys.readouterr().out

    def test_lint_broken_file_exits_nonzero(self, tmp_path, capsys, leaf):
        path = tmp_path / "broken.der"
        path.write_bytes(leaf.der[:-10])
        assert main(["lint", str(path)]) == 1
        assert "X509_PARSE" in capsys.readouterr().out

    def test_no_inputs_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        capsys.readouterr()

    def test_missing_file_is_a_clean_usage_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "missing.pem")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_truncated_pem_is_malformed_not_empty(self, tmp_path, capsys,
                                                  leaf):
        path = tmp_path / "trunc.pem"
        path.write_text(encode_pem(leaf.der, CERTIFICATE_LABEL)[:200])
        assert main(["lint", str(path)]) == 1
        assert "X509_PARSE" in capsys.readouterr().out

    def test_invalid_base64_pem_is_malformed(self, tmp_path, capsys):
        path = tmp_path / "bad.pem"
        path.write_text("-----BEGIN CERTIFICATE-----\n!!!\n"
                        "-----END CERTIFICATE-----\n")
        assert main(["lint", str(path)]) == 1
        assert "X509_PARSE" in capsys.readouterr().out

    def test_json_output_is_byte_deterministic(self, tmp_path, capsys, leaf):
        path = tmp_path / "leaf.pem"
        path.write_text(encode_pem(leaf.der, CERTIFICATE_LABEL))
        outputs = []
        for name in ("a.json", "b.json"):
            out = tmp_path / name
            assert main(["lint", str(path), "--format", "json",
                         "--out", str(out)]) == 0
            outputs.append(out.read_bytes())
        capsys.readouterr()
        assert outputs[0] == outputs[1]
        document = json.loads(outputs[0])
        assert document["schema"] == "repro-lint/1"

    def test_sarif_output(self, tmp_path, capsys, leaf):
        path = tmp_path / "leaf.pem"
        path.write_text(encode_pem(leaf.der, CERTIFICATE_LABEL))
        out = tmp_path / "report.sarif"
        assert main(["lint", str(path), "--format", "sarif",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        document = json.loads(out.read_text())
        assert document["version"] == "2.1.0"

    def test_corpus_mode(self, capsys):
        assert main(["lint", "--corpus", "--responders", "16",
                     "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["probes"] == 16
        assert document["disagreements"] == []
