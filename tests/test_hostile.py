"""Tests for repro.hostile: the TLV layer, the mutation engine, the
classification pipeline, the minimizer, the hostile-corpus experiment,
and the frozen bomb regression corpus.

The two acceptance properties of the subsystem:

* mutants are a pure function of ``(document, mutation_id, seed)`` —
  the corpus regenerates byte-identically on any machine;
* no mutant escapes the outcome taxonomy — parsers raise only typed
  :class:`~repro.asn1.errors.ASN1Error` subclasses, never
  ``RecursionError`` or ``MemoryError``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.asn1 import (
    ASN1Error,
    DecodeError,
    LimitExceededError,
    Reader,
    encoder,
    tags,
)
from repro.asn1.decoder import MAX_DEPTH, MAX_ELEMENTS
from repro.asn1.dump import dump_der
from repro.hostile import (
    FAMILIES,
    KINDS,
    OUTCOMES,
    classify_mutant,
    mutate,
    seed_world,
    tlv_fixed_point,
)
from repro.hostile.minimize import minimize
from repro.hostile.tlv import element_spans, encode_forest, flatten, parse_forest
from repro.lint import LintContext, LintEngine
from repro.ocsp import OCSPResponse
from repro.runtime import HostileCorpusConfig, run_experiment
from repro.x509 import Certificate, CertificateList

DATA_DIR = Path(__file__).parent / "data" / "hostile"

PARSERS = (Certificate.from_der, OCSPResponse.from_der,
           CertificateList.from_der)


@pytest.fixture(scope="module")
def world():
    return seed_world()


# ---------------------------------------------------------------------------
# TLV layer
# ---------------------------------------------------------------------------

class TestTLV:
    def test_round_trip_all_seed_documents(self, world):
        for kind in KINDS:
            der = world.documents[kind]
            assert encode_forest(parse_forest(der)) == der
            assert tlv_fixed_point(der)

    def test_flatten_counts_every_element(self, world):
        der = world.documents["certificate"]
        assert len(flatten(parse_forest(der))) == len(element_spans(der))

    def test_element_spans_sorted_by_offset(self, world):
        spans = element_spans(world.documents["ocsp"])
        offsets = [offset for offset, _, _ in spans]
        assert offsets == sorted(offsets)

    def test_parse_forest_depth_cap(self):
        body = encoder.encode_null()
        for _ in range(200):
            body = encoder.encode_tlv(tags.SEQUENCE, body)
        with pytest.raises(ASN1Error):
            parse_forest(body)

    def test_fixed_point_false_on_garbage(self):
        assert tlv_fixed_point(b"\x30\x05\x01") is False


# ---------------------------------------------------------------------------
# mutation engine
# ---------------------------------------------------------------------------

class TestMutate:
    def test_pure_function_of_inputs(self, world):
        doc = world.documents["certificate"]
        a = mutate(doc, 17, 2018, donors=world.donors)
        b = mutate(doc, 17, 2018, donors=world.donors)
        assert a.der == b.der
        assert a.family == b.family

    def test_seed_changes_output(self, world):
        doc = world.documents["certificate"]
        ders = {mutate(doc, 8, seed, donors=world.donors).der
                for seed in range(5)}
        assert len(ders) > 1

    def test_family_round_robin(self, world):
        doc = world.documents["crl"]
        for mutation_id in range(2 * len(FAMILIES)):
            mutant = mutate(doc, mutation_id, 1, donors=world.donors)
            assert mutant.family == FAMILIES[mutation_id % len(FAMILIES)]

    def test_every_family_differs_from_original(self, world):
        doc = world.documents["ocsp"]
        for mutation_id in range(len(FAMILIES)):
            mutant = mutate(doc, mutation_id, 3, donors=world.donors)
            assert mutant.der != doc, mutant.family


# ---------------------------------------------------------------------------
# classification
# ---------------------------------------------------------------------------

class TestClassify:
    def test_originals_survive(self, world):
        for kind in KINDS:
            row = classify_mutant(kind, world.documents[kind], world)
            assert row["outcome"] == "survived", (kind, row)
            assert row["fixed_point"] is True

    def test_truncated_is_parse_error_with_offset(self, world):
        der = world.documents["certificate"][:60]
        row = classify_mutant("certificate", der, world)
        assert row["outcome"] == "parse_error"
        assert row["error_class"] in ("TruncatedError", "DecodeError")
        assert row["error_offset"] is not None

    def test_no_mutant_escapes_taxonomy(self, world):
        for kind in KINDS:
            doc = world.documents[kind]
            for mutation_id in range(3 * len(FAMILIES)):
                mutant = mutate(doc, mutation_id, 2018, donors=world.donors)
                row = classify_mutant(kind, mutant.der, world)
                assert row["outcome"] in OUTCOMES
                assert row["outcome"] != "unexpected_exception", (kind, row)

    def test_lint_degrades_on_lazy_decode_failure(self, world):
        # Corrupt the first content byte of the AIA extnValue: the
        # strict parser stores extension values opaquely, so the
        # certificate still parses — the damage only surfaces when a
        # lint rule decodes the extension lazily.
        der = bytearray(world.documents["certificate"])
        marker = encoder.encode_oid("1.3.6.1.5.5.7.1.1")
        index = bytes(der).find(marker)
        assert index > 0 and der[index + len(marker)] == 0x04
        der[index + len(marker) + 2] ^= 0xFF
        der = bytes(der)
        Certificate.from_der(der)  # still parses
        engine = LintEngine(LintContext(reference_time=world.reference_time))
        findings = engine.lint_der(der, "certificate", "lazy")
        lazy = [f for f in findings if f.rule_id == "X509_PARSE"
                and "lazy decode failed" in f.message]
        assert lazy, [f.rule_id for f in findings]
        row = classify_mutant("certificate", der, world)
        assert row["outcome"] in ("parse_error", "lint_error")


# ---------------------------------------------------------------------------
# bounded decoder (satellite: depth/size guards)
# ---------------------------------------------------------------------------

class TestReaderLimits:
    def test_depth_cap_raises_limit_error(self):
        body = encoder.encode_null()
        for _ in range(MAX_DEPTH + 10):
            body = encoder.encode_tlv(tags.SEQUENCE, body)
        reader = Reader(body)
        with pytest.raises(LimitExceededError) as info:
            for _ in range(MAX_DEPTH + 10):
                reader = reader.read_sequence()
        assert info.value.offset is not None

    def test_length_octets_cap(self):
        bomb = bytes([tags.SEQUENCE, 0x89]) + bytes(9) + b"\x05\x00"
        with pytest.raises(LimitExceededError):
            Reader(bomb).read_sequence()

    def test_element_budget_shared_across_sub_readers(self):
        # MAX_ELEMENTS tiny NULLs inside one SEQUENCE: the budget is
        # charged across the parent and sub-reader alike.
        content = b"\x05\x00" * (MAX_ELEMENTS + 1)
        bomb = encoder.encode_tlv(tags.SEQUENCE, content)
        reader = Reader(bomb).read_sequence()
        with pytest.raises(LimitExceededError):
            while True:
                reader.read_null()


# ---------------------------------------------------------------------------
# frozen regression corpus
# ---------------------------------------------------------------------------

class TestRegressionCorpus:
    def test_corpus_files_exist(self):
        names = {path.name for path in DATA_DIR.glob("*.der")}
        assert {"depth_bomb.der", "length_bomb.der",
                "length_octets_bomb.der", "element_bomb.der"} <= names

    @pytest.mark.parametrize("name", ["depth_bomb.der", "length_bomb.der",
                                      "length_octets_bomb.der",
                                      "element_bomb.der"])
    def test_bombs_raise_decode_error_everywhere(self, name):
        der = (DATA_DIR / name).read_bytes()
        for parse in PARSERS:
            with pytest.raises(DecodeError):
                parse(der)
        with pytest.raises(DecodeError):
            parse_forest(der)

    def test_dump_der_survives_bombs(self):
        for path in sorted(DATA_DIR.glob("*_bomb.der")):
            text = dump_der(path.read_bytes(), max_lines=100)
            assert isinstance(text, str)


# ---------------------------------------------------------------------------
# minimizer
# ---------------------------------------------------------------------------

class TestMinimize:
    def test_shrinks_while_preserving_predicate(self):
        data = b"A" * 100 + b"NEEDLE" + b"B" * 100
        shrunk = minimize(data, lambda d: b"NEEDLE" in d)
        assert shrunk == b"NEEDLE"

    def test_deterministic(self):
        data = bytes(range(256)) * 4
        predicate = lambda d: d.count(0x7F) >= 2
        assert minimize(data, predicate) == minimize(data, predicate)

    def test_returns_input_when_predicate_false(self):
        assert minimize(b"abc", lambda d: False) == b"abc"


# ---------------------------------------------------------------------------
# the hostile-corpus experiment
# ---------------------------------------------------------------------------

class TestExperiment:
    def test_workers_merge_identically(self, tmp_path):
        config = HostileCorpusConfig(mutants_per_kind=48, chunks=4)
        serial = run_experiment("hostile-corpus", config=config,
                                workers=1, cache=False)
        parallel = run_experiment("hostile-corpus", config=config,
                                  workers=2, cache=False)
        assert serial.rows == parallel.rows
        assert serial.summary == parallel.summary

    def test_summary_shape(self):
        config = HostileCorpusConfig(mutants_per_kind=24, chunks=2)
        result = run_experiment("hostile-corpus", config=config,
                                workers=1, cache=False)
        summary = result.summary
        assert summary["mutants"] == 24 * len(config.kinds)
        assert set(summary["matrix"]) == set(FAMILIES)
        for counts in summary["matrix"].values():
            assert set(counts) == set(OUTCOMES)
        assert summary["unexpected_exceptions"] == 0
        assert summary["fixed_point_failures"] == 0

    def test_frozen_matrix_is_current(self):
        # The CI smoke job diffs a full default run against this file;
        # here just sanity-check the freeze matches the default config.
        frozen = json.loads((DATA_DIR / "expected_matrix.json").read_text())
        config = HostileCorpusConfig()
        assert frozen["seed"] == config.seed
        assert frozen["mutants_per_kind"] == config.mutants_per_kind
        assert frozen["outcomes"]["unexpected_exception"] == 0
        assert sum(frozen["outcomes"].values()) == (
            config.mutants_per_kind * len(config.kinds))
