"""The whole-program effect & purity analyzer (:mod:`repro.analyze`).

Covers the pragma grammar, per-effect leaf detection, the call-graph
corner cases the issue names (decorated runners, ``functools.partial``,
method refs, re-exported names, a 3-calls-deep transitive effect), the
no-drift guarantee vs ``tools/check_determinism.py``, and the
repo-wide strict certification the CI gate relies on.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.analyze import analyze_package, analyze_tree, contract_table, graph_dump
from repro.analyze.effects import (
    ATTR_CALL_INDEX,
    GLOBAL_RNG_FUNCS,
    Effect,
    banned_attr_call_messages,
    parse_pragmas,
)

TOOLS = Path(__file__).resolve().parent.parent / "tools"


def load_checker():
    sys.path.insert(0, str(TOOLS))
    try:
        import check_determinism
    finally:
        sys.path.remove(str(TOOLS))
    return check_determinism


def write_tree(tmp_path, files):
    """Materialize a fixture package; returns its root directory."""
    root = tmp_path / "fixpkg"
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    for directory in {p.parent for p in root.rglob("*.py")} | {root}:
        init = directory / "__init__.py"
        if not init.exists():
            init.write_text("")
    return root


def effects_of(analysis, qualname):
    return set(analysis.effects.get(qualname, {}))


def contract_for(analysis, ref):
    for result in analysis.contracts:
        if result.contract.ref == ref:
            return result
    raise AssertionError(f"no contract for {ref}: "
                         f"{[r.contract.ref for r in analysis.contracts]}")


# ---------------------------------------------------------------------------
# pragma grammar
# ---------------------------------------------------------------------------

class TestPragmaGrammar:
    def test_effect_pragma_parses(self):
        table = parse_pragmas(
            "x = 1  # repro: allow-effect[WALL_CLOCK,FS_READ] -- timing\n")
        assert not table.issues
        [pragma] = table.pragmas.values()
        assert pragma.check == "effect"
        assert pragma.effects == (Effect.WALL_CLOCK, Effect.FS_READ)
        assert pragma.justification == "timing"

    def test_broad_except_pragma_parses(self):
        table = parse_pragmas(
            "try:\n    pass\n"
            "except Exception:  # repro: allow-broad-except -- firewall\n"
            "    pass\n")
        assert not table.issues
        [pragma] = table.pragmas.values()
        assert pragma.check == "broad-except"

    def test_missing_justification_is_an_issue(self):
        table = parse_pragmas("x = 1  # repro: allow-effect[WALL_CLOCK]\n")
        assert [issue.code for issue in table.issues] == ["unjustified"]

    def test_unknown_effect_is_an_issue(self):
        table = parse_pragmas(
            "x = 1  # repro: allow-effect[FLUX_CAPACITOR] -- why\n")
        assert [issue.code for issue in table.issues] == ["unknown"]

    def test_lookalike_typo_is_an_issue(self):
        table = parse_pragmas("x = 1  # repro: allow-efect -- oops\n")
        assert table.issues

    def test_docstring_examples_are_not_pragmas(self):
        table = parse_pragmas(
            '"""Docs show `# repro: allow-effect[BOGUS]` inline."""\n')
        assert not table.pragmas and not table.issues


# ---------------------------------------------------------------------------
# leaf effect detection, one per lattice member
# ---------------------------------------------------------------------------

LEAF_CASES = {
    Effect.WALL_CLOCK: "import time\ndef f():\n    return time.time()\n",
    Effect.AMBIENT_RNG: "import random\ndef f():\n"
                        "    return random.Random()\n",
    Effect.OS_ENTROPY: "import os\ndef f():\n    return os.urandom(8)\n",
    Effect.ENV: "import os\ndef f():\n    return os.getenv('HOME')\n",
    Effect.FS_READ: "def f(p):\n    return open(p).read()\n",
    Effect.FS_WRITE: "def f(p):\n    return open(p, 'w')\n",
    Effect.NETWORK: "import socket\ndef f():\n    return socket.socket()\n",
    Effect.PROCESS: "import subprocess\ndef f():\n"
                    "    return subprocess.run(['true'])\n",
    Effect.GLOBAL_MUTATION: "STATE = {}\ndef f(k, v):\n    STATE[k] = v\n",
    Effect.HASH_ORDER: "def f(x):\n    return hash(x)\n",
}


@pytest.mark.parametrize("effect", sorted(LEAF_CASES, key=lambda e: e.name))
def test_leaf_effect_detected(tmp_path, effect):
    root = write_tree(tmp_path, {"leaf.py": LEAF_CASES[effect]})
    analysis = analyze_tree(root)
    assert effect in effects_of(analysis, "fixpkg.leaf:f")


def test_seeded_random_is_pure(tmp_path):
    root = write_tree(tmp_path, {
        "leaf.py": "import random\ndef f(seed):\n"
                   "    return random.Random(seed).random()\n"})
    analysis = analyze_tree(root)
    assert not effects_of(analysis, "fixpkg.leaf:f")


def test_hash_allowed_inside_dunder_hash(tmp_path):
    root = write_tree(tmp_path, {
        "leaf.py": "class C:\n"
                   "    def __hash__(self):\n"
                   "        return hash(('c',))\n"})
    analysis = analyze_tree(root)
    assert not effects_of(analysis, "fixpkg.leaf:C.__hash__")


# ---------------------------------------------------------------------------
# call-graph corner cases (the satellite's fixture list)
# ---------------------------------------------------------------------------

REGISTRY = """\
_ENTRIES = [
    {{"runner": "{ref}"}},
]
"""


def registry_tree(tmp_path, runner_source, ref):
    return write_tree(tmp_path, {
        "core/experiments.py": REGISTRY.format(ref=ref),
        "runners.py": runner_source,
    })


def test_decorated_runner_effect_caught(tmp_path):
    root = registry_tree(tmp_path, (
        "import functools\n"
        "import time\n"
        "def logged(fn):\n"
        "    @functools.wraps(fn)\n"
        "    def wrapper(*a, **kw):\n"
        "        return fn(*a, **kw)\n"
        "    return wrapper\n"
        "@logged\n"
        "def run_decorated(config):\n"
        "    return time.time()\n"
    ), "fixpkg.runners:run_decorated")
    analysis = analyze_tree(root)
    result = contract_for(analysis, "fixpkg.runners:run_decorated")
    assert not result.ok
    assert {v.effect for v in result.violations} == {Effect.WALL_CLOCK}


def test_functools_partial_effect_caught(tmp_path):
    root = registry_tree(tmp_path, (
        "import functools\n"
        "import time\n"
        "def tick(scale):\n"
        "    return time.time() * scale\n"
        "def run_partial(config):\n"
        "    step = functools.partial(tick, 2)\n"
        "    return step()\n"
    ), "fixpkg.runners:run_partial")
    analysis = analyze_tree(root)
    result = contract_for(analysis, "fixpkg.runners:run_partial")
    assert not result.ok
    assert {v.effect for v in result.violations} == {Effect.WALL_CLOCK}


def test_method_ref_effect_caught(tmp_path):
    root = registry_tree(tmp_path, (
        "import time\n"
        "class Scanner:\n"
        "    def probe(self):\n"
        "        return time.time()\n"
        "def run_method(config):\n"
        "    return Scanner().probe()\n"
    ), "fixpkg.runners:run_method")
    analysis = analyze_tree(root)
    result = contract_for(analysis, "fixpkg.runners:run_method")
    assert not result.ok
    assert {v.effect for v in result.violations} == {Effect.WALL_CLOCK}


def test_reexported_name_effect_caught(tmp_path):
    root = write_tree(tmp_path, {
        "core/experiments.py": REGISTRY.format(
            ref="fixpkg.runners:run_reexport"),
        "impl.py": "import time\ndef tick():\n    return time.time()\n",
        "api/__init__.py": "from ..impl import tick\n",
        "runners.py": ("from .api import tick\n"
                       "def run_reexport(config):\n"
                       "    return tick()\n"),
    })
    analysis = analyze_tree(root)
    result = contract_for(analysis, "fixpkg.runners:run_reexport")
    assert not result.ok
    assert {v.effect for v in result.violations} == {Effect.WALL_CLOCK}


def test_three_calls_deep_wall_clock_fails_contract(tmp_path):
    """The acceptance fixture: an effect only reachable 3 calls deep."""
    root = registry_tree(tmp_path, (
        "import time\n"
        "def run_deep(config):\n"
        "    return level_one()\n"
        "def level_one():\n"
        "    return level_two()\n"
        "def level_two():\n"
        "    return time.time()\n"
    ), "fixpkg.runners:run_deep")
    analysis = analyze_tree(root)
    result = contract_for(analysis, "fixpkg.runners:run_deep")
    assert not result.ok
    [violation] = result.violations
    assert violation.effect is Effect.WALL_CLOCK
    hops = [step.qualname for step in violation.chain]
    assert hops == ["fixpkg.runners:run_deep", "fixpkg.runners:level_one",
                    "fixpkg.runners:level_two"]
    assert not analysis.ok  # and it is a finding, not just a verdict


def test_unresolvable_registry_ref_is_an_error(tmp_path):
    root = write_tree(tmp_path, {
        "core/experiments.py": REGISTRY.format(ref="fixpkg.runners:missing"),
        "runners.py": "def present(config):\n    return []\n",
    })
    analysis = analyze_tree(root)
    assert any(f.rule_id == "ANALYZE_UNRESOLVED_REF"
               for f in analysis.report.findings)


# ---------------------------------------------------------------------------
# pragma suppression end to end
# ---------------------------------------------------------------------------

def test_pragma_suppresses_and_is_recorded_as_allowed(tmp_path):
    root = registry_tree(tmp_path, (
        "import time\n"
        "def run_timed(config):\n"
        "    return time.perf_counter()  "
        "# repro: allow-effect[WALL_CLOCK] -- timings are measurements\n"
    ), "fixpkg.runners:run_timed")
    analysis = analyze_tree(root)
    result = contract_for(analysis, "fixpkg.runners:run_timed")
    assert result.ok
    assert [a.site.effect for a in result.allowed] == [Effect.WALL_CLOCK]
    assert analysis.ok


def test_def_line_pragma_covers_the_whole_function(tmp_path):
    root = registry_tree(tmp_path, (
        "import time\n"
        "def run_timed(config):  "
        "# repro: allow-effect[WALL_CLOCK] -- measured, not content\n"
        "    a = time.perf_counter()\n"
        "    b = time.perf_counter()\n"
        "    return b - a\n"
    ), "fixpkg.runners:run_timed")
    analysis = analyze_tree(root)
    assert contract_for(analysis, "fixpkg.runners:run_timed").ok
    assert analysis.ok


def test_unused_pragma_is_a_warning(tmp_path):
    root = write_tree(tmp_path, {
        "leaf.py": "def f():  # repro: allow-effect[NETWORK] -- stale\n"
                   "    return 1\n"})
    analysis = analyze_tree(root)
    assert [f.rule_id for f in analysis.report.findings] == \
        ["ANALYZE_PRAGMA_UNUSED"]
    assert analysis.clean and not analysis.ok  # warn blocks strict only

def test_unjustified_pragma_is_an_error(tmp_path):
    root = write_tree(tmp_path, {
        "leaf.py": "import time\n"
                   "def f():\n"
                   "    return time.time()  # repro: allow-effect[WALL_CLOCK]\n"})
    analysis = analyze_tree(root)
    assert any(f.rule_id == "ANALYZE_PRAGMA_UNJUSTIFIED"
               for f in analysis.report.findings)
    assert not analysis.clean


def test_pragma_only_grants_named_effects(tmp_path):
    root = registry_tree(tmp_path, (
        "import time, os\n"
        "def run_mixed(config):\n"
        "    os.urandom(4)\n"
        "    return time.time()  "
        "# repro: allow-effect[WALL_CLOCK] -- only the clock\n"
    ), "fixpkg.runners:run_mixed")
    analysis = analyze_tree(root)
    result = contract_for(analysis, "fixpkg.runners:run_mixed")
    assert {v.effect for v in result.violations} == {Effect.OS_ENTROPY}


def test_broad_except_pragma_suppresses_warning(tmp_path):
    noisy = write_tree(tmp_path / "noisy", {
        "leaf.py": "def f():\n"
                   "    try:\n"
                   "        return 1\n"
                   "    except Exception:\n"
                   "        return 0\n"})
    assert any(f.rule_id == "ANALYZE_BROAD_EXCEPT"
               for f in analyze_tree(noisy).report.findings)
    quiet = write_tree(tmp_path / "quiet", {
        "leaf.py": "def f():\n"
                   "    try:\n"
                   "        return 1\n"
                   "    except Exception:  "
                   "# repro: allow-broad-except -- fixture firewall\n"
                   "        return 0\n"})
    assert analyze_tree(quiet).ok


# ---------------------------------------------------------------------------
# no drift vs tools/check_determinism.py
# ---------------------------------------------------------------------------

class TestDeterminismSubset:
    def test_every_ban_is_a_seeded_leaf_effect(self):
        old = load_checker()
        for pair, message in old._BANNED_ATTR_CALLS.items():
            rule = ATTR_CALL_INDEX.get(pair)
            assert rule is not None, f"analyzer misses ban {pair}"
            assert rule.determinism_ban, f"{pair} not marked as a ban"
            assert rule.message == message, f"{pair} message drifted"

    def test_global_rng_tables_are_shared(self):
        old = load_checker()
        assert old._GLOBAL_RNG_FUNCS == GLOBAL_RNG_FUNCS
        assert old._BANNED_ATTR_CALLS == banned_attr_call_messages()

    def test_checker_findings_are_a_subset_of_the_analyzers(self, tmp_path):
        """Every line the old per-file checker flags carries an
        analyzer leaf effect on the same line."""
        source = (
            "import os\n"
            "import random\n"
            "import secrets\n"
            "import time\n"
            "from datetime import date, datetime\n"
            "def everything():\n"
            "    datetime.now()\n"
            "    datetime.utcnow()\n"
            "    date.today()\n"
            "    time.time()\n"
            "    time.time_ns()\n"
            "    time.monotonic()\n"
            "    time.sleep(1)\n"
            "    random.SystemRandom()\n"
            "    random.Random()\n"
            "    random.random()\n"
            "    random.choice([1])\n"
            "    os.urandom(8)\n"
            "    os._exit(1)\n"
            "    secrets.token_bytes(8)\n"
            "    hash('x')\n"
        )
        old = load_checker()
        old_lines = {v.line for v in old.scan_source(source, "leaf.py")}
        assert old_lines, "fixture must trip the old checker"

        root = write_tree(tmp_path, {"leaf.py": source})
        analysis = analyze_tree(root)
        info = analysis.graph.functions["fixpkg.leaf:everything"]
        new_lines = {site.line for site in info.effects}
        assert old_lines <= new_lines, \
            f"old checker sees lines the analyzer misses: " \
            f"{sorted(old_lines - new_lines)}"


# ---------------------------------------------------------------------------
# repo-wide certification (what CI's analyze-strict job asserts)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def repo_analysis():
    return analyze_package()


class TestRepoCertification:
    def test_strict_clean(self, repo_analysis):
        assert repo_analysis.ok, \
            "\n".join(f.render() for f in repo_analysis.report.findings)

    def test_all_contracts_pure(self, repo_analysis):
        bad = [r.contract.ref for r in repo_analysis.contracts if not r.ok]
        assert not bad

    def test_every_registered_runner_is_under_contract(self, repo_analysis):
        from repro.core.experiments import all_experiments
        runners = {r.contract.ref for r in repo_analysis.contracts
                   if r.contract.group == "runner"}
        declared = {e.runner for e in all_experiments()}
        assert declared <= runners

    def test_contract_groups_are_populated(self, repo_analysis):
        groups = {r.contract.group for r in repo_analysis.contracts}
        assert {"runner", "worker", "plan", "merge",
                "injector", "classify", "reducer"} <= groups

    def test_reducers_are_certified_pure(self, repo_analysis):
        """The mergeable-reducer algebra only converges byte-identically
        if init/step/merge/finalize are pure — the ``*.reducers``
        convention puts every public reducer under contract."""
        for name in ("AvailabilityReducer", "AdoptionReducer",
                     "FreshnessReducer", "ResponseStatsReducer",
                     "default_reducers"):
            result = contract_for(repo_analysis,
                                  f"repro.monitor.reducers:{name}")
            assert result.contract.group == "reducer"
            assert result.ok

    def test_contract_table_renders(self, repo_analysis):
        table = contract_table(repo_analysis)
        assert "Purity contracts" in table
        assert "0 impure, 0 unresolved" in table

    def test_graph_dump_is_json_and_covers_contracts(self, repo_analysis):
        document = graph_dump(repo_analysis)
        json.dumps(document)  # serializable
        assert document["schema"] == "repro-analyze/1"
        assert len(document["contracts"]) == len(repo_analysis.contracts)
        assert all(c["status"] == "pure" for c in document["contracts"])

    def test_allowed_effects_are_visible_not_hidden(self, repo_analysis):
        """The chaos worker's injected faults ride on pragmas — they
        must surface in the certificate as allowed, not vanish."""
        result = contract_for(repo_analysis, "repro.runtime.chaos:chaos_shard")
        allowed = {a.site.effect for a in result.allowed}
        assert {Effect.PROCESS, Effect.WALL_CLOCK} <= allowed


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestAnalyzeCli:
    def test_strict_exits_zero_on_clean_repo(self, capsys):
        from repro.cli import main
        assert main(["analyze", "--strict"]) == 0
        assert "contracts pure" in capsys.readouterr().out

    def test_contract_table_mode(self, capsys):
        from repro.cli import main
        assert main(["analyze", "--contract"]) == 0
        assert "Purity contracts" in capsys.readouterr().out

    def test_graph_dump_mode(self, tmp_path, capsys):
        from repro.cli import main
        graph_file = tmp_path / "graph.json"
        assert main(["analyze", "--strict", "--graph",
                     str(graph_file)]) == 0
        document = json.loads(graph_file.read_text())
        assert document["schema"] == "repro-analyze/1"

    def test_sarif_format(self, tmp_path, capsys):
        from repro.cli import main
        root = registry_tree(tmp_path, (
            "import time\n"
            "def run_dirty(config):\n"
            "    return time.time()\n"
        ), "fixpkg.runners:run_dirty")
        assert main(["analyze", "--format", "sarif", str(root)]) == 1
        document = json.loads(capsys.readouterr().out)
        rules = document["runs"][0]["tool"]["driver"]["rules"]
        assert any(r["id"] == "ANALYZE_IMPURE_CONTRACT" for r in rules)
        results = document["runs"][0]["results"]
        assert any(r["ruleId"] == "ANALYZE_IMPURE_CONTRACT"
                   for r in results)

    def test_directory_positional_selects_static_analyzer(self, tmp_path,
                                                          capsys):
        from repro.cli import main
        root = write_tree(tmp_path, {
            "leaf.py": "import time\ndef f():\n    return time.time()\n"})
        assert main(["analyze", str(root)]) == 0  # warn-free, no contracts
        assert "functions" in capsys.readouterr().out

    def test_strict_fails_on_impure_tree(self, tmp_path, capsys):
        from repro.cli import main
        root = registry_tree(tmp_path, (
            "import time\n"
            "def run_dirty(config):\n"
            "    return time.time()\n"
        ), "fixpkg.runners:run_dirty")
        assert main(["analyze", "--strict", str(root)]) == 1
        assert "ANALYZE_IMPURE_CONTRACT" in capsys.readouterr().out
