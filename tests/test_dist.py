"""Tests for the filesystem job-queue transport (repro.runtime.dist).

Three layers, in increasing realism:

* the pure protocol functions (plan and merge contracts) — shape,
  determinism, and the envelope-validation rules that make stale
  zombies inert;
* the claim/lease/reclaim state machine driven in-process, with the
  edge cases scripted by hand: two claimants racing one job, a lease
  renewed under a slow compute, a lease abandoned by a dead claimant,
  a hang exhausting its wall-clock budget, a heartbeat discovering it
  was reclaimed, and a coordinator dying mid-campaign;
* end-to-end campaigns over real ``repro worker`` subprocesses — the
  byte-identity acceptance contract: serial == pipe pool == 3-process
  job queue, including runs where chaos SIGKILLs a worker mid-shard
  and where a hung shard's lease expires.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.datasets import CorpusConfig
from repro.runtime import (
    ArtifactCache,
    CorpusRunConfig,
    JobQueueTransport,
    QueueWorker,
    ShardExecutor,
    SupervisedExecutor,
    job_document,
    merge_job_results,
    queue_shards,
    run_experiment,
    spawn_local_workers,
    stop_workers,
)
from repro.runtime.chaos import chaos_wrap
from repro.runtime.dist import (
    DEFAULT_LEASE_S,
    QueuePaths,
    _write_atomic,
    job_name,
    join_workers,
    now_s,
)
from repro.runtime.sharding import corpus_shards

#: Small but multi-shard: 6 shards of 8 corpus records each.
CORPUS_CONFIG = CorpusRunConfig(corpus=CorpusConfig(size=48, seed=11),
                                shards=6)

#: Fast-turnaround queue tuning for in-process protocol tests.
LEASE_S = 0.25
POLL_S = 0.02


def plain_specs():
    return corpus_shards(CORPUS_CONFIG)


def output_bytes(outputs) -> str:
    return json.dumps(outputs, sort_keys=True)


@pytest.fixture
def baseline():
    executor = ShardExecutor(workers=1, cache=ArtifactCache(enabled=False))
    outputs, _records = executor.run(plain_specs())
    return output_bytes(outputs)


def make_transport(tmp_path, **kwargs):
    kwargs.setdefault("lease_s", LEASE_S)
    kwargs.setdefault("poll_s", POLL_S)
    return JobQueueTransport(str(tmp_path / "queue"), **kwargs)


def make_worker(tmp_path, worker_id="w0", **kwargs):
    kwargs.setdefault("poll_s", POLL_S)
    kwargs.setdefault("cache", ArtifactCache(enabled=False))
    return QueueWorker(str(tmp_path / "queue"), worker_id, **kwargs)


def poll_until(transport, want: int, timeout_s: float = 10.0):
    """Poll the transport until *want* outcomes arrive (or fail)."""
    outcomes = []
    deadline = time.perf_counter() + timeout_s
    while len(outcomes) < want:
        assert time.perf_counter() < deadline, \
            f"only {len(outcomes)}/{want} outcomes before timeout"
        outcomes.extend(transport.poll(0.2))
    return outcomes


# ---------------------------------------------------------------------------
# pure protocol functions
# ---------------------------------------------------------------------------

class TestProtocolFunctions:
    def test_job_names_sort_in_ticket_order(self):
        names = [job_name(ticket, "abcdef0123456789") for ticket in
                 (0, 2, 10, 999)]
        assert names == sorted(names)
        assert job_name(3) == "00000003-nokey"

    def test_job_document_is_deterministic(self):
        a = job_document(4, "m:f", {"x": 1}, key="k" * 32, label="s4")
        b = job_document(4, "m:f", {"x": 1}, key="k" * 32, label="s4")
        assert a == b
        assert a["job"] == job_name(4, "k" * 32)
        assert a["digest"] == job_document(9, "m:f", {"x": 1})["digest"]
        assert a["digest"] != job_document(4, "m:f", {"x": 2})["digest"]

    def test_queue_shards_plan_matches_specs(self):
        specs = plain_specs()
        plan = queue_shards(specs, timeout=5.0, first_ticket=10)
        assert [job["ticket"] for job in plan] \
            == list(range(10, 10 + len(specs)))
        for job, spec in zip(plan, specs):
            assert job["worker"] == spec.worker
            assert job["payload"] == spec.payload
            assert job["key"] == spec.key()
            assert job["label"] == spec.label
            assert job["timeout"] == 5.0
            assert job["lease_s"] == DEFAULT_LEASE_S
        assert plan == queue_shards(specs, timeout=5.0, first_ticket=10)

    def test_merge_drops_invalid_envelopes(self):
        document = job_document(7, "m:f", {"x": 1}, key="k" * 32)
        expected = {"7": document}
        good = {"job": document["job"], "ticket": 7,
                "digest": document["digest"], "outcome": "ok",
                "rows": [{"r": 1}], "owner": "w0"}
        stale = dict(good, ticket=6)                      # retired ticket
        wrong_job = dict(good, job="00000099-zzz")        # job echo mismatch
        wrong_digest = dict(good, digest="0" * 16)        # payload mismatch
        no_rows = {k: v for k, v in good.items() if k != "rows"}
        bad_outcome = dict(good, outcome="maybe")
        merged = merge_job_results(
            [stale, wrong_job, wrong_digest, no_rows, bad_outcome,
             "not-a-dict", good], expected)
        assert merged == [good]

    def test_merge_duplicates_resolve_deterministically(self):
        document = job_document(3, "m:f", {"x": 1}, key="k" * 32)
        expected = {"3": document}
        base = {"job": document["job"], "ticket": 3,
                "digest": document["digest"]}
        ok_b = dict(base, outcome="ok", rows=[{"r": 1}], owner="wb")
        ok_a = dict(base, outcome="ok", rows=[{"r": 1}], owner="wa")
        error = dict(base, outcome="error", type="ValueError",
                     message="boom", owner="wc")
        # ok sorts before error; owner breaks the ok-vs-ok tie.
        assert merge_job_results([error, ok_b, ok_a], expected) == [ok_a]
        assert merge_job_results([ok_a, error, ok_b], expected) == [ok_a]


# ---------------------------------------------------------------------------
# the claim/lease/reclaim state machine, scripted in-process
# ---------------------------------------------------------------------------

def corpus_job(transport, ticket=0, spec=None):
    spec = spec or plain_specs()[0]
    transport.dispatch(ticket, spec.worker, spec.payload, spec.key(),
                       spec.label)
    return transport.outstanding[ticket]


class TestClaimRace:
    def test_one_claim_one_winner(self, tmp_path):
        transport = make_transport(tmp_path)
        corpus_job(transport)
        winner = make_worker(tmp_path, "winner")
        loser = make_worker(tmp_path, "loser")
        job = winner.claim_next()
        assert job is not None and job["ticket"] == 0
        assert loser.claim_next() is None  # nothing left to steal
        # The claim moved, the lease names the winner.
        paths = transport.paths
        assert not os.path.exists(paths.todo_path(job["job"]))
        assert os.path.exists(paths.claimed_path(job["job"]))
        with open(paths.lease_path(job["job"])) as stream:
            assert json.load(stream)["owner"] == "winner"

    def test_loser_steals_the_next_job(self, tmp_path):
        transport = make_transport(tmp_path)
        specs = plain_specs()
        corpus_job(transport, 0, specs[0])
        corpus_job(transport, 1, specs[1])
        first = make_worker(tmp_path, "first").claim_next()
        second = make_worker(tmp_path, "second").claim_next()
        assert {first["ticket"], second["ticket"]} == {0, 1}

    def test_execute_publishes_and_coordinator_collects(self, tmp_path):
        transport = make_transport(tmp_path)
        corpus_job(transport)
        worker = make_worker(tmp_path)
        assert worker.run(max_jobs=1) == 1
        (outcome,) = poll_until(transport, 1)
        assert outcome.outcome == "ok" and outcome.owner == "w0"
        assert outcome.rows  # real corpus rows rode home inline
        assert transport.outstanding == {}
        # Queue is clean: no claim, no lease, no unswept envelope.
        for directory in (transport.paths.claimed, transport.paths.leases):
            assert os.listdir(directory) == []


class TestLeases:
    def test_renewed_lease_survives_slow_compute(self, tmp_path):
        """Heartbeat renewal racing reclaim: a shard that computes for
        many lease periods is never reclaimed while its worker lives.
        The chaos hang keeps the worker busy 4+ leases, then raises a
        transient error — which must arrive as an ``error`` envelope,
        not a lease-expiry ``crash``."""
        transport = make_transport(tmp_path)  # no shard_timeout
        spec = chaos_wrap(plain_specs()[0], "hang", 1,
                          str(tmp_path / "scratch"), hang_s=4 * LEASE_S)
        corpus_job(transport, 0, spec)
        worker = make_worker(tmp_path)
        thread = threading.Thread(target=worker.run,
                                  kwargs={"max_jobs": 1}, daemon=True)
        thread.start()
        (outcome,) = poll_until(transport, 1)
        thread.join(timeout=5.0)
        assert outcome.outcome == "error"
        assert outcome.type_name == "TransientShardError"

    def test_abandoned_lease_is_reclaimed_as_crash(self, tmp_path):
        """A worker that claims and dies renews nothing; the lease
        expires and the coordinator reports a crash, with the queue
        scrubbed for the retry's fresh job file."""
        transport = make_transport(tmp_path)
        job = corpus_job(transport)
        claimer = make_worker(tmp_path, "doomed")
        assert claimer.claim_next() is not None  # writes the lease, then "dies"
        (outcome,) = poll_until(transport, 1)
        assert outcome.outcome == "crash" and outcome.ticket == 0
        assert outcome.owner == "doomed"
        assert "lease expired" in outcome.message
        assert transport.outstanding == {}
        assert not os.path.exists(transport.paths.claimed_path(job["job"]))
        assert not os.path.exists(transport.paths.lease_path(job["job"]))

    def test_expired_lease_past_budget_is_a_hang(self, tmp_path):
        """A lease that expires *after* the shard's wall-clock budget
        was spent is a hang, not a crash — the attempt consumed its
        timeout, so the supervisor's hang bookkeeping applies."""
        transport = make_transport(tmp_path, shard_timeout=0.5)
        job = corpus_job(transport)
        paths = transport.paths
        os.replace(paths.todo_path(job["job"]), paths.claimed_path(job["job"]))
        _write_atomic(paths.lease_path(job["job"]), {
            "job": job["job"], "owner": "wedged",
            "claimed_at": now_s() - 1.0, "expires_at": now_s() - 0.05,
            "renewals": 3})
        (outcome,) = poll_until(transport, 1)
        assert outcome.outcome == "hang" and outcome.owner == "wedged"

    def test_claimed_but_never_leased_is_reclaimed_after_grace(self, tmp_path):
        """A claimant killed between the rename and its first lease
        write leaves a claim with no lease; after the grace window the
        coordinator treats it as dead."""
        transport = make_transport(tmp_path, reclaim_grace_s=0.3)
        job = corpus_job(transport)
        paths = transport.paths
        os.replace(paths.todo_path(job["job"]), paths.claimed_path(job["job"]))
        (outcome,) = poll_until(transport, 1)
        assert outcome.outcome == "crash"
        assert "never leased" in outcome.message

    def test_heartbeat_stops_after_reclaim(self, tmp_path):
        """The renewal race, from the zombie's side: once the
        coordinator retracts the claim, the heartbeat notices within
        one interval and stops renewing instead of fighting."""
        transport = make_transport(tmp_path)
        worker = make_worker(tmp_path)
        corpus_job(transport)
        job = worker.claim_next()
        stop = threading.Event()
        thread = threading.Thread(target=worker._heartbeat,
                                  args=(job, now_s(), stop), daemon=True)
        thread.start()
        interval = max(0.05, LEASE_S / 3.0)
        time.sleep(2 * interval)  # let at least one renewal land
        transport._release(job["job"])  # the reclaim retracts the claim
        thread.join(timeout=10 * interval)
        assert not thread.is_alive()
        assert not os.path.exists(transport.paths.lease_path(job["job"]))
        stop.set()

    def test_zombie_result_for_retired_ticket_is_swept(self, tmp_path):
        """A reclaimed worker that finishes anyway publishes an
        envelope naming a retired ticket; the coordinator must neither
        credit it nor leave it lying around."""
        transport = make_transport(tmp_path)
        job = corpus_job(transport)
        worker = make_worker(tmp_path)
        claimed = worker.claim_next()
        (reclaimed,) = poll_until(transport, 1)  # lease expires -> crash
        assert reclaimed.outcome == "crash"
        worker.execute(claimed)  # the zombie completes regardless
        result_path = transport.paths.result_path(job["job"])
        assert os.path.exists(result_path)
        assert transport.poll(0.1) == []  # nothing credited...
        assert not os.path.exists(result_path)  # ...and the echo swept


class TestSupervisedJobQueue:
    def run_supervised(self, tmp_path, specs, transport=None, **kwargs):
        transport = transport or make_transport(tmp_path, **kwargs)
        cache = ArtifactCache(root=str(tmp_path / "cache"))
        executor = SupervisedExecutor(cache=cache, transport=transport,
                                      max_retries=2,
                                      shard_timeout=kwargs.get(
                                          "shard_timeout"))
        worker = make_worker(tmp_path, cache=cache)
        thread = threading.Thread(
            target=worker.run, kwargs={"idle_exit_s": 3.0}, daemon=True)
        thread.start()
        try:
            return executor.run(specs), executor
        finally:
            stop_workers(str(tmp_path / "queue"))
            thread.join(timeout=10.0)

    def test_supervisor_over_queue_matches_serial(self, tmp_path, baseline):
        (outputs, _records), executor = self.run_supervised(
            tmp_path, plain_specs())
        assert output_bytes(outputs) == baseline
        assert all(state.outcome == "computed"
                   for state in executor.manifest_shards)

    def test_coordinator_death_mid_campaign_resumes(self, tmp_path,
                                                    baseline):
        """Kill the coordinator after two shards landed; a successor
        on the same queue directory restores those two from the cache
        and completes the campaign to the same bytes."""
        specs = plain_specs()
        cache = ArtifactCache(root=str(tmp_path / "cache"))
        first = make_transport(tmp_path)
        plan = queue_shards(specs[:2], lease_s=LEASE_S)
        for ticket, job in enumerate(plan):
            first.dispatch(ticket, job["worker"], job["payload"],
                           job["key"], job["label"])
        worker = make_worker(tmp_path, cache=cache)
        assert worker.run(max_jobs=2) == 2
        # The coordinator "dies" here: never polls, never closes.  Its
        # queue litter (two result envelopes) is the successor's to
        # reset.
        assert len(os.listdir(first.paths.results)) == 2

        (outputs, _records), executor = self.run_supervised(
            tmp_path, specs, transport=make_transport(tmp_path))
        assert output_bytes(outputs) == baseline
        outcomes = [state.outcome for state in executor.manifest_shards]
        assert outcomes.count("cached") == 2
        assert outcomes.count("computed") == 4


# ---------------------------------------------------------------------------
# end-to-end: real `repro worker` subprocesses
# ---------------------------------------------------------------------------

def result_doc(result):
    return {"rows": result.rows, "summary": result.summary}


class TestEndToEndFleet:
    def test_serial_pipe_jobqueue_byte_identity(self, tmp_path):
        """The acceptance contract: the same experiment through all
        three transports — serial, pipe pool, 3-process job queue —
        merges to identical bytes."""
        serial = run_experiment("sec4-deployment", config=CORPUS_CONFIG,
                                cache=False)
        pipe = run_experiment("sec4-deployment", config=CORPUS_CONFIG,
                              workers=3, supervise=True,
                              cache_dir=str(tmp_path / "pipe-cache"))
        queue = run_experiment("sec4-deployment", config=CORPUS_CONFIG,
                               workers=3, transport="jobqueue",
                               queue_dir=str(tmp_path / "queue"),
                               cache_dir=str(tmp_path / "queue-cache"))
        assert result_doc(serial) == result_doc(pipe) == result_doc(queue)
        assert queue.manifest is not None and queue.manifest.complete
        assert queue.manifest.computed == 6
        assert queue.provenance.workers == 3

    def test_sigkilled_worker_mid_shard_recovers(self, tmp_path, baseline):
        """Chaos crash = os._exit inside a real `repro worker` process:
        the claim dies with it, the lease expires, the coordinator
        requeues, and a surviving worker steals the retry."""
        specs = plain_specs()
        specs[1] = chaos_wrap(specs[1], "crash", 1,
                              str(tmp_path / "scratch"))
        queue_dir = str(tmp_path / "queue")
        cache = ArtifactCache(root=str(tmp_path / "cache"))
        transport = JobQueueTransport(queue_dir, lease_s=LEASE_S,
                                      poll_s=POLL_S)
        workers = spawn_local_workers(queue_dir, 3,
                                      cache_dir=cache.root, poll_s=POLL_S)
        try:
            executor = SupervisedExecutor(cache=cache, transport=transport,
                                          max_retries=2)
            outputs, _records = executor.run(specs)
        finally:
            stop_workers(queue_dir)
            join_workers(workers)
        assert output_bytes(outputs) == baseline
        state = executor.manifest_shards[1]
        assert [a.outcome for a in state.attempts] == ["crash", "ok"]
        assert "lease expired" in state.attempts[0].error

    def test_hung_worker_lease_expires_and_recovers(self, tmp_path,
                                                    baseline):
        """Chaos hang inside a real worker: the heartbeat stops
        renewing once the shard's budget is spent, the lease expires,
        and the reclaim reports a hang; the retry lands elsewhere."""
        specs = plain_specs()
        specs[2] = chaos_wrap(specs[2], "hang", 1,
                              str(tmp_path / "scratch"), hang_s=30.0)
        queue_dir = str(tmp_path / "queue")
        cache = ArtifactCache(root=str(tmp_path / "cache"))
        transport = JobQueueTransport(queue_dir, lease_s=LEASE_S,
                                      shard_timeout=1.0, poll_s=POLL_S)
        workers = spawn_local_workers(queue_dir, 3,
                                      cache_dir=cache.root, poll_s=POLL_S)
        try:
            executor = SupervisedExecutor(cache=cache, transport=transport,
                                          max_retries=2, shard_timeout=1.0)
            outputs, _records = executor.run(specs)
        finally:
            stop_workers(queue_dir)
            join_workers(workers, timeout_s=2.0)  # one is asleep: kill it
        assert output_bytes(outputs) == baseline
        state = executor.manifest_shards[2]
        assert [a.outcome for a in state.attempts] == ["hang", "ok"]

    def test_worker_cli_runs_the_queue(self, tmp_path, capsys):
        """`repro run --transport jobqueue` end to end through main()."""
        from repro.cli import main
        code = main(["run", "sec4-deployment", "--transport", "jobqueue",
                     "--queue-dir", str(tmp_path / "queue"),
                     "--workers", "2", "--lease", "0.5",
                     "--cache-dir", str(tmp_path / "cache")])
        out = capsys.readouterr().out
        assert code == 0
        assert "manifest: 0 cached, 4 computed" in out

    def test_jobqueue_without_queue_dir_is_an_error(self, capsys):
        from repro.cli import main
        assert main(["run", "tbl2", "--transport", "jobqueue"]) == 2
        assert "--queue-dir" in capsys.readouterr().err
