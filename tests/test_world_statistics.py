"""Statistical validation of the full-scale (1:4) measurement world.

These check that the responder population's *mixtures* land on the
paper's measured proportions — the property every Figure 5-9 shape
depends on.
"""

import math

import pytest

from repro.datasets import MeasurementWorld, WorldConfig
from repro.simnet import DAY


@pytest.fixture(scope="module")
def world():
    return MeasurementWorld(WorldConfig(n_responders=134, certs_per_responder=1,
                                        seed=7))


def fraction(world, predicate):
    return sum(1 for site in world.sites if predicate(site)) / len(world.sites)


class TestPopulationMixtures:
    def test_population_size(self, world):
        assert len(world.sites) == 134

    def test_zero_margin_fraction(self, world):
        """Paper: 17.2% of responders give no thisUpdate margin."""
        value = fraction(world, lambda s: s.profile.this_update_margin == 0
                         and not s.profile.malformed_mode)
        assert 0.10 <= value <= 0.30

    def test_future_this_update_fraction(self, world):
        """Paper: 3% return future thisUpdate values."""
        value = fraction(world, lambda s: s.profile.this_update_margin < 0)
        assert 0.01 <= value <= 0.07

    def test_blank_next_update_fraction(self, world):
        """Paper: 9.1% always leave nextUpdate blank."""
        value = fraction(world, lambda s: s.profile.blank_next_update)
        assert 0.05 <= value <= 0.14

    def test_long_validity_fraction(self, world):
        """Paper: 2% exceed one month."""
        value = fraction(world, lambda s: not s.profile.blank_next_update
                         and s.profile.validity_period > 30 * DAY)
        assert 0.01 <= value <= 0.05

    def test_extreme_validity_present_once(self, world):
        """The 108,130,800-second (1,251-day) extreme exists exactly once."""
        extremes = [s for s in world.sites
                    if s.profile.validity_period == 108_130_800]
        assert len(extremes) == 1

    def test_serial20_fraction(self, world):
        """Paper: 3.3% always answer 20 serials."""
        value = fraction(world, lambda s: s.profile.serials_per_response == 20)
        assert 0.02 <= value <= 0.06

    def test_malformed_fraction(self, world):
        """Paper: 1.6% persistently malformed."""
        value = fraction(world, lambda s: s.profile.malformed_mode is not None)
        assert 0.01 <= value <= 0.04

    def test_pregenerated_fraction(self, world):
        """Paper: 51.7% do not generate on demand."""
        value = fraction(world, lambda s: s.profile.update_interval is not None)
        assert 0.35 <= value <= 0.60

    def test_zero_margin_implies_on_demand(self, world):
        for site in world.sites:
            if site.profile.this_update_margin <= 0 and not site.profile.malformed_mode:
                if site.family in ("hinet", "cnnic"):
                    continue  # their zero margin comes with pre-generation
                assert site.profile.update_interval is None

    def test_event_group_sizes_scale(self, world):
        sizes = {}
        for site in world.sites:
            sizes[site.family] = sizes.get(site.family, 0) + 1
        # 1:4 scaling of the paper's absolute counts.
        assert sizes["comodo"] == 4       # 15 -> 4
        assert sizes["digicert"] == 2     # 9 -> 2
        assert sizes["certum"] == 4       # 16 -> 4
        assert sizes["sheca"] == 2        # 6 -> 2
        assert sizes["cpc-gov-ae"] == 1
        assert sizes["cnnic"] == 1

    def test_epoch_staggering(self, world):
        """Responders do not all regenerate at the same instant."""
        offsets = {site.responder.epoch_start % DAY for site in world.sites}
        assert len(offsets) > 30

    def test_cpc_serves_four_certificates(self, world):
        from repro.ocsp import OCSPRequest, OCSPResponse
        site = world.sites_by_family("cpc-gov-ae")[0]
        request = OCSPRequest.for_single(site.cert_ids[0])
        response = site.responder.handle(request.encode(),
                                         world.config.start)
        parsed = OCSPResponse.from_der(response.body)
        assert len(parsed.basic.certificates) == 4

    def test_cpc_responses_still_verify(self, world):
        from repro.ocsp import OCSPRequest, verify_response
        site = world.sites_by_family("cpc-gov-ae")[0]
        request = OCSPRequest.for_single(site.cert_ids[0])
        response = site.responder.handle(request.encode(),
                                         world.config.start)
        check = verify_response(response.body, site.cert_ids[0],
                                site.authority.certificate, world.config.start)
        assert check.ok and check.delegated
