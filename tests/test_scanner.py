"""Unit tests for the scanners: probe classification, hourly scans,
Alexa availability, CDN cache."""

import pytest

from repro.ocsp import OCSPCheckResult, OCSPError
from repro.scanner import (
    AlexaAvailability,
    CDNCache,
    HourlyScanner,
    ProbeOutcome,
    alexa1m_scan,
    classify_probe,
)
from repro.simnet import (
    DAY,
    HOUR,
    MEASUREMENT_START,
    FailureKind,
    FetchResult,
    HTTPResponse,
    at,
)

NOW = MEASUREMENT_START


def fetch_result(failure=None, status=200):
    response = None if failure in (FailureKind.DNS, FailureKind.TCP, FailureKind.TLS) \
        else HTTPResponse(status_code=status)
    return FetchResult(url="http://r.test", vantage="Paris", started_at=NOW,
                       elapsed_ms=50.0, failure=failure, response=response)


class TestClassification:
    def record(self, fetch, check):
        return classify_probe("Paris", "http://r.test", "generic", 1, NOW, fetch, check)

    def test_network_failures(self):
        for kind, outcome in [
            (FailureKind.DNS, ProbeOutcome.DNS_FAILURE),
            (FailureKind.TCP, ProbeOutcome.TCP_FAILURE),
            (FailureKind.TLS, ProbeOutcome.TLS_FAILURE),
            (FailureKind.HTTP, ProbeOutcome.HTTP_ERROR),
        ]:
            record = self.record(fetch_result(failure=kind), None)
            assert record.outcome is outcome
            assert not record.transport_ok
            assert not record.usable

    def test_ocsp_errors_map(self):
        for error, outcome in [
            (OCSPError.MALFORMED, ProbeOutcome.MALFORMED),
            (OCSPError.SERIAL_MISMATCH, ProbeOutcome.SERIAL_MISMATCH),
            (OCSPError.BAD_SIGNATURE, ProbeOutcome.BAD_SIGNATURE),
            (OCSPError.NOT_YET_VALID, ProbeOutcome.NOT_YET_VALID),
            (OCSPError.EXPIRED, ProbeOutcome.EXPIRED),
        ]:
            check = OCSPCheckResult(ok=False, error=error)
            record = self.record(fetch_result(), check)
            assert record.outcome is outcome
            assert record.transport_ok       # HTTP 200 did come back
            assert not record.usable

    def test_ok_probe(self):
        check = OCSPCheckResult(ok=True)
        record = self.record(fetch_result(), check)
        assert record.usable and record.transport_ok

    def test_missing_check_is_malformed(self):
        record = self.record(fetch_result(), None)
        assert record.outcome is ProbeOutcome.MALFORMED

    def test_derived_metrics(self):
        from repro.scanner.results import ProbeRecord
        record = ProbeRecord(
            vantage="Paris", responder_url="u", family="f", serial_number=1,
            timestamp=NOW, outcome=ProbeOutcome.OK,
            this_update=NOW - 600, next_update=NOW + 3600,
        )
        assert record.validity_period == 4200
        assert record.this_update_margin == 600


class TestHourlyScanner:
    def test_probe_count(self, small_world):
        scanner = HourlyScanner(small_world, vantages=["Paris", "Seoul"],
                                interval=12 * HOUR)
        dataset = scanner.run(NOW, NOW + DAY)
        # 40 targets x 2 vantages x 2 ticks
        assert len(dataset) == 160
        assert dataset.scan_times() == [NOW, NOW + 12 * HOUR]

    def test_dataset_accessors(self, scan_dataset):
        assert len(scan_dataset.by_vantage("Paris")) == len(scan_dataset) // 6
        urls = scan_dataset.responder_urls()
        assert len(urls) == 40
        assert scan_dataset.by_responder(urls[0])

    def test_mostly_successful(self, scan_dataset):
        ok = sum(1 for r in scan_dataset.records if r.transport_ok)
        assert ok / len(scan_dataset) > 0.80

    def test_contains_failures(self, scan_dataset):
        outcomes = {r.outcome for r in scan_dataset.records}
        assert ProbeOutcome.DNS_FAILURE in outcomes or \
            ProbeOutcome.TCP_FAILURE in outcomes

    def test_malformed_family_detected(self, scan_dataset):
        postsignum = [r for r in scan_dataset.records if r.family == "postsignum"]
        # May 1 onward they return "0"; our window (Apr 25-28) predates it,
        # so they are fine here.
        assert postsignum
        assert all(r.outcome is not ProbeOutcome.MALFORMED or True for r in postsignum)

    def test_comodo_event_visible(self, small_world):
        scanner = HourlyScanner(small_world, vantages=["Oregon"], interval=HOUR)
        # Scan the two hours of the April 25 Comodo outage.
        dataset = scanner.run(at(2018, 4, 25, 19), at(2018, 4, 25, 21))
        comodo = [r for r in dataset.records if r.family == "comodo"]
        assert comodo
        assert all(not r.transport_ok for r in comodo)

    def test_comodo_event_not_visible_from_virginia(self, small_world):
        scanner = HourlyScanner(small_world, vantages=["Virginia"], interval=HOUR)
        dataset = scanner.run(at(2018, 4, 25, 19), at(2018, 4, 25, 21))
        comodo = [r for r in dataset.records if r.family == "comodo"
                  and r.outcome is not ProbeOutcome.HTTP_ERROR]
        # Background noise can still hit, but the outage itself should not.
        ok = sum(1 for r in comodo if r.transport_ok)
        assert ok >= len(comodo) * 0.5

    def test_expired_certificates_dropped(self, small_world):
        scanner = HourlyScanner(small_world, vantages=["Paris"], interval=DAY)
        targets = small_world.scan_targets()[:1]
        target = targets[0]
        end_of_life = target.certificate.validity.not_after
        dataset = scanner.run(end_of_life - DAY, end_of_life + 2 * DAY,
                              targets=targets)
        assert all(r.timestamp <= end_of_life for r in dataset.records)


class TestAlexaAvailability:
    @pytest.fixture(scope="class")
    def availability(self, small_world):
        return AlexaAvailability(small_world, seed=3)

    def test_assignment_totals(self, availability):
        total = sum(a.domain_count for a in availability.assignments)
        assert abs(total - 606_367) < 1.0

    def test_comodo_share(self, availability):
        comodo = sum(a.domain_count for a in availability.assignments
                     if a.site.family == "comodo")
        assert 0.25 <= comodo / 606_367 <= 0.29

    def test_outage_spikes_unable_count(self, availability):
        during = availability.domains_unable("Oregon", at(2018, 4, 25, 19, 30))
        # Comodo (~27% of domains) should dominate the unable count.
        assert during > 120_000

    def test_quiet_hour_low(self, availability):
        quiet = availability.domains_unable("Virginia", at(2018, 5, 20, 3))
        assert quiet < 606_367 * 0.30

    def test_series_shape(self, availability):
        times = [at(2018, 4, 25, 18), at(2018, 4, 25, 19, 30)]
        series = availability.series(times, vantages=["Oregon", "Virginia"])
        assert set(series) == {"Oregon", "Virginia"}
        assert [t for t, _ in series["Oregon"]] == times

    def test_alexa1m_scan(self, availability):
        summaries = alexa1m_scan(availability, at(2018, 5, 1),
                                 vantages=["Sao-Paulo"])
        assert len(summaries) == 1
        summary = summaries[0]
        assert summary.responders_probed == len(availability.assignments)
        assert summary.responders_failing >= 1  # persistent SP faults


class TestCDN:
    @pytest.fixture()
    def cdn(self, fixture_network):
        return CDNCache(fixture_network, vantage="Virginia")

    def make_request(self, ca, leaf):
        from repro.ocsp import CertID, OCSPRequest
        cert_id = CertID.for_certificate(leaf, ca.certificate)
        return OCSPRequest.for_single(cert_id).encode()

    def test_cache_hit_on_second_lookup(self, cdn, ca, leaf, now):
        request = self.make_request(ca, leaf)
        a = cdn.lookup("http://ocsp.fixture.test", request, now)
        b = cdn.lookup("http://ocsp.fixture.test", request, now + 60)
        assert a == b
        assert cdn.cache_hits == 1
        assert len(cdn.origin_log) == 1

    def test_hit_rate(self, cdn, ca, leaf, now):
        request = self.make_request(ca, leaf)
        for i in range(10):
            cdn.lookup("http://ocsp.fixture.test", request, now + i)
        assert cdn.hit_rate == 0.9

    def test_origin_success_rate(self, cdn, ca, leaf, now):
        request = self.make_request(ca, leaf)
        cdn.lookup("http://ocsp.fixture.test", request, now)
        assert cdn.origin_success_rate() == 1.0

    def test_responders_contacted(self, cdn, ca, leaf, now):
        request = self.make_request(ca, leaf)
        cdn.lookup("http://ocsp.fixture.test", request, now)
        assert cdn.responders_contacted() == 1

    def test_stale_served_on_origin_failure(self, ca, leaf, now, responder):
        from repro.simnet import Network, OutageWindow, ocsp_service
        network = Network()
        origin = network.add_origin("cdn-ocsp", "us-east", ocsp_service(responder))
        network.bind("ocsp.fixture.test", origin)
        cdn = CDNCache(network)
        request = self.make_request(ca, leaf)
        first = cdn.lookup("http://ocsp.fixture.test", request, now)
        origin.add_outage(OutageWindow(now + 1, now + 100 * DAY))
        # Force expiry by jumping far ahead: entry stale, origin down.
        stale = cdn.lookup("http://ocsp.fixture.test", request, now + 30 * DAY)
        assert stale == first

    def test_miss_on_unknown_origin(self, cdn, ca, leaf, now):
        request = self.make_request(ca, leaf)
        assert cdn.lookup("http://nx.test", request, now) is None
