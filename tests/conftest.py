"""Shared fixtures: a small PKI, a small measurement world, scan data.

Session-scoped fixtures keep the suite fast: the expensive artefacts
(worlds, scans, corpora) build once and are treated as read-only by
tests.
"""

from __future__ import annotations

import pytest

from repro.ca import CertificateAuthority, OCSPResponder, ResponderProfile
from repro.crypto import KeyPool, generate_keypair
from repro.datasets import (
    AlexaConfig,
    AlexaModel,
    CertificateCorpus,
    CorpusConfig,
    MeasurementWorld,
    WorldConfig,
)
from repro.ocsp import CertID
from repro.scanner import HourlyScanner
from repro.simnet import DAY, HOUR, MEASUREMENT_START, Network, ocsp_service

NOW = MEASUREMENT_START


@pytest.fixture(scope="session")
def now():
    """The canonical 'current time' for tests: the measurement start."""
    return NOW


@pytest.fixture(scope="session")
def key_pool():
    """A shared pool of 512-bit keys."""
    return KeyPool(size=8, bits=512, seed=99)


@pytest.fixture(scope="session")
def ca(now):
    """A well-behaved root CA."""
    return CertificateAuthority.create_root(
        "Fixture CA", "http://ocsp.fixture.test", "http://crl.fixture.test/ca.crl",
        not_before=now - 365 * DAY,
    )


@pytest.fixture(scope="session")
def leaf_key():
    """A leaf keypair."""
    return generate_keypair(512, rng=1234)


@pytest.fixture(scope="session")
def leaf(ca, leaf_key, now):
    """A plain leaf certificate from the fixture CA."""
    return ca.issue_leaf("plain.example", leaf_key, not_before=now - DAY)


@pytest.fixture(scope="session")
def staple_leaf(ca, leaf_key, now):
    """A Must-Staple leaf certificate."""
    return ca.issue_leaf("staple.example", leaf_key, not_before=now - DAY,
                         must_staple=True)


@pytest.fixture(scope="session")
def cert_id(leaf, ca):
    """The CertID for the plain leaf."""
    return CertID.for_certificate(leaf, ca.certificate)


@pytest.fixture(scope="session")
def responder(ca, now):
    """A well-behaved on-demand responder for the fixture CA."""
    return OCSPResponder(
        ca, "http://ocsp.fixture.test",
        ResponderProfile(update_interval=None, this_update_margin=HOUR),
        epoch_start=now - 7 * DAY,
    )


@pytest.fixture(scope="session")
def fixture_network(ca, responder):
    """A network with the fixture responder bound."""
    network = Network()
    origin = network.add_origin("fixture-ocsp", "us-east", ocsp_service(responder))
    network.bind("ocsp.fixture.test", origin)
    return network


@pytest.fixture(scope="session")
def small_world():
    """A 40-responder measurement world (all event groups present)."""
    return MeasurementWorld(WorldConfig(n_responders=40, certs_per_responder=1,
                                        seed=13))


@pytest.fixture(scope="session")
def scan_dataset(small_world):
    """A 3-day, 12-hour-cadence scan over the small world."""
    scanner = HourlyScanner(small_world, interval=12 * HOUR)
    return scanner.run(NOW, NOW + 3 * DAY)


@pytest.fixture(scope="session")
def alexa_model():
    """A 4,000-domain Alexa sample."""
    return AlexaModel(AlexaConfig(size=4_000, seed=21))


@pytest.fixture(scope="session")
def corpus():
    """A 3,000-record certificate corpus."""
    return CertificateCorpus(CorpusConfig(size=3_000, seed=5))
