"""Tests for the CRL↔OCSP consistency study (Table 1 / Figure 10)."""

import pytest

from repro.scanner import (
    ConsistencyConfig,
    ConsistencyWorld,
    TABLE1_ROWS,
    run_consistency_scan,
)
from repro.simnet import DAY, HOUR


@pytest.fixture(scope="module")
def world():
    return ConsistencyWorld(ConsistencyConfig(scale=400, consistent_cas=4))


@pytest.fixture(scope="module")
def report(world):
    return run_consistency_scan(world)


class TestWorldConstruction:
    def test_table1_sites_present(self, world):
        urls = {site.ocsp_url for site in world.sites}
        for ocsp_url, *_ in TABLE1_ROWS:
            assert f"http://{ocsp_url}" in urls

    def test_scaled_counts(self):
        config = ConsistencyConfig(scale=400)
        assert config.scaled(28_023) == 70
        assert config.scaled(1) == 1   # never rounds to zero
        assert config.scaled(0) == 0

    def test_deterministic(self):
        a = ConsistencyWorld(ConsistencyConfig(scale=800, consistent_cas=2))
        b = ConsistencyWorld(ConsistencyConfig(scale=800, consistent_cas=2))
        assert [s.revoked_serials for s in a.sites] == \
            [s.revoked_serials for s in b.sites]

    def test_every_revoked_serial_unexpired(self, world):
        for site in world.sites:
            for serial in site.revoked_serials:
                assert site.expiry[serial] > world.config.now


class TestTable1:
    def test_exactly_seven_discrepant_responders(self, report):
        assert len(report.discrepant_rows()) == 7

    def test_good_for_revoked_rows(self, report):
        """Five responders answer Good for ≥1 CRL-revoked certificate."""
        good_rows = [r for r in report.rows if r.good > 0]
        assert len(good_rows) == 5
        expected = {"http://ocsp.camerfirma.com", "http://ocsp.quovadisglobal.com",
                    "http://ocsp.startssl.com", "http://ss.symcd.com",
                    "http://twcasslocsp.twca.com.tw"}
        assert {r.ocsp_url for r in good_rows} == expected

    def test_unknown_for_all_rows(self, report):
        """Two responders answer Unknown for every revoked certificate."""
        unknown_rows = [r for r in report.rows if r.unknown > 0]
        assert len(unknown_rows) == 2
        for row in unknown_rows:
            assert row.revoked == 0 and row.good == 0

    def test_bulk_cas_consistent(self, report):
        bulk = [r for r in report.rows if "bulk" in r.ocsp_url]
        assert bulk
        assert all(not r.has_discrepancy for r in bulk)

    def test_high_collection_rate(self, report):
        """The paper collected 99.9% of responses."""
        assert report.responses_collected / report.serials_checked > 0.99


class TestFigure10:
    def test_most_times_agree(self, report):
        """Paper: only 0.15% of responses have differing revocation time."""
        assert report.differing_time_fraction() < 0.02

    def test_negative_deltas_exist(self, report):
        """Paper: 14.7% of differing times are negative (OCSP earlier)."""
        negative = [d for d in report.time_deltas if d.delta < 0]
        assert negative
        assert all(d.delta >= -43_200 for d in negative)

    def test_msocsp_lag_range(self, report):
        """msocsp lags the CRL by between 7 hours and 9 days."""
        msocsp = [d for d in report.time_deltas if "msocsp" in d.ocsp_url]
        assert msocsp
        assert all(7 * HOUR <= d.delta <= 9 * DAY for d in msocsp)

    def test_long_tail_over_four_years(self, report):
        """The tail extends past 137M seconds (over 4 years)."""
        assert max(d.delta for d in report.time_deltas) >= 137_000_000


class TestReasonCodes:
    def test_crl_only_dominates(self, report):
        """Paper: 99.99% of differing reasons = CRL has one, OCSP doesn't."""
        assert report.reasons.differing > 0
        assert report.reasons.crl_only == report.reasons.differing

    def test_differing_fraction_near_paper(self, report):
        """Paper: ~15% of revocations have differing reason codes."""
        assert 0.08 <= report.reasons.differing_fraction <= 0.22
