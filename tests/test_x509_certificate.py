"""Unit tests for certificate building, parsing, and chain validation."""

import pytest

from repro.crypto import generate_keypair
from repro.simnet import DAY
from repro.x509 import (
    Certificate,
    CertificateBuilder,
    ChainError,
    Name,
    TrustStore,
    Validity,
    build_chain,
    self_signed,
    validate,
    validate_chain,
)

NOW = 1_525_132_800


@pytest.fixture(scope="module")
def pki():
    """root -> intermediate -> leaf chain."""
    root_key = generate_keypair(512, rng=50)
    int_key = generate_keypair(512, rng=51)
    leaf_key = generate_keypair(512, rng=52)
    root = self_signed(Name.build("Root", "T"), root_key, 1,
                       NOW - 365 * DAY, NOW + 3650 * DAY)
    intermediate = (
        CertificateBuilder().serial_number(2).issuer(root.subject)
        .subject(Name.build("Intermediate", "T"))
        .public_key(int_key.public_key)
        .validity(NOW - 100 * DAY, NOW + 1000 * DAY)
        .ca(path_length=0).sign(root_key)
    )
    leaf = (
        CertificateBuilder().serial_number(3).issuer(intermediate.subject)
        .subject(Name.build("www.example.com"))
        .public_key(leaf_key.public_key)
        .validity(NOW - DAY, NOW + 90 * DAY)
        .leaf().dns_names(["www.example.com", "*.api.example.com"])
        .ocsp_url("http://ocsp.t.test").must_staple().server_auth()
        .sign(int_key)
    )
    return root_key, int_key, leaf_key, root, intermediate, leaf


class TestBuilderAndParse:
    def test_round_trip(self, pki):
        *_, leaf = pki
        parsed = Certificate.from_der(leaf.der)
        assert parsed.serial_number == 3
        assert parsed.subject.common_name == "www.example.com"
        assert parsed.version == 3
        assert parsed.must_staple
        assert parsed.ocsp_urls == ["http://ocsp.t.test"]

    def test_signature_verifies_against_issuer(self, pki):
        _, int_key, _, _, intermediate, leaf = pki
        assert leaf.verify_signature(int_key.public_key)
        assert not leaf.verify_signature(intermediate.public_key) or \
            int_key.public_key == intermediate.public_key

    def test_is_ca_flags(self, pki):
        _, _, _, root, intermediate, leaf = pki
        assert root.is_ca and intermediate.is_ca and not leaf.is_ca

    def test_self_signed_detection(self, pki):
        _, _, _, root, intermediate, _ = pki
        assert root.is_self_signed
        assert not intermediate.is_self_signed

    def test_builder_requires_all_fields(self):
        with pytest.raises(ValueError, match="missing"):
            CertificateBuilder().serial_number(1).sign(generate_keypair(512, rng=1))

    def test_builder_rejects_nonpositive_serial(self):
        with pytest.raises(ValueError):
            CertificateBuilder().serial_number(0)

    def test_builder_rejects_inverted_validity(self):
        with pytest.raises(ValueError):
            CertificateBuilder().validity(100, 50)

    def test_sha1_certificates_supported(self):
        key = generate_keypair(512, rng=53)
        cert = (
            CertificateBuilder().serial_number(9).issuer(Name.build("X"))
            .subject(Name.build("X")).public_key(key.public_key)
            .validity(NOW, NOW + DAY).hash_algorithm("sha1").sign(key)
        )
        assert cert.signature_hash_name() == "sha1"
        assert cert.verify_signature(key.public_key)

    def test_fingerprint_stable(self, pki):
        *_, leaf = pki
        assert leaf.fingerprint() == Certificate.from_der(leaf.der).fingerprint()
        assert len(leaf.fingerprint()) == 32

    def test_key_hash_sha1(self, pki):
        *_, leaf = pki
        assert len(leaf.key_hash_sha1()) == 20

    def test_repr_mentions_must_staple(self, pki):
        *_, leaf = pki
        assert "must-staple" in repr(leaf)


class TestHostnames:
    def test_exact_match(self, pki):
        *_, leaf = pki
        assert leaf.matches_hostname("www.example.com")

    def test_case_and_trailing_dot(self, pki):
        *_, leaf = pki
        assert leaf.matches_hostname("WWW.Example.COM.")

    def test_wildcard_single_label(self, pki):
        *_, leaf = pki
        assert leaf.matches_hostname("v1.api.example.com")
        assert not leaf.matches_hostname("a.b.api.example.com")

    def test_wildcard_does_not_match_bare_domain(self, pki):
        *_, leaf = pki
        assert not leaf.matches_hostname("api.example.com")

    def test_no_match(self, pki):
        *_, leaf = pki
        assert not leaf.matches_hostname("evil.test")

    def test_cn_fallback_when_no_san(self):
        key = generate_keypair(512, rng=54)
        cert = (
            CertificateBuilder().serial_number(5).issuer(Name.build("CA"))
            .subject(Name.build("cn-only.test")).public_key(key.public_key)
            .validity(NOW, NOW + DAY).sign(key)
        )
        assert cert.dns_names == ["cn-only.test"]
        assert cert.matches_hostname("cn-only.test")


class TestValidity:
    def test_contains_inclusive(self):
        validity = Validity(100, 200)
        assert validity.contains(100)
        assert validity.contains(200)
        assert not validity.contains(99)
        assert not validity.contains(201)

    def test_lifetime(self):
        assert Validity(0, 90 * DAY).lifetime == 90 * DAY


class TestChainValidation:
    def test_valid_chain(self, pki):
        _, _, _, root, intermediate, leaf = pki
        store = TrustStore([root])
        result = validate(leaf, [intermediate], store, NOW, "www.example.com")
        assert result.valid
        assert [c.serial_number for c in result.chain] == [3, 2, 1]

    def test_build_chain_orders(self, pki):
        _, _, _, root, intermediate, leaf = pki
        store = TrustStore([root])
        chain = build_chain(leaf, [intermediate], store)
        assert chain is not None and len(chain) == 3

    def test_untrusted_root(self, pki):
        _, _, _, _, intermediate, leaf = pki
        result = validate(leaf, [intermediate], TrustStore(), NOW)
        assert not result.valid
        assert ChainError.UNTRUSTED_ROOT in result.errors

    def test_expired_leaf(self, pki):
        _, _, _, root, intermediate, leaf = pki
        store = TrustStore([root])
        result = validate(leaf, [intermediate], store, NOW + 200 * DAY)
        assert ChainError.EXPIRED in result.errors

    def test_not_yet_valid(self, pki):
        _, _, _, root, intermediate, leaf = pki
        store = TrustStore([root])
        result = validate(leaf, [intermediate], store, NOW - 50 * DAY)
        assert ChainError.EXPIRED in result.errors

    def test_hostname_mismatch(self, pki):
        _, _, _, root, intermediate, leaf = pki
        store = TrustStore([root])
        result = validate(leaf, [intermediate], store, NOW, "other.test")
        assert ChainError.HOSTNAME_MISMATCH in result.errors

    def test_broken_signature_detected(self, pki):
        _, _, _, root, intermediate, leaf = pki
        tampered = bytearray(leaf.der)
        tampered[-10] ^= 0x01  # flip a signature byte
        bad_leaf = Certificate.from_der(bytes(tampered))
        store = TrustStore([root])
        result = validate_chain([bad_leaf, intermediate, root], store, NOW)
        assert ChainError.BAD_SIGNATURE in result.errors

    def test_non_ca_intermediate_rejected(self, pki):
        root_key, _, leaf_key, root, _, _ = pki
        fake_int_key = generate_keypair(512, rng=60)
        fake_int = (
            CertificateBuilder().serial_number(7).issuer(root.subject)
            .subject(Name.build("NotACA")).public_key(fake_int_key.public_key)
            .validity(NOW - DAY, NOW + DAY).leaf().sign(root_key)
        )
        victim = (
            CertificateBuilder().serial_number(8).issuer(fake_int.subject)
            .subject(Name.build("victim.test")).public_key(leaf_key.public_key)
            .validity(NOW - DAY, NOW + DAY).leaf().sign(fake_int_key)
        )
        result = validate_chain([victim, fake_int, root], TrustStore([root]), NOW)
        assert ChainError.NOT_A_CA in result.errors

    def test_empty_chain(self):
        result = validate_chain([], TrustStore(), NOW)
        assert ChainError.EMPTY_CHAIN in result.errors

    def test_trust_store_membership(self, pki):
        _, _, _, root, intermediate, _ = pki
        store = TrustStore([root])
        assert root in store
        assert intermediate not in store
        assert len(store) == 1
