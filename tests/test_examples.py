"""Smoke tests: the fast example scripts run and tell the right story."""

import os
import runpy
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str, capsys) -> str:
    path = os.path.join(EXAMPLES, name)
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "attack BLOCKED by Must-Staple" in out
        assert "attack SUCCEEDED (soft failure)" in out
        assert "rejected: certificate revoked" in out

    def test_webserver_conformance(self, capsys):
        out = run_example("webserver_conformance.py", capsys)
        assert "pause conn." in out
        assert "locked out" in out
        # The ideal server never locks anyone out.
        assert "(0/24 h locked out)" in out

    def test_responder_selftest(self, capsys):
        out = run_example("responder_selftest.py", capsys)
        assert "ATTENTION" in out       # the malformed responder
        assert "from_cache=True" in out  # the caching client

    def test_crl_ocsp_audit(self, capsys):
        out = run_example("crl_ocsp_audit.py", capsys)
        assert "ocsp.camerfirma.com" in out
        assert "msocsp" in out
