"""End-to-end integration tests crossing all subsystem boundaries."""

import pytest

from repro.browser import by_label, connect, hardened_browser, Verdict
from repro.ca import CertificateAuthority, OCSPResponder, ResponderProfile
from repro.crypto import generate_keypair
from repro.ocsp import CertID, OCSPRequest, OCSPResponse, verify_response
from repro.scanner import CDNCache, HourlyScanner
from repro.simnet import (
    DAY,
    HOUR,
    MEASUREMENT_START,
    FailureKind,
    Network,
    OutageWindow,
    ocsp_service,
)
from repro.tls import ClientHello
from repro.webserver import ApacheServer, IdealServer, NginxServer
from repro.x509 import TrustStore

NOW = MEASUREMENT_START


class TestFullMustStapleLifecycle:
    """Issue → staple → browse → revoke → hard-fail, end to end."""

    @pytest.fixture()
    def world(self):
        ca = CertificateAuthority.create_root(
            "E2E CA", "http://ocsp.e2e.test", not_before=NOW - 365 * DAY)
        key = generate_keypair(512, rng=777)
        leaf = ca.issue_leaf("shop.example", key, not_before=NOW - DAY,
                             must_staple=True)
        responder = OCSPResponder(ca, "http://ocsp.e2e.test",
                                  ResponderProfile(update_interval=None,
                                                   this_update_margin=HOUR,
                                                   validity_period=DAY),
                                  epoch_start=NOW - 7 * DAY)
        network = Network()
        origin = network.add_origin("e2e", "us-east", ocsp_service(responder))
        network.bind("ocsp.e2e.test", origin)
        server = IdealServer(chain=[leaf, ca.certificate], issuer=ca.certificate,
                             network=network)

        class World:
            pass

        w = World()
        w.ca, w.leaf, w.network, w.origin, w.server = ca, leaf, network, origin, server
        w.trust = TrustStore([ca.certificate])
        w.firefox = by_label()["Firefox 60 (Linux)"]
        w.chrome = by_label()["Chrome 66 (Linux)"]
        return w

    def test_happy_path(self, world):
        world.server.tick(NOW)
        outcome = connect(world.firefox, world.server, "shop.example",
                          world.trust, NOW)
        assert outcome.verdict is Verdict.ACCEPTED
        assert outcome.staple_valid

    def test_revocation_propagates_through_staple(self, world):
        world.server.tick(NOW)
        world.ca.revoke(world.leaf, NOW + HOUR, reason=1)
        # The server's next refresh picks up the revoked status.
        world.server.cache = None
        world.server.tick(NOW + 2 * HOUR)
        outcome = connect(world.firefox, world.server, "shop.example",
                          world.trust, NOW + 2 * HOUR)
        assert outcome.verdict is Verdict.REJECTED_REVOKED

    def test_responder_outage_only_hurts_must_staple_on_firefox(self, world):
        # Server never obtained a staple; responder is down.
        world.origin.add_outage(OutageWindow(NOW - 1, NOW + 30 * DAY,
                                             kind=FailureKind.TCP))
        firefox_outcome = connect(world.firefox, world.server, "shop.example",
                                  world.trust, NOW)
        chrome_outcome = connect(world.chrome, world.server, "shop.example",
                                 world.trust, NOW, network=world.network)
        assert firefox_outcome.verdict is Verdict.REJECTED_MUST_STAPLE
        assert chrome_outcome.connected  # soft failure

    def test_mitm_strip_attack_blocked_by_must_staple(self, world):
        """The Section-2.3 attack: strip the staple, block OCSP —
        Must-Staple + a compliant browser defeats it."""
        world.server.tick(NOW)

        class StrippingServer:
            def handle_connection(self, hello, now):
                handshake = world.server.handle_connection(hello, now)
                handshake.stapled_ocsp = None  # attacker strips the staple
                return handshake

        outcome = connect(world.firefox, StrippingServer(), "shop.example",
                          world.trust, NOW)
        assert outcome.verdict is Verdict.REJECTED_MUST_STAPLE
        # A soft-fail browser is fooled.
        outcome = connect(world.chrome, StrippingServer(), "shop.example",
                          world.trust, NOW)
        assert outcome.connected

    def test_hardened_browser_catches_revocation_without_staple(self, world):
        world.ca.revoke(world.leaf, NOW, reason=1)
        bare = ApacheServer(chain=[world.leaf, world.ca.certificate],
                            issuer=world.ca.certificate, network=world.network,
                            stapling_enabled=False)
        browser = hardened_browser()
        # Non-Must-Staple cert so the fallback path actually runs:
        key = generate_keypair(512, rng=778)
        plain = world.ca.issue_leaf("plain.example", key, not_before=NOW - DAY)
        world.ca.revoke(plain, NOW, reason=1)
        bare_plain = ApacheServer(chain=[plain, world.ca.certificate],
                                  issuer=world.ca.certificate,
                                  network=world.network, stapling_enabled=False)
        outcome = connect(browser, bare_plain, "plain.example", world.trust,
                          NOW + HOUR, network=world.network)
        assert outcome.verdict is Verdict.REJECTED_REVOKED


class TestServersAgainstFaultyResponders:
    """Web server models driven against misbehaving responders."""

    def make(self, profile, server_class):
        ca = CertificateAuthority.create_root(
            "Faulty CA", "http://ocsp.faulty.test", not_before=NOW - 365 * DAY)
        key = generate_keypair(512, rng=779)
        leaf = ca.issue_leaf("victim.example", key, not_before=NOW - DAY,
                             must_staple=True)
        responder = OCSPResponder(ca, "http://ocsp.faulty.test", profile,
                                  epoch_start=NOW - 7 * DAY)
        network = Network()
        origin = network.add_origin("faulty", "us-east", ocsp_service(responder))
        network.bind("ocsp.faulty.test", origin)
        server = server_class(chain=[leaf, ca.certificate], issuer=ca.certificate,
                              network=network)
        return server, ca, leaf

    def test_apache_staples_garbage_free(self):
        """A malformed responder body must not be stapled by Apache
        (it fails to parse, so nothing is cached)."""
        server, *_ = self.make(
            ResponderProfile(update_interval=None, malformed_mode="zero"),
            ApacheServer)
        handshake = server.handle_connection(
            ClientHello("victim.example", status_request=True), NOW)
        assert handshake.stapled_ocsp is None

    def test_nginx_survives_try_later(self):
        server, *_ = self.make(
            ResponderProfile(update_interval=None, always_try_later=True),
            NginxServer)
        server.handle_connection(ClientHello("victim.example"), NOW)
        handshake = server.handle_connection(ClientHello("victim.example"), NOW + 30)
        assert handshake.stapled_ocsp is None  # never cached an error

    def test_ideal_server_with_blank_next_update(self):
        server, ca, leaf = self.make(
            ResponderProfile(update_interval=None, blank_next_update=True),
            IdealServer)
        server.tick(NOW)
        handshake = server.handle_connection(ClientHello("victim.example"), NOW)
        assert handshake.stapled_ocsp is not None
        response = OCSPResponse.from_der(handshake.stapled_ocsp)
        assert response.basic.single_responses[0].next_update is None


class TestScannerResponderAgreement:
    """The scanner's view must agree with direct responder queries."""

    def test_probe_matches_direct_query(self, small_world):
        scanner = HourlyScanner(small_world, vantages=["Virginia"])
        target = next(t for t in small_world.scan_targets()
                      if t.site.family == "generic"
                      and "persistent-fault" not in t.site.tags)
        # Pick a quiet hour (hash noise might hit; retry a few times).
        for offset in range(0, 30 * HOUR, HOUR):
            record = scanner.probe(target, "Virginia", NOW + offset)
            if record.transport_ok:
                break
        assert record.transport_ok
        direct = target.site.responder.handle(target.request_der,
                                             record.timestamp)
        check = verify_response(direct.body, target.cert_id,
                                target.site.authority.certificate,
                                record.timestamp)
        assert check.ok == record.usable


class TestCDNOverMeasurementWorld:
    def test_cdn_fronting_improves_success(self, small_world):
        """The Akamai observation: cache-fronted lookups succeed ~100%."""
        cdn = CDNCache(small_world.network, vantage="Virginia")
        targets = [t for t in small_world.scan_targets()
                   if t.site.family == "generic"
                   and "persistent-fault" not in t.site.tags][:20]
        served = 0
        lookups = 0
        for hour in range(0, 48, 6):
            for target in targets:
                lookups += 1
                body = cdn.lookup(target.site.url, target.request_der,
                                  NOW + hour * HOUR)
                if body is not None:
                    served += 1
        assert served / lookups > 0.95
        assert cdn.hit_rate > 0.3
        assert cdn.responders_contacted() <= len(targets)
