"""Unit tests for the strict DER decoder, including the BER-vs-DER
strictness rules the malformed-response classification depends on."""

import pytest

from repro.asn1 import Reader, encoder
from repro.asn1.errors import (
    DecodeError,
    StrictDERError,
    TagMismatchError,
    TruncatedError,
)


class TestBasicReads:
    def test_read_tlv(self):
        tag, content = Reader(b"\x04\x03abc").read_tlv()
        assert tag == 0x04
        assert content == b"abc"

    def test_raw_element_preserves_bytes(self):
        der = encoder.encode_sequence(encoder.encode_integer(7))
        raw = Reader(der).read_raw_element()
        assert raw == der

    def test_expect_end_raises_on_slack(self):
        reader = Reader(b"\x05\x00\x00")
        reader.read_null()
        with pytest.raises(DecodeError):
            reader.expect_end()

    def test_peek_does_not_consume(self):
        reader = Reader(b"\x02\x01\x05")
        assert reader.peek_tag() == 0x02
        assert reader.read_integer() == 5


class TestTruncation:
    def test_empty_input(self):
        with pytest.raises(TruncatedError):
            Reader(b"").read_tlv()

    def test_tag_without_length(self):
        with pytest.raises(TruncatedError):
            Reader(b"\x02").read_tlv()

    def test_length_exceeds_content(self):
        with pytest.raises(TruncatedError):
            Reader(b"\x04\x05abc").read_tlv()

    def test_truncated_long_form_length(self):
        with pytest.raises(TruncatedError):
            Reader(b"\x04\x82\x01").read_tlv()


class TestStrictness:
    def test_indefinite_length_rejected(self):
        with pytest.raises(StrictDERError):
            Reader(b"\x30\x80\x05\x00\x00\x00").read_tlv()

    def test_non_minimal_length_rejected(self):
        # 3 bytes encoded with long-form length.
        with pytest.raises(StrictDERError):
            Reader(b"\x04\x81\x03abc").read_tlv()

    def test_non_minimal_length_accepted_lenient(self):
        tag, content = Reader(b"\x04\x81\x03abc", lenient=True).read_tlv()
        assert content == b"abc"

    def test_length_leading_zero_rejected(self):
        with pytest.raises(StrictDERError):
            Reader(b"\x04\x82\x00\x03abc").read_tlv()

    def test_redundant_integer_zero_rejected(self):
        with pytest.raises(StrictDERError):
            Reader(b"\x02\x02\x00\x05").read_integer()

    def test_redundant_integer_ff_rejected(self):
        with pytest.raises(StrictDERError):
            Reader(b"\x02\x02\xff\x80").read_integer()

    def test_boolean_nonstandard_true_rejected(self):
        with pytest.raises(StrictDERError):
            Reader(b"\x01\x01\x01").read_boolean()

    def test_boolean_nonstandard_true_lenient(self):
        assert Reader(b"\x01\x01\x01", lenient=True).read_boolean() is True

    def test_empty_integer_rejected(self):
        with pytest.raises(DecodeError):
            Reader(b"\x02\x00").read_integer()

    def test_multi_octet_tag_rejected(self):
        with pytest.raises(DecodeError):
            Reader(b"\x1f\x81\x00\x00").read_tlv()


class TestTypedReaders:
    def test_tag_mismatch_reports_both(self):
        with pytest.raises(TagMismatchError) as excinfo:
            Reader(b"\x02\x01\x05").read_octet_string()
        assert excinfo.value.expected == 0x04
        assert excinfo.value.actual == 0x02

    def test_null_with_content_rejected(self):
        with pytest.raises(DecodeError):
            Reader(b"\x05\x01\x00").read_null()

    def test_bit_string_needs_unused_octet(self):
        with pytest.raises(DecodeError):
            Reader(b"\x03\x00").read_bit_string()

    def test_bit_string_content(self):
        assert Reader(b"\x03\x03\x00\xaa\xbb").read_bit_string() == b"\xaa\xbb"

    def test_nonzero_unused_bits_rejected_in_signatures(self):
        with pytest.raises(DecodeError):
            Reader(b"\x03\x02\x04\xf0").read_bit_string()

    def test_string_rejects_bad_utf8(self):
        with pytest.raises(DecodeError):
            Reader(b"\x0c\x02\xff\xfe").read_string()

    def test_string_rejects_unknown_type(self):
        with pytest.raises(DecodeError):
            Reader(b"\x02\x01\x05").read_string()


class TestContextTags:
    def test_maybe_context_present(self):
        der = encoder.encode_explicit(2, encoder.encode_integer(9))
        ctx = Reader(der).maybe_context(2)
        assert ctx is not None
        assert ctx.read_integer() == 9

    def test_maybe_context_absent(self):
        reader = Reader(encoder.encode_integer(9))
        assert reader.maybe_context(0) is None
        # Cursor unmoved.
        assert reader.read_integer() == 9

    def test_maybe_context_at_end(self):
        reader = Reader(b"")
        assert reader.maybe_context(0) is None

    def test_implicit_content(self):
        der = encoder.encode_implicit(6, b"payload")
        assert Reader(der).read_implicit_content(6) == b"payload"


class TestNestedStructures:
    def test_deep_nesting(self):
        inner = encoder.encode_integer(1)
        der = inner
        for _ in range(10):
            der = encoder.encode_sequence(der)
        reader = Reader(der)
        for _ in range(10):
            reader = reader.read_sequence()
        assert reader.read_integer() == 1

    def test_sub_reader_is_bounded(self):
        der = encoder.encode_sequence(encoder.encode_integer(1)) + b"\x02\x01\x02"
        reader = Reader(der)
        seq = reader.read_sequence()
        assert seq.read_integer() == 1
        assert seq.at_end()
        # Outer reader continues after the sequence.
        assert reader.read_integer() == 2
