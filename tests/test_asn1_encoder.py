"""Unit tests for the DER encoder."""

import pytest

from repro.asn1 import Reader, encoder, oid, tags
from repro.asn1.errors import EncodeError


class TestLengths:
    def test_short_form(self):
        assert encoder.encode_length(0) == b"\x00"
        assert encoder.encode_length(127) == b"\x7f"

    def test_long_form_one_octet(self):
        assert encoder.encode_length(128) == b"\x81\x80"
        assert encoder.encode_length(255) == b"\x81\xff"

    def test_long_form_two_octets(self):
        assert encoder.encode_length(256) == b"\x82\x01\x00"
        assert encoder.encode_length(65535) == b"\x82\xff\xff"

    def test_negative_rejected(self):
        with pytest.raises(EncodeError):
            encoder.encode_length(-1)


class TestInteger:
    def test_zero(self):
        assert encoder.encode_integer(0) == b"\x02\x01\x00"

    def test_positive_small(self):
        assert encoder.encode_integer(127) == b"\x02\x01\x7f"

    def test_high_bit_needs_padding(self):
        # 128 needs a leading zero to stay positive.
        assert encoder.encode_integer(128) == b"\x02\x02\x00\x80"

    def test_negative(self):
        assert encoder.encode_integer(-1) == b"\x02\x01\xff"
        assert encoder.encode_integer(-129) == b"\x02\x02\xff\x7f"

    def test_large_serial_number(self):
        serial = 0x00C0FFEE_DEADBEEF_12345678
        der = encoder.encode_integer(serial)
        assert Reader(der).read_integer() == serial

    def test_minimal_encoding_no_redundant_zeros(self):
        der = encoder.encode_integer(255)
        assert der == b"\x02\x02\x00\xff"
        der = encoder.encode_integer(65280)
        # 0xFF00 -> 00 FF 00 (sign padding required)
        assert der == b"\x02\x03\x00\xff\x00"


class TestBoolean:
    def test_true_is_ff(self):
        assert encoder.encode_boolean(True) == b"\x01\x01\xff"

    def test_false_is_00(self):
        assert encoder.encode_boolean(False) == b"\x01\x01\x00"


class TestBitString:
    def test_empty(self):
        assert encoder.encode_bit_string(b"") == b"\x03\x01\x00"

    def test_octet_aligned(self):
        assert encoder.encode_bit_string(b"\xab") == b"\x03\x02\x00\xab"

    def test_unused_bits_recorded(self):
        der = encoder.encode_bit_string(b"\x80", unused_bits=7)
        assert der == b"\x03\x02\x07\x80"

    def test_unused_bits_out_of_range(self):
        with pytest.raises(EncodeError):
            encoder.encode_bit_string(b"\x00", unused_bits=8)

    def test_unused_bits_on_empty_rejected(self):
        with pytest.raises(EncodeError):
            encoder.encode_bit_string(b"", unused_bits=3)


class TestNamedBits:
    def test_key_usage_bit_zero(self):
        # digitalSignature only: one octet, 7 unused bits.
        assert encoder.encode_named_bits([0]) == b"\x03\x02\x07\x80"

    def test_two_bits(self):
        der = encoder.encode_named_bits([0, 5])
        assert Reader(der).read_named_bits() == [0, 5]

    def test_empty_bits(self):
        assert encoder.encode_named_bits([]) == b"\x03\x01\x00"

    def test_bit_across_octet_boundary(self):
        der = encoder.encode_named_bits([9])
        assert Reader(der).read_named_bits() == [9]

    def test_negative_rejected(self):
        with pytest.raises(EncodeError):
            encoder.encode_named_bits([-1])


class TestStrings:
    def test_ia5_url(self):
        der = encoder.encode_ia5_string("http://ocsp.example.com")
        assert Reader(der).read_string() == "http://ocsp.example.com"

    def test_ia5_rejects_non_ascii(self):
        with pytest.raises(EncodeError):
            encoder.encode_ia5_string("https://exämple.com")

    def test_printable_rejects_at_sign(self):
        with pytest.raises(EncodeError):
            encoder.encode_printable_string("user@host")

    def test_utf8_round_trip(self):
        der = encoder.encode_utf8_string("Zürich CA ✓")
        assert Reader(der).read_string() == "Zürich CA ✓"


class TestStructures:
    def test_sequence_concatenates(self):
        der = encoder.encode_sequence(
            encoder.encode_integer(1), encoder.encode_integer(2)
        )
        seq = Reader(der).read_sequence()
        assert seq.read_integer() == 1
        assert seq.read_integer() == 2
        seq.expect_end()

    def test_set_sorts_elements(self):
        # DER SET OF must sort by encoding.
        a = encoder.encode_integer(2)
        b = encoder.encode_integer(1)
        der = encoder.encode_set([a, b])
        s = Reader(der).read_set()
        assert s.read_integer() == 1
        assert s.read_integer() == 2

    def test_explicit_tagging_wraps(self):
        inner = encoder.encode_integer(5)
        der = encoder.encode_explicit(0, inner)
        assert der[0] == 0xA0
        reader = Reader(der)
        ctx = reader.read_context(0)
        assert ctx.read_integer() == 5

    def test_implicit_tagging_replaces_tag(self):
        der = encoder.encode_implicit(6, b"http://x")
        assert der[0] == 0x86
        assert der[2:] == b"http://x"

    def test_null(self):
        assert encoder.encode_null() == b"\x05\x00"
        Reader(encoder.encode_null()).read_null()


class TestTimes:
    def test_x509_time_before_2050_is_utctime(self):
        der = encoder.encode_x509_time(1_524_585_600)  # 2018
        assert der[0] == tags.UTC_TIME

    def test_x509_time_after_2050_is_generalized(self):
        der = encoder.encode_x509_time(2_600_000_000)  # 2052
        assert der[0] == tags.GENERALIZED_TIME

    def test_ocsp_time_always_generalized(self):
        der = encoder.encode_ocsp_time(1_524_585_600)
        assert der[0] == tags.GENERALIZED_TIME

    def test_round_trip(self):
        for ts in (0, 1_524_585_600, 2_600_000_000):
            der = encoder.encode_x509_time(ts)
            assert Reader(der).read_time() == ts


class TestOid:
    def test_must_staple_oid_bytes(self):
        # 1.3.6.1.5.5.7.1.24 — the RFC 7633 extension.
        der = encoder.encode_oid(oid.TLS_FEATURE)
        assert der == bytes.fromhex("06082b06010505070118")

    def test_tag_rejects_multi_octet(self):
        with pytest.raises(EncodeError):
            encoder.encode_tlv(0x1FF, b"")
