"""Per-rule positive/negative tests for the static conformance analyzer.

The bad artifacts are hand-assembled from ``asn1.encoder`` primitives
because the builders (CertificateBuilder / CRLBuilder) refuse to mint
them — which is itself the point: the linter judges artifacts other
software produced, however broken.
"""

from __future__ import annotations

import pytest

from repro.asn1 import encoder, oid
from repro.crypto import encode_spki, generate_keypair, sign
from repro.lint import (
    KIND_CERTIFICATE,
    KIND_CRL,
    KIND_OCSP,
    LintContext,
    LintEngine,
    Severity,
)
from repro.ocsp import CertID, CertStatus, ResponseStatus
from repro.ocsp.response import SingleResponse, encode_error_response, encode_response
from repro.simnet import DAY, HOUR, MEASUREMENT_START
from repro.x509 import Certificate, CertificateBuilder, Name
from repro.x509.extensions import Extension, encode_tls_feature

NOW = MEASUREMENT_START

KEY = generate_keypair(512, rng=777)
OTHER_KEY = generate_keypair(512, rng=778)


def make_cert(serial=1000, not_before=NOW - 30 * DAY, not_after=NOW + 335 * DAY,
              extensions=(), version3=True, subject="made.example",
              issuer_name="Handmade CA", key=KEY, signing_key=None,
              hash_name="sha256") -> bytes:
    """Encode a certificate with no builder validation in the way."""
    algorithm_oid = {"sha256": oid.SHA256_WITH_RSA,
                     "sha1": oid.SHA1_WITH_RSA}[hash_name]
    algorithm = encoder.encode_sequence(
        encoder.encode_oid(algorithm_oid), encoder.encode_null())
    tbs_parts = []
    if version3:
        tbs_parts.append(encoder.encode_explicit(0, encoder.encode_integer(2)))
    tbs_parts += [
        encoder.encode_integer(serial),
        algorithm,
        Name.build(issuer_name).encode(),
        encoder.encode_sequence(
            encoder.encode_x509_time(not_before),
            encoder.encode_x509_time(not_after),
        ),
        Name.build(subject).encode(),
        encode_spki(key.public_key),
    ]
    if extensions:
        tbs_parts.append(encoder.encode_explicit(3, encoder.encode_sequence(
            *(extension.encode() for extension in extensions))))
    tbs = encoder.encode_sequence(*tbs_parts)
    signature = sign(signing_key or key, tbs, hash_name)
    return encoder.encode_sequence(tbs, algorithm,
                                   encoder.encode_bit_string(signature))


def make_crl(this_update, next_update=None, entries=(),
             issuer_name="Handmade CA", key=KEY, signing_key=None) -> bytes:
    """Encode a CRL with no builder validation in the way."""
    algorithm = encoder.encode_sequence(
        encoder.encode_oid(oid.SHA256_WITH_RSA), encoder.encode_null())
    tbs_parts = [
        encoder.encode_integer(1),
        algorithm,
        Name.build(issuer_name).encode(),
        encoder.encode_x509_time(this_update),
    ]
    if next_update is not None:
        tbs_parts.append(encoder.encode_x509_time(next_update))
    if entries:
        tbs_parts.append(encoder.encode_sequence(*(
            encoder.encode_sequence(
                encoder.encode_integer(serial),
                encoder.encode_x509_time(date),
            ) for serial, date in entries)))
    tbs = encoder.encode_sequence(*tbs_parts)
    signature = sign(signing_key or key, tbs, "sha256")
    return encoder.encode_sequence(tbs, algorithm,
                                   encoder.encode_bit_string(signature))


@pytest.fixture(scope="module")
def engine():
    return LintEngine(LintContext(reference_time=NOW))


def fired(findings):
    return {finding.rule_id for finding in findings}


def cert_rules(engine, der, **ctx_kwargs):
    context = LintContext(reference_time=NOW, **ctx_kwargs) if ctx_kwargs else None
    return fired(engine.lint_der(der, KIND_CERTIFICATE, "test", context))


class TestCertificateRules:
    def test_parse_rule_on_truncated_tlv(self, engine, leaf):
        findings = engine.lint_der(leaf.der[:-10], KIND_CERTIFICATE, "trunc")
        assert fired(findings) == {"X509_PARSE"}
        assert findings[0].severity is Severity.ERROR
        assert findings[0].span.length == len(leaf.der) - 10

    def test_version(self, engine, leaf):
        assert "X509_VERSION" in cert_rules(engine, make_cert(version3=False))
        assert "X509_VERSION" not in cert_rules(engine, leaf.der)

    def test_serial_nonpositive(self, engine, leaf):
        assert "X509_SERIAL_NONPOSITIVE" in cert_rules(engine, make_cert(serial=0))
        assert "X509_SERIAL_NONPOSITIVE" not in cert_rules(engine, leaf.der)

    def test_serial_range(self, engine, leaf):
        over_20_octets = 1 << (8 * 20)
        assert "X509_SERIAL_RANGE" in cert_rules(engine,
                                                 make_cert(serial=over_20_octets))
        assert "X509_SERIAL_RANGE" not in cert_rules(engine, leaf.der)

    def test_validity_order(self, engine, leaf):
        reversed_validity = make_cert(not_before=NOW, not_after=NOW - DAY)
        rules = cert_rules(engine, reversed_validity)
        assert "X509_VALIDITY_ORDER" in rules
        # the expiry rule must not double-fire on a reversed window
        assert "X509_EXPIRED" not in rules
        assert "X509_VALIDITY_ORDER" not in cert_rules(engine, leaf.der)

    def test_expired(self, engine, leaf):
        expired = make_cert(not_before=NOW - 30 * DAY, not_after=NOW - DAY)
        assert "X509_EXPIRED" in cert_rules(engine, expired)
        assert "X509_EXPIRED" not in cert_rules(engine, leaf.der)

    def test_not_yet_valid(self, engine, leaf):
        future = make_cert(not_before=NOW + DAY, not_after=NOW + 90 * DAY)
        assert "X509_NOT_YET_VALID" in cert_rules(engine, future)
        assert "X509_NOT_YET_VALID" not in cert_rules(engine, leaf.der)

    def test_basic_constraints_missing(self, engine, ca):
        assert "X509_BC_MISSING" in cert_rules(engine, make_cert())
        assert "X509_BC_MISSING" not in cert_rules(engine, ca.certificate.der)

    def test_ski_missing_on_ca(self, engine, ca, leaf):
        # the minted root carries BasicConstraints CA:TRUE but no SKI
        assert "X509_SKI_MISSING" in cert_rules(engine, ca.certificate.der)
        assert "X509_SKI_MISSING" not in cert_rules(engine, leaf.der)

    def test_aki_missing_on_leaf(self, engine, ca, leaf):
        assert "X509_AKI_MISSING" in cert_rules(engine, leaf.der)
        # self-issued certificates are exempt
        assert "X509_AKI_MISSING" not in cert_rules(engine, ca.certificate.der)

    def test_must_staple_encoding(self, engine, staple_leaf):
        bad = make_cert(extensions=[
            Extension(oid.TLS_FEATURE, critical=False,
                      value=encoder.encode_integer(5)),  # not a SEQUENCE
        ])
        rules = cert_rules(engine, bad)
        assert "X509_MUST_STAPLE_ENCODING" in rules
        # the feature-list rule must not crash/fire on the broken payload
        assert "X509_MUST_STAPLE_EMPTY" not in rules
        assert "X509_MUST_STAPLE_ENCODING" not in cert_rules(engine, staple_leaf.der)

    def test_must_staple_garbage_payload(self, engine):
        bad = make_cert(extensions=[
            Extension(oid.TLS_FEATURE, critical=False, value=b"\xff\xff\xff"),
        ])
        assert "X509_MUST_STAPLE_ENCODING" in cert_rules(engine, bad)

    def test_must_staple_without_status_request(self, engine, staple_leaf):
        no_status_request = make_cert(extensions=[
            Extension(oid.TLS_FEATURE, critical=False,
                      value=encode_tls_feature((8,))),
        ])
        assert "X509_MUST_STAPLE_EMPTY" in cert_rules(engine, no_status_request)
        assert "X509_MUST_STAPLE_EMPTY" not in cert_rules(engine, staple_leaf.der)

    def test_must_staple_without_ocsp_url(self, engine, staple_leaf):
        no_aia = make_cert(extensions=[
            Extension(oid.TLS_FEATURE, critical=False,
                      value=encode_tls_feature()),
        ])
        assert "X509_MUST_STAPLE_NO_OCSP" in cert_rules(engine, no_aia)
        assert "X509_MUST_STAPLE_NO_OCSP" not in cert_rules(engine, staple_leaf.der)

    def test_aia_ocsp_missing(self, engine, leaf):
        assert "X509_AIA_OCSP_MISSING" in cert_rules(engine, make_cert())
        assert "X509_AIA_OCSP_MISSING" not in cert_rules(engine, leaf.der)

    def test_ocsp_url_scheme(self, engine, ca, leaf):
        https_responder = (
            CertificateBuilder()
            .serial_number(9001)
            .issuer(ca.certificate.subject)
            .subject(Name.build("https.example"))
            .public_key(KEY.public_key)
            .validity(NOW - DAY, NOW + 90 * DAY)
            .leaf()
            .ocsp_url("https://ocsp.example/")
            .sign(ca.key)
        )
        assert "X509_OCSP_URL_SCHEME" in cert_rules(engine, https_responder.der)
        assert "X509_OCSP_URL_SCHEME" not in cert_rules(engine, leaf.der)

    def test_sha1_signature(self, engine, leaf):
        assert "X509_SHA1_SIGNATURE" in cert_rules(engine,
                                                   make_cert(hash_name="sha1"))
        assert "X509_SHA1_SIGNATURE" not in cert_rules(engine, leaf.der)

    def test_signature_self_signed(self, engine, ca):
        forged = make_cert(subject="Handmade CA", issuer_name="Handmade CA",
                           signing_key=OTHER_KEY)
        assert "X509_SIGNATURE" in cert_rules(engine, forged)
        assert "X509_SIGNATURE" not in cert_rules(engine, ca.certificate.der)

    def test_signature_with_issuer_context(self, engine, ca, leaf):
        forged = make_cert(issuer_name=ca.certificate.subject.common_name,
                           signing_key=OTHER_KEY)
        assert "X509_SIGNATURE" in cert_rules(engine, forged,
                                              issuer=ca.certificate)
        assert "X509_SIGNATURE" not in cert_rules(engine, leaf.der,
                                                  issuer=ca.certificate)

    def test_without_issuer_context_signature_skipped(self, engine, leaf):
        # a non-self-signed cert with no issuer context cannot be judged
        assert "X509_SIGNATURE" not in cert_rules(engine, leaf.der)


def good_single(cert_id, this_update=NOW - HOUR, next_update=NOW + DAY):
    return SingleResponse(cert_id, CertStatus.GOOD, this_update, next_update)


def make_response(singles, produced_at=NOW - HOUR, signer_key=None,
                  certificates=(), nonce=None, ca=None):
    key = signer_key if signer_key is not None else ca.key
    return encode_response(singles, produced_at, key, b"\x00" * 20,
                           certificates=certificates, nonce=nonce)


@pytest.fixture(scope="module")
def ocsp_ctx(ca, cert_id):
    return LintContext(reference_time=NOW, issuer=ca.certificate,
                       cert_id=cert_id)


class TestOCSPRules:
    def ocsp_rules(self, engine, der, context):
        return fired(engine.lint_der(der, KIND_OCSP, "test", context))

    def test_good_response_is_clean(self, engine, ca, cert_id, ocsp_ctx):
        der = make_response([good_single(cert_id)], ca=ca)
        findings = engine.lint_der(der, KIND_OCSP, "test", ocsp_ctx)
        assert [f for f in findings if f.severity is Severity.ERROR] == []

    def test_parse_rule_on_zero_body(self, engine, ocsp_ctx):
        # the sheca/postsignum episode body: the single byte "0"
        assert self.ocsp_rules(engine, b"0", ocsp_ctx) == {"OCSP_PARSE"}

    def test_error_status(self, engine, ca, cert_id, ocsp_ctx):
        der = encode_error_response(ResponseStatus.TRY_LATER)
        assert "OCSP_ERROR_STATUS" in self.ocsp_rules(engine, der, ocsp_ctx)
        good = make_response([good_single(cert_id)], ca=ca)
        assert "OCSP_ERROR_STATUS" not in self.ocsp_rules(engine, good, ocsp_ctx)

    def test_update_order(self, engine, ca, cert_id, ocsp_ctx):
        der = make_response(
            [good_single(cert_id, this_update=NOW - HOUR,
                         next_update=NOW - 2 * HOUR)], ca=ca)
        rules = self.ocsp_rules(engine, der, ocsp_ctx)
        assert "OCSP_UPDATE_ORDER" in rules
        # a reversed window is not additionally "expired"
        assert "OCSP_EXPIRED" not in rules

    def test_expired_next_update(self, engine, ca, cert_id, ocsp_ctx):
        der = make_response(
            [good_single(cert_id, this_update=NOW - 3 * DAY,
                         next_update=NOW - DAY)],
            produced_at=NOW - 3 * DAY, ca=ca)
        assert "OCSP_EXPIRED" in self.ocsp_rules(engine, der, ocsp_ctx)
        good = make_response([good_single(cert_id)], ca=ca)
        assert "OCSP_EXPIRED" not in self.ocsp_rules(engine, good, ocsp_ctx)

    def test_future_this_update(self, engine, ca, cert_id, ocsp_ctx):
        der = make_response(
            [good_single(cert_id, this_update=NOW + HOUR,
                         next_update=NOW + DAY)], ca=ca)
        assert "OCSP_THISUPDATE_FUTURE" in self.ocsp_rules(engine, der, ocsp_ctx)

    def test_zero_margin(self, engine, ca, cert_id, ocsp_ctx):
        der = make_response([good_single(cert_id, this_update=NOW - 30)],
                            produced_at=NOW - 30, ca=ca)
        assert "OCSP_ZERO_MARGIN" in self.ocsp_rules(engine, der, ocsp_ctx)
        comfortable = make_response([good_single(cert_id)], ca=ca)
        assert "OCSP_ZERO_MARGIN" not in self.ocsp_rules(engine, comfortable,
                                                         ocsp_ctx)

    def test_blank_next_update(self, engine, ca, cert_id, ocsp_ctx):
        der = make_response([good_single(cert_id, next_update=None)], ca=ca)
        assert "OCSP_BLANK_NEXT_UPDATE" in self.ocsp_rules(engine, der, ocsp_ctx)

    def test_validity_over_month(self, engine, ca, cert_id, ocsp_ctx):
        der = make_response(
            [good_single(cert_id, next_update=NOW - HOUR + 40 * DAY)], ca=ca)
        assert "OCSP_VALIDITY_OVER_MONTH" in self.ocsp_rules(engine, der,
                                                             ocsp_ctx)

    def test_produced_at_future(self, engine, ca, cert_id, ocsp_ctx):
        der = make_response([good_single(cert_id)], produced_at=NOW + HOUR,
                            ca=ca)
        assert "OCSP_PRODUCED_AT_RANGE" in self.ocsp_rules(engine, der, ocsp_ctx)

    def test_produced_at_before_this_update(self, engine, ca, cert_id, ocsp_ctx):
        der = make_response([good_single(cert_id)], produced_at=NOW - 2 * HOUR,
                            ca=ca)
        assert "OCSP_PRODUCED_AT_RANGE" in self.ocsp_rules(engine, der, ocsp_ctx)

    def test_certid_serial_mismatch(self, engine, ca, cert_id, ocsp_ctx):
        wrong_serial = CertID(cert_id.hash_name, cert_id.issuer_name_hash,
                              cert_id.issuer_key_hash,
                              cert_id.serial_number + 1)
        der = make_response([good_single(wrong_serial)], ca=ca)
        rules = self.ocsp_rules(engine, der, ocsp_ctx)
        assert "OCSP_CERTID_MISMATCH" in rules
        good = make_response([good_single(cert_id)], ca=ca)
        assert "OCSP_CERTID_MISMATCH" not in self.ocsp_rules(engine, good,
                                                             ocsp_ctx)

    def test_certid_hash_mismatch(self, engine, ca, cert_id, ocsp_ctx):
        wrong_hashes = CertID(cert_id.hash_name, b"\x01" * 20, b"\x02" * 20,
                              cert_id.serial_number)
        der = make_response([good_single(wrong_hashes)], ca=ca)
        rules = self.ocsp_rules(engine, der, ocsp_ctx)
        assert "OCSP_CERTID_HASH" in rules
        # the serial matches, so the serial rule stays quiet
        assert "OCSP_CERTID_MISMATCH" not in rules

    def test_bad_signature(self, engine, ca, cert_id, ocsp_ctx):
        der = make_response([good_single(cert_id)], signer_key=OTHER_KEY)
        assert "OCSP_SIGNATURE" in self.ocsp_rules(engine, der, ocsp_ctx)
        good = make_response([good_single(cert_id)], ca=ca)
        assert "OCSP_SIGNATURE" not in self.ocsp_rules(engine, good, ocsp_ctx)

    def test_nonce_mismatch(self, engine, ca, cert_id):
        context = LintContext(reference_time=NOW, issuer=ca.certificate,
                              cert_id=cert_id, expected_nonce=b"\x0a" * 8)
        missing = make_response([good_single(cert_id)], ca=ca)
        assert "OCSP_NONCE_MISMATCH" in self.ocsp_rules(engine, missing, context)
        echoed = make_response([good_single(cert_id)], nonce=b"\x0a" * 8, ca=ca)
        assert "OCSP_NONCE_MISMATCH" not in self.ocsp_rules(engine, echoed,
                                                            context)

    def test_superfluous_certs(self, engine, ca, leaf, cert_id, ocsp_ctx):
        der = make_response([good_single(cert_id)],
                            certificates=[leaf, ca.certificate], ca=ca)
        assert "OCSP_SUPERFLUOUS_CERTS" in self.ocsp_rules(engine, der, ocsp_ctx)

    def test_multi_serial(self, engine, ca, cert_id, ocsp_ctx):
        other = CertID(cert_id.hash_name, cert_id.issuer_name_hash,
                       cert_id.issuer_key_hash, cert_id.serial_number + 7)
        der = make_response([good_single(cert_id), good_single(other)], ca=ca)
        rules = self.ocsp_rules(engine, der, ocsp_ctx)
        assert "OCSP_MULTI_SERIAL" in rules
        # the requested serial is present, so no mismatch
        assert "OCSP_CERTID_MISMATCH" not in rules


class TestCRLRules:
    def crl_rules(self, engine, der, **ctx_kwargs):
        context = (LintContext(reference_time=NOW, **ctx_kwargs)
                   if ctx_kwargs else None)
        return fired(engine.lint_der(der, KIND_CRL, "test", context))

    def test_fresh_crl_is_clean(self, engine, ca):
        crl = ca.build_crl(NOW)
        findings = engine.lint_der(
            crl.der, KIND_CRL, "test",
            LintContext(reference_time=NOW, issuer=ca.certificate))
        assert [f for f in findings if f.severity is Severity.ERROR] == []

    def test_parse_rule(self, engine, ca):
        crl = ca.build_crl(NOW)
        assert self.crl_rules(engine, crl.der[:-6]) == {"CRL_PARSE"}

    def test_update_order(self, engine):
        der = make_crl(this_update=NOW, next_update=NOW - DAY)
        rules = self.crl_rules(engine, der)
        assert "CRL_UPDATE_ORDER" in rules
        assert "CRL_STALE" not in rules

    def test_next_update_missing(self, engine, ca):
        assert "CRL_NEXT_UPDATE_MISSING" in self.crl_rules(
            engine, make_crl(this_update=NOW - DAY))
        assert "CRL_NEXT_UPDATE_MISSING" not in self.crl_rules(
            engine, ca.build_crl(NOW).der)

    def test_stale(self, engine, ca):
        stale = make_crl(this_update=NOW - 8 * DAY, next_update=NOW - DAY)
        assert "CRL_STALE" in self.crl_rules(engine, stale)
        assert "CRL_STALE" not in self.crl_rules(engine, ca.build_crl(NOW).der)

    def test_this_update_future(self, engine):
        der = make_crl(this_update=NOW + DAY, next_update=NOW + 8 * DAY)
        assert "CRL_THISUPDATE_FUTURE" in self.crl_rules(engine, der)

    def test_entry_order(self, engine):
        der = make_crl(this_update=NOW - DAY, next_update=NOW + 6 * DAY,
                       entries=[(5, NOW - 2 * DAY), (3, NOW - 3 * DAY)])
        assert "CRL_ENTRY_ORDER" in self.crl_rules(engine, der)
        sorted_der = make_crl(this_update=NOW - DAY, next_update=NOW + 6 * DAY,
                              entries=[(3, NOW - 3 * DAY), (5, NOW - 2 * DAY)])
        assert "CRL_ENTRY_ORDER" not in self.crl_rules(engine, sorted_der)

    def test_entry_duplicate(self, engine):
        der = make_crl(this_update=NOW - DAY, next_update=NOW + 6 * DAY,
                       entries=[(5, NOW - 2 * DAY), (5, NOW - 2 * DAY)])
        assert "CRL_ENTRY_DUPLICATE" in self.crl_rules(engine, der)

    def test_entry_date_future(self, engine):
        der = make_crl(this_update=NOW - DAY, next_update=NOW + 6 * DAY,
                       entries=[(5, NOW + DAY)])
        assert "CRL_ENTRY_DATE_FUTURE" in self.crl_rules(engine, der)

    def test_signature(self, engine, ca):
        issuer_name = ca.certificate.subject.common_name
        forged = make_crl(this_update=NOW - DAY, next_update=NOW + 6 * DAY,
                          issuer_name=issuer_name, signing_key=OTHER_KEY)
        assert "CRL_SIGNATURE" in self.crl_rules(engine, forged,
                                                 issuer=ca.certificate)
        fresh = ca.build_crl(NOW)
        assert "CRL_SIGNATURE" not in self.crl_rules(engine, fresh.der,
                                                     issuer=ca.certificate)

    def test_without_issuer_signature_skipped(self, engine):
        forged = make_crl(this_update=NOW - DAY, next_update=NOW + 6 * DAY,
                          signing_key=OTHER_KEY)
        assert "CRL_SIGNATURE" not in self.crl_rules(engine, forged)
