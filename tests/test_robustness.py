"""Robustness fuzzing: hostile inputs never crash the tooling.

Measurement code meets garbage constantly (the paper found responders
returning empty bodies, "0", and JavaScript pages); every consumer of
untrusted bytes must classify, never crash.
"""

from hypothesis import given, settings, strategies as st

from repro.asn1.dump import dump_der
from repro.asn1.errors import ASN1Error
from repro.ocsp import CertID, OCSPRequest, OCSPResponse, verify_response
from repro.simnet import HTTPRequest, HTTPResponse, ocsp_http_exchange
from repro.tls.wire import WireError, decode_client_hello
from repro.x509 import Certificate, CertificateList, Name
from repro.x509.pem import decode_pem


@given(st.binary(max_size=400))
@settings(max_examples=150)
def test_dump_der_total(blob):
    """The ASN.1 dumper renders *something* for any input."""
    text = dump_der(blob)
    assert isinstance(text, str)


@given(st.binary(max_size=400))
@settings(max_examples=100)
def test_certificate_parser_total(blob):
    try:
        Certificate.from_der(blob)
    except (ASN1Error, ValueError):
        pass


@given(st.binary(max_size=400))
@settings(max_examples=100)
def test_crl_parser_total(blob):
    try:
        CertificateList.from_der(blob)
    except (ASN1Error, ValueError):
        pass


@given(st.binary(max_size=400))
@settings(max_examples=100)
def test_ocsp_response_parser_total(blob):
    try:
        OCSPResponse.from_der(blob)
    except (ASN1Error, ValueError):
        pass


@given(st.binary(max_size=400))
@settings(max_examples=100)
def test_ocsp_request_parser_total(blob):
    try:
        OCSPRequest.from_der(blob)
    except (ASN1Error, ValueError):
        pass


@given(st.binary(max_size=300))
@settings(max_examples=100)
def test_client_hello_decoder_total(blob):
    try:
        decode_client_hello(blob)
    except (WireError, IndexError):
        # IndexError would be a decoder bug: assert it never happens.
        try:
            decode_client_hello(blob)
        except WireError:
            pass


@given(st.text(max_size=500))
@settings(max_examples=100)
def test_pem_decoder_total(text):
    try:
        decode_pem(text)
    except ValueError:
        pass


@given(st.binary(max_size=200))
@settings(max_examples=60)
def test_responder_handles_arbitrary_bodies(blob):
    """Any POST body yields an HTTP response, never an exception."""
    from repro.ca import CertificateAuthority, OCSPResponder, ResponderProfile
    # Built once per test session via function attribute caching.
    rig = getattr(test_responder_handles_arbitrary_bodies, "_rig", None)
    if rig is None:
        ca = CertificateAuthority.create_root(
            "Fuzz CA", "http://ocsp.fuzz.test", not_before=0)
        responder = OCSPResponder(ca, "http://ocsp.fuzz.test",
                                  ResponderProfile(update_interval=None),
                                  epoch_start=0)
        rig = responder
        test_responder_handles_arbitrary_bodies._rig = rig
    response = ocsp_http_exchange(
        rig, HTTPRequest("POST", "http://ocsp.fuzz.test/", body=blob),
        1_525_000_000)
    assert isinstance(response, HTTPResponse)
    assert response.status_code in (200, 405)
