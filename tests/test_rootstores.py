"""Tests for the three-root-store model (footnote 7's validity rule)."""

import pytest

from repro.crypto import KeyPool, generate_keypair
from repro.simnet import DAY
from repro.x509 import (
    CertificateBuilder,
    Name,
    RootStorePopulation,
    STORE_NAMES,
    self_signed,
)

NOW = 1_525_132_800


@pytest.fixture(scope="module")
def roots():
    pool = KeyPool(size=4, seed=321)
    pairs = []
    for index in range(12):
        key = pool.take()
        root = self_signed(Name.build(f"Root {index}", organization=f"CA{index}"),
                           key, serial=1, not_before=NOW - 365 * DAY,
                           not_after=NOW + 3650 * DAY)
        pairs.append((root, key))
    return pairs


@pytest.fixture(scope="module")
def population(roots):
    return RootStorePopulation([root for root, _ in roots],
                               universal_fraction=0.6, seed=2)


class TestRootStorePopulation:
    def test_three_stores(self, population):
        for name in STORE_NAMES:
            assert population.store(name) is not None
        assert len(population) == 12

    def test_every_root_in_at_least_one_store(self, population):
        counts = population.coverage_counts()
        assert sum(counts.values()) == 12
        assert counts[3] >= 4          # the universal majority
        assert counts[1] + counts[2] >= 1  # the regional tail

    def test_deterministic(self, roots):
        a = RootStorePopulation([r for r, _ in roots], seed=5)
        b = RootStorePopulation([r for r, _ in roots], seed=5)
        assert [m.stores for m in a.memberships] == [m.stores for m in b.memberships]

    def test_universal_root_valid_everywhere(self, roots, population):
        universal = next(m for m in population.memberships if m.in_all)
        root, key = next(p for p in roots if p[0].der == universal.root.der)
        leaf_key = generate_keypair(512, rng=55)
        leaf = (CertificateBuilder().serial_number(10).issuer(root.subject)
                .subject(Name.build("all.example")).public_key(leaf_key.public_key)
                .validity(NOW - DAY, NOW + DAY).leaf()
                .dns_names(["all.example"]).sign(key))
        trusting = population.stores_trusting(leaf, [], NOW)
        assert set(trusting) == set(STORE_NAMES)
        assert population.is_valid(leaf, [], NOW)

    def test_regional_root_valid_somewhere_only(self, roots, population):
        regional = next((m for m in population.memberships if not m.in_all), None)
        assert regional is not None
        root, key = next(p for p in roots if p[0].der == regional.root.der)
        leaf_key = generate_keypair(512, rng=56)
        leaf = (CertificateBuilder().serial_number(11).issuer(root.subject)
                .subject(Name.build("regional.example"))
                .public_key(leaf_key.public_key)
                .validity(NOW - DAY, NOW + DAY).leaf()
                .dns_names(["regional.example"]).sign(key))
        trusting = population.stores_trusting(leaf, [], NOW)
        assert set(trusting) == set(regional.stores)
        # The any-of-three rule still calls it valid.
        assert population.is_valid(leaf, [], NOW)

    def test_unknown_root_invalid_everywhere(self, population):
        stray_key = generate_keypair(512, rng=57)
        stray_root = self_signed(Name.build("Stray"), stray_key, 1,
                                 NOW - DAY, NOW + 3650 * DAY)
        leaf_key = generate_keypair(512, rng=58)
        leaf = (CertificateBuilder().serial_number(12).issuer(stray_root.subject)
                .subject(Name.build("stray.example"))
                .public_key(leaf_key.public_key)
                .validity(NOW - DAY, NOW + DAY).leaf().sign(stray_key))
        assert population.stores_trusting(leaf, [], NOW) == []
        assert not population.is_valid(leaf, [], NOW)
