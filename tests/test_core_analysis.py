"""Tests for the analysis layer: stats helpers, availability, quality,
adoption, rendering, and the readiness report."""

import math

import pytest

from repro.core import (
    analyze_availability,
    assess_readiness,
    binned_fraction,
    cdf_points,
    certificates_cdf,
    deployment_stats,
    failures_by_kind,
    figure2_adoption,
    figure11_adoption,
    figure12_history,
    fraction_at_or_below,
    margin_cdf,
    mean,
    median,
    pct,
    percentile,
    persistently_malformed_responders,
    quality_headlines,
    render_cdf,
    render_series,
    render_table,
    responder_quality,
    serials_cdf,
    validity_cdf,
    validity_series,
)
from repro.scanner import ProbeOutcome


class TestStats:
    def test_cdf_points(self):
        points = cdf_points([3, 1, 2])
        assert points == [(1, 1 / 3), (2, 2 / 3), (3, 1.0)]

    def test_cdf_empty(self):
        assert cdf_points([]) == []

    def test_cdf_with_infinity(self):
        points = cdf_points([1, math.inf])
        assert points[-1] == (math.inf, 1.0)

    def test_fraction_at_or_below(self):
        assert fraction_at_or_below([1, 2, 3, 4], 2) == 0.5
        assert fraction_at_or_below([], 10) == 0.0

    def test_mean_median(self):
        assert mean([1, 2, 3]) == 2
        assert median([1, 2, 3, 100]) == 2.5
        assert median([5]) == 5
        assert mean([]) == 0.0

    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 99) == 99
        with pytest.raises(ValueError):
            percentile(values, 101)

    def test_binned_fraction(self):
        items = [(5, True), (6, False), (15, True), (16, True)]
        assert binned_fraction(items, 10) == [(0, 50.0), (10, 100.0)]


class TestAvailability:
    def test_series_cover_all_vantages(self, scan_dataset):
        report = analyze_availability(scan_dataset)
        assert set(report.success_series) == set(scan_dataset.vantages)

    def test_success_rates_sane(self, scan_dataset):
        report = analyze_availability(scan_dataset)
        for vantage, points in report.success_series.items():
            for _, success_pct in points:
                assert 50.0 <= success_pct <= 100.0

    def test_failure_rates_positive(self, scan_dataset):
        report = analyze_availability(scan_dataset)
        assert report.overall_failure_rate > 0

    def test_never_successful_anywhere(self, scan_dataset):
        report = analyze_availability(scan_dataset)
        # The identrust-unreachable family member(s).
        assert len(report.never_successful_anywhere) >= 1

    def test_always_fail_counts(self, scan_dataset):
        report = analyze_availability(scan_dataset)
        # São Paulo has the largest persistent always-fail population.
        assert report.always_fail_by_vantage["Sao-Paulo"] >= 1

    def test_responder_count(self, scan_dataset):
        report = analyze_availability(scan_dataset)
        assert report.responder_count == 40

    def test_failures_by_kind(self, scan_dataset):
        counts = failures_by_kind(scan_dataset)
        assert sum(counts.values()) == sum(
            1 for r in scan_dataset.records if not r.transport_ok)


class TestQuality:
    def test_validity_series_shape(self, scan_dataset):
        series = validity_series(scan_dataset)
        for outcome in (ProbeOutcome.MALFORMED, ProbeOutcome.SERIAL_MISMATCH,
                        ProbeOutcome.BAD_SIGNATURE):
            assert outcome in series.series
        # Malformed responders exist in the world, so the average is > 0.
        assert series.average(ProbeOutcome.MALFORMED) > 0

    def test_malformed_dominates(self, scan_dataset):
        """Paper: 'the vast majority of the errors are caused by a
        malformed structure'."""
        series = validity_series(scan_dataset)
        assert series.average(ProbeOutcome.MALFORMED) >= \
            series.average(ProbeOutcome.SERIAL_MISMATCH)
        assert series.average(ProbeOutcome.MALFORMED) >= \
            series.average(ProbeOutcome.BAD_SIGNATURE)

    def test_persistently_malformed_detected(self, scan_dataset):
        urls = persistently_malformed_responders(scan_dataset)
        assert urls  # the malformed-profile sites

    def test_responder_quality_aggregates(self, scan_dataset):
        qualities = responder_quality(scan_dataset)
        assert qualities
        sample = next(iter(qualities.values()))
        assert sample.url.startswith("http")

    def test_figure6_cdf(self, scan_dataset):
        points = certificates_cdf(responder_quality(scan_dataset))
        assert points
        values = [v for v, _ in points]
        # Some responders send >1 certificate (Fig 6's right tail).
        assert max(values) > 1

    def test_figure7_cdf(self, scan_dataset):
        points = serials_cdf(responder_quality(scan_dataset))
        values = [v for v, _ in points]
        assert max(values) >= 19.5  # the 20-serial stuffers
        # Most responders send exactly one serial.
        ones = sum(1 for v in values if v <= 1.01)
        assert ones / len(values) > 0.75

    def test_figure8_cdf(self, scan_dataset):
        points = validity_cdf(responder_quality(scan_dataset))
        values = [v for v, _ in points]
        assert math.inf in values  # blank nextUpdate responders
        finite = [v for v in values if v != math.inf]
        assert max(finite) >= 35 * 86400  # >1 month validity exists

    def test_figure9_cdf(self, scan_dataset):
        points = margin_cdf(responder_quality(scan_dataset))
        values = [v for v, _ in points]
        assert any(v <= 0 for v in values)    # zero/negative margin
        assert any(v > 3600 for v in values)  # comfortable margins

    def test_headlines(self, scan_dataset):
        headlines = quality_headlines(scan_dataset)
        assert headlines.responders > 30
        assert headlines.zero_margin >= 1
        assert headlines.future_this_update >= 1
        assert headlines.blank_next_update >= 1
        assert headlines.serial20 >= 1
        assert headlines.multi_certificate >= 1
        assert headlines.not_on_demand >= headlines.responders * 0.3
        fractions = headlines.fractions()
        assert 0 < fractions["not_on_demand"] <= 1


class TestAdoption:
    def test_deployment_stats(self, corpus):
        stats = deployment_stats(corpus)
        assert 0.90 <= stats.ocsp_fraction <= 0.99
        shares = stats.must_staple_ca_shares()
        assert shares.get("Lets Encrypt", 0) > 0.80  # paper: 97.3%

    def test_figure2(self, alexa_model):
        adoption = figure2_adoption(alexa_model, bin_width=100_000)
        https = adoption.curves["Domains with certificate"]
        ocsp = adoption.curves["Certificates with OCSP responder"]
        assert len(https) == 10
        assert 70 <= adoption.average("Domains with certificate") <= 80
        assert 85 <= adoption.average("Certificates with OCSP responder") <= 95
        # Popular sites adopt more: the curve declines with rank.
        assert adoption.slope_sign("Domains with certificate") == -1

    def test_figure11(self, alexa_model):
        adoption = figure11_adoption(alexa_model, bin_width=100_000)
        name = "OCSP domains that support OCSP Stapling"
        assert 28 <= adoption.average(name) <= 42   # "roughly 35%"
        assert adoption.slope_sign(name) == -1

    def test_figure12(self):
        history = figure12_history()
        before, after = history.cloudflare_jump()
        assert before < 13_000 and after == 78_907
        assert history.monotonic_growth("ocsp")
        labels = [label for label, _ in history.ocsp_series()]
        assert labels[0] == "2016-05" and labels[-1] == "2018-09"


class TestRender:
    def test_table(self):
        text = render_table(["a", "bb"], [[1, 2], ["xxx", 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "xxx" in text

    def test_series_downsampled(self):
        points = [(i, float(i)) for i in range(100)]
        text = render_series(points, "s", max_points=10)
        assert len(text.splitlines()) == 11

    def test_cdf_quantiles(self):
        text = render_cdf([(i, i / 10) for i in range(1, 11)], "cdf")
        assert "p50" in text
        assert render_cdf([], "empty").startswith("empty")

    def test_pct(self):
        assert pct(0.954) == "95.4%"


class TestReadiness:
    @pytest.fixture(scope="class")
    def report(self, small_world, corpus):
        return assess_readiness(world=small_world, corpus=corpus, scan_days=2,
                                scan_interval=12 * 3600)

    def test_paper_verdict(self, report):
        assert not report.web_is_ready

    def test_all_four_principals(self, report):
        principals = [v.principal for v in report.verdicts]
        assert len(principals) == 4
        assert any("browsers" in p for p in principals)
        assert any("server software" in p for p in principals)

    def test_browsers_not_ready(self, report):
        assert not report.verdict_for("Clients (web browsers)").ready

    def test_servers_not_ready(self, report):
        assert not report.verdict_for("Web server software").ready

    def test_render_contains_answer(self, report):
        text = report.render()
        assert "Is the web ready for OCSP Must-Staple?  NO" in text

    def test_unknown_principal(self, report):
        with pytest.raises(KeyError):
            report.verdict_for("nobody")
