"""Unit tests for the web server stapling models and conformance suite
(paper Section 7.2 / Table 3)."""

import pytest

from repro.ca import CertificateAuthority, OCSPResponder, ResponderProfile
from repro.crypto import generate_keypair
from repro.ocsp import OCSPResponse, ResponseStatus
from repro.simnet import DAY, HOUR, FailureKind, Network, OutageWindow, ocsp_service
from repro.tls import ClientHello
from repro.webserver import (
    ApacheServer,
    EXPERIMENTS,
    IdealServer,
    NginxServer,
    run_conformance,
)

NOW = 1_525_132_800
HELLO = ClientHello(server_name="server.test", status_request=True)
NO_STATUS_HELLO = ClientHello(server_name="server.test", status_request=False)


@pytest.fixture()
def rig():
    """CA + responder + network, with a configurable server factory."""
    ca = CertificateAuthority.create_root("WS CA", "http://ocsp.ws.test",
                                          not_before=NOW - 365 * DAY)
    key = generate_keypair(512, rng=200)
    leaf = ca.issue_leaf("server.test", key, not_before=NOW - DAY)
    responder = OCSPResponder(
        ca, "http://ocsp.ws.test",
        ResponderProfile(update_interval=None, this_update_margin=0,
                         validity_period=2 * HOUR),
        epoch_start=NOW - 7 * DAY,
    )
    network = Network()
    origin = network.add_origin("ws-ocsp", "us-east", ocsp_service(responder))
    network.bind("ocsp.ws.test", origin)

    class Rig:
        pass

    r = Rig()
    r.ca, r.leaf, r.network, r.origin, r.responder = ca, leaf, network, origin, responder
    r.make = lambda cls, **kw: cls(chain=[leaf, ca.certificate],
                                   issuer=ca.certificate, network=network, **kw)
    return r


class TestApache:
    def test_first_connection_pauses_but_staples(self, rig):
        server = rig.make(ApacheServer)
        handshake = server.handle_connection(HELLO, NOW)
        assert handshake.stapled_ocsp is not None
        assert handshake.handshake_delay_ms > 0

    def test_second_connection_cached_no_pause(self, rig):
        server = rig.make(ApacheServer)
        server.handle_connection(HELLO, NOW)
        handshake = server.handle_connection(HELLO, NOW + 60)
        assert handshake.stapled_ocsp is not None
        assert handshake.handshake_delay_ms == 0
        assert server.fetch_count == 1

    def test_serves_expired_within_ttl(self, rig):
        # 10-minute validity: responses expire well inside Apache's 1h TTL.
        rig.responder.profile.validity_period = 600
        server = rig.make(ApacheServer)
        server.handle_connection(HELLO, NOW)
        handshake = server.handle_connection(HELLO, NOW + 1200)  # expired, inside TTL
        response = OCSPResponse.from_der(handshake.stapled_ocsp)
        single = response.basic.single_responses[0]
        assert single.next_update < NOW + 1200  # expired staple served!

    def test_refresh_failure_drops_cache(self, rig):
        server = rig.make(ApacheServer)
        server.handle_connection(HELLO, NOW)
        rig.origin.add_outage(OutageWindow(NOW + 1, NOW + 10 * DAY,
                                           kind=FailureKind.TCP))
        handshake = server.handle_connection(HELLO, NOW + 3700)  # past TTL
        assert handshake.stapled_ocsp is None
        assert server.cache is None

    def test_error_response_is_stapled(self, rig):
        server = rig.make(ApacheServer)
        server.handle_connection(HELLO, NOW)
        rig.responder.profile.always_try_later = True
        handshake = server.handle_connection(HELLO, NOW + 3700)
        assert handshake.stapled_ocsp is not None
        response = OCSPResponse.from_der(handshake.stapled_ocsp)
        assert response.response_status is ResponseStatus.TRY_LATER

    def test_stapling_disabled_by_default_config(self, rig):
        server = rig.make(ApacheServer, stapling_enabled=False)
        assert server.handle_connection(HELLO, NOW).stapled_ocsp is None
        assert server.fetch_count == 0

    def test_no_status_request_no_staple(self, rig):
        server = rig.make(ApacheServer)
        assert server.handle_connection(NO_STATUS_HELLO, NOW).stapled_ocsp is None


class TestNginx:
    def test_first_connection_gets_nothing(self, rig):
        server = rig.make(NginxServer)
        handshake = server.handle_connection(HELLO, NOW)
        assert handshake.stapled_ocsp is None
        assert handshake.handshake_delay_ms == 0

    def test_second_connection_gets_staple(self, rig):
        server = rig.make(NginxServer)
        server.handle_connection(HELLO, NOW)
        handshake = server.handle_connection(HELLO, NOW + 30)
        assert handshake.stapled_ocsp is not None

    def test_respects_next_update(self, rig):
        server = rig.make(NginxServer)
        server.handle_connection(HELLO, NOW)
        server.handle_connection(HELLO, NOW + 30)
        # Go past expiry (2h validity): nginx must not serve the stale one.
        handshake = server.handle_connection(HELLO, NOW + 3 * HOUR)
        if handshake.stapled_ocsp is not None:
            response = OCSPResponse.from_der(handshake.stapled_ocsp)
            assert response.basic.single_responses[0].next_update >= NOW + 3 * HOUR

    def test_retains_cache_on_error(self, rig):
        server = rig.make(NginxServer)
        server.handle_connection(HELLO, NOW)
        server.handle_connection(HELLO, NOW + 30)
        cached = server.cache.body
        rig.origin.add_outage(OutageWindow(NOW + 60, NOW + 10 * DAY,
                                           kind=FailureKind.TCP))
        server.handle_connection(HELLO, NOW + 3 * HOUR)  # refresh fails
        assert server.cache is not None
        assert server.cache.body == cached

    def test_error_status_not_cached(self, rig):
        server = rig.make(NginxServer)
        server.handle_connection(HELLO, NOW)
        server.handle_connection(HELLO, NOW + 30)
        cached = server.cache.body
        rig.responder.profile.always_try_later = True
        server.handle_connection(HELLO, NOW + 3 * HOUR)
        assert server.cache.body == cached  # tryLater did not replace it

    def test_rate_limit_leaks_expired_staple(self, rig):
        """Footnote 28: validity < 5 min can leak expired responses."""
        rig.responder.profile.validity_period = 60
        server = rig.make(NginxServer)
        server.handle_connection(HELLO, NOW)          # fetch 1 (cold)
        server.handle_connection(HELLO, NOW + 10)     # staple ok
        handshake = server.handle_connection(HELLO, NOW + 120)  # expired + rate-limited
        assert handshake.stapled_ocsp is not None
        response = OCSPResponse.from_der(handshake.stapled_ocsp)
        assert response.basic.single_responses[0].next_update < NOW + 120


class TestIdeal:
    def test_prefetch_before_first_client(self, rig):
        server = rig.make(IdealServer)
        server.tick(NOW)
        handshake = server.handle_connection(HELLO, NOW + 1)
        assert handshake.stapled_ocsp is not None
        assert handshake.handshake_delay_ms == 0

    def test_refreshes_before_expiry(self, rig):
        server = rig.make(IdealServer)
        server.tick(NOW)
        first = server.cache.body
        server.tick(NOW + 90 * 60)  # past half validity (1h of 2h)
        assert server.cache.body != first

    def test_retains_on_error(self, rig):
        server = rig.make(IdealServer)
        server.tick(NOW)
        cached = server.cache.body
        rig.origin.add_outage(OutageWindow(NOW + 1, NOW + DAY, kind=FailureKind.TCP))
        server.tick(NOW + 90 * 60)
        assert server.cache.body == cached

    def test_never_staples_expired(self, rig):
        server = rig.make(IdealServer)
        server.tick(NOW)
        rig.origin.add_outage(OutageWindow(NOW + 1, NOW + 10 * DAY,
                                           kind=FailureKind.TCP))
        handshake = server.handle_connection(HELLO, NOW + 5 * HOUR)
        assert handshake.stapled_ocsp is None


class TestConformance:
    """The Table-3 matrix, exactly as the paper reports it."""

    def test_apache_row(self):
        report = run_conformance(ApacheServer)
        cells = report.as_row()
        assert cells["Prefetch OCSP response"] == "no (pause conn.)"
        assert cells["Cache OCSP response"] == "yes"
        assert cells["Respect nextUpdate in cache"] == "no (serves expired)"
        assert cells["Retain OCSP response on error"] == "no (drops cached response)"

    def test_nginx_row(self):
        report = run_conformance(NginxServer)
        cells = report.as_row()
        assert cells["Prefetch OCSP response"] == "no (provide no resp.)"
        assert cells["Cache OCSP response"] == "yes"
        assert cells["Respect nextUpdate in cache"] == "yes"
        assert cells["Retain OCSP response on error"] == "yes"

    def test_ideal_passes_everything(self):
        report = run_conformance(IdealServer)
        assert all(result.passed for result in report.results)

    def test_experiment_names_cover_table3(self):
        assert len(EXPERIMENTS) == 4
        report = run_conformance(ApacheServer)
        assert [r.name for r in report.results] == EXPERIMENTS

    def test_result_lookup(self):
        report = run_conformance(NginxServer)
        assert report.result("Cache OCSP response").passed
        with pytest.raises(KeyError):
            report.result("Nonexistent")
