"""Property-based tests (hypothesis) for the DER codec.

The core invariant: everything the encoder emits, the strict decoder
round-trips — and the encoding is canonical (byte-identical on
re-encode).
"""

from hypothesis import given, settings, strategies as st

from repro.asn1 import ObjectIdentifier, Reader, encoder
from repro.asn1.timecodec import (
    decode_generalized_time,
    decode_utc_time,
    encode_generalized_time,
    encode_utc_time,
)

integers = st.integers(min_value=-(2 ** 256), max_value=2 ** 256)


@given(integers)
def test_integer_round_trip(value):
    assert Reader(encoder.encode_integer(value)).read_integer() == value


@given(integers)
def test_integer_encoding_is_minimal(value):
    der = encoder.encode_integer(value)
    content = der[2:] if der[1] < 0x80 else der[2 + (der[1] & 0x7F):]
    if len(content) > 1:
        assert not (content[0] == 0x00 and content[1] < 0x80)
        assert not (content[0] == 0xFF and content[1] >= 0x80)


@given(st.binary(max_size=512))
def test_octet_string_round_trip(value):
    assert Reader(encoder.encode_octet_string(value)).read_octet_string() == value


@given(st.booleans())
def test_boolean_round_trip(value):
    assert Reader(encoder.encode_boolean(value)).read_boolean() is value


@given(st.lists(st.integers(min_value=0, max_value=127), max_size=16, unique=True))
def test_named_bits_round_trip(bits):
    decoded = Reader(encoder.encode_named_bits(bits)).read_named_bits()
    assert decoded == sorted(bits)


oids = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=39),
    st.lists(st.integers(min_value=0, max_value=2 ** 32), max_size=8),
).map(lambda t: ObjectIdentifier((t[0], t[1], *t[2])))


@given(oids)
def test_oid_round_trip(value):
    assert ObjectIdentifier.decode_content(value.encode_content()) == value


@given(oids)
def test_oid_dotted_round_trip(value):
    assert ObjectIdentifier(value.dotted) == value


@given(st.integers(min_value=-631152000, max_value=2524607999))  # 1950..2049
def test_utc_time_round_trip(ts):
    assert decode_utc_time(encode_utc_time(ts)) == ts


@given(st.integers(min_value=0, max_value=4_102_444_800))  # ..2100
def test_generalized_time_round_trip(ts):
    assert decode_generalized_time(encode_generalized_time(ts)) == ts


@given(st.lists(st.integers(min_value=-(2 ** 64), max_value=2 ** 64), max_size=10))
def test_sequence_of_integers_round_trip(values):
    der = encoder.encode_sequence(*(encoder.encode_integer(v) for v in values))
    seq = Reader(der).read_sequence()
    decoded = []
    while not seq.at_end():
        decoded.append(seq.read_integer())
    assert decoded == values


@given(st.binary(max_size=64), st.integers(min_value=0, max_value=30))
def test_explicit_wrap_round_trip(payload, number):
    inner = encoder.encode_octet_string(payload)
    der = encoder.encode_explicit(number, inner)
    ctx = Reader(der).read_context(number)
    assert ctx.read_octet_string() == payload


@given(st.binary(max_size=200))
@settings(max_examples=200)
def test_decoder_never_hangs_or_crashes_weirdly(blob):
    """Arbitrary bytes either parse or raise a codec error — nothing else."""
    from repro.asn1.errors import ASN1Error
    try:
        reader = Reader(blob)
        while not reader.at_end():
            reader.read_tlv()
    except ASN1Error:
        pass
