"""Unit tests for browser policies and the Table-2 harness (Section 6)."""

import pytest

from repro.browser import (
    ALL_BROWSERS,
    BrowserPolicy,
    DESKTOP_BROWSERS,
    MOBILE_BROWSERS,
    Verdict,
    by_label,
    connect,
    hardened_browser,
    run_browser_tests,
)
from repro.ca import CertificateAuthority, OCSPResponder, ResponderProfile
from repro.crypto import generate_keypair
from repro.simnet import DAY, FailureKind, HOUR, Network, OutageWindow, ocsp_service
from repro.webserver import ApacheServer, IdealServer
from repro.x509 import TrustStore

NOW = 1_525_132_800


@pytest.fixture()
def site():
    """A Must-Staple site behind both stapling and non-stapling servers."""
    ca = CertificateAuthority.create_root("Browser CA", "http://ocsp.b.test",
                                          not_before=NOW - 365 * DAY)
    key = generate_keypair(512, rng=300)
    leaf = ca.issue_leaf("must.test", key, not_before=NOW - DAY, must_staple=True)
    responder = OCSPResponder(ca, "http://ocsp.b.test",
                              ResponderProfile(update_interval=None,
                                               this_update_margin=HOUR),
                              epoch_start=NOW - 7 * DAY)
    network = Network()
    origin = network.add_origin("b-ocsp", "us-east", ocsp_service(responder))
    network.bind("ocsp.b.test", origin)

    class Site:
        pass

    s = Site()
    s.ca, s.leaf, s.network, s.origin = ca, leaf, network, origin
    s.trust = TrustStore([ca.certificate])
    s.stapling_server = IdealServer(chain=[leaf, ca.certificate],
                                    issuer=ca.certificate, network=network)
    s.stapling_server.tick(NOW)
    s.bare_server = ApacheServer(chain=[leaf, ca.certificate],
                                 issuer=ca.certificate, network=network,
                                 stapling_enabled=False)
    return s


FIREFOX = by_label()["Firefox 60 (Linux)"]
CHROME = by_label()["Chrome 66 (Linux)"]


class TestConnectPipeline:
    def test_staple_present_accepted(self, site):
        outcome = connect(FIREFOX, site.stapling_server, "must.test", site.trust, NOW)
        assert outcome.verdict is Verdict.ACCEPTED
        assert outcome.staple_received and outcome.staple_valid

    def test_firefox_hard_fails_without_staple(self, site):
        outcome = connect(FIREFOX, site.bare_server, "must.test", site.trust, NOW)
        assert outcome.verdict is Verdict.REJECTED_MUST_STAPLE
        assert not outcome.connected

    def test_chrome_soft_fails_without_staple(self, site):
        outcome = connect(CHROME, site.bare_server, "must.test", site.trust, NOW,
                          network=site.network)
        assert outcome.verdict is Verdict.ACCEPTED_SOFT_FAIL
        assert outcome.connected
        assert not outcome.own_ocsp_request_sent

    def test_revoked_staple_rejected(self, site):
        site.ca.revoke(site.leaf, NOW)
        server = IdealServer(chain=[site.leaf, site.ca.certificate],
                             issuer=site.ca.certificate, network=site.network)
        server.tick(NOW + HOUR)
        outcome = connect(FIREFOX, server, "must.test", site.trust, NOW + HOUR)
        assert outcome.verdict is Verdict.REJECTED_REVOKED

    def test_invalid_chain_rejected(self, site):
        outcome = connect(FIREFOX, site.stapling_server, "must.test",
                          TrustStore(), NOW)
        assert outcome.verdict is Verdict.REJECTED_CERT_INVALID

    def test_hostname_mismatch_rejected(self, site):
        outcome = connect(FIREFOX, site.stapling_server, "other.test",
                          site.trust, NOW)
        assert outcome.verdict is Verdict.REJECTED_CERT_INVALID

    def test_hardened_browser_falls_back_to_own_ocsp(self, site):
        browser = BrowserPolicy("Test", "any", fallback_own_ocsp=True)
        outcome = connect(browser, site.bare_server, "must.test", site.trust,
                          NOW, network=site.network)
        assert outcome.own_ocsp_request_sent
        assert outcome.verdict is Verdict.ACCEPTED

    def test_fallback_detects_revocation(self, site):
        site.ca.revoke(site.leaf, NOW)
        browser = BrowserPolicy("Test", "any", fallback_own_ocsp=True)
        outcome = connect(browser, site.bare_server, "must.test", site.trust,
                          NOW + HOUR, network=site.network)
        assert outcome.verdict is Verdict.REJECTED_REVOKED

    def test_fallback_soft_fails_when_responder_down(self, site):
        site.origin.add_outage(OutageWindow(NOW - 1, NOW + DAY,
                                            kind=FailureKind.TCP))
        browser = BrowserPolicy("Test", "any", fallback_own_ocsp=True)
        outcome = connect(browser, site.bare_server, "must.test", site.trust,
                          NOW, network=site.network)
        assert outcome.verdict is Verdict.ACCEPTED_SOFT_FAIL
        assert outcome.own_ocsp_request_sent

    def test_hardened_hard_fails_before_fallback_on_must_staple(self, site):
        browser = hardened_browser()
        outcome = connect(browser, site.bare_server, "must.test", site.trust,
                          NOW, network=site.network)
        # Must-Staple wins: hard-fail, no own request.
        assert outcome.verdict is Verdict.REJECTED_MUST_STAPLE

    def test_no_status_request_browser_ignores_staples(self, site):
        browser = BrowserPolicy("Legacy", "any", sends_status_request=False)
        outcome = connect(browser, site.stapling_server, "must.test",
                          site.trust, NOW)
        assert not outcome.sent_status_request
        assert outcome.verdict is Verdict.ACCEPTED_SOFT_FAIL


class TestTable2:
    def test_population_counts(self):
        assert len(DESKTOP_BROWSERS) == 11
        assert len(MOBILE_BROWSERS) == 5
        assert len(ALL_BROWSERS) == 16

    def test_all_browsers_request_ocsp(self):
        report = run_browser_tests()
        assert all(row.requests_ocsp_response for row in report.rows)

    def test_only_firefox_respects_must_staple(self):
        report = run_browser_tests()
        compliant = set(report.compliant_browsers)
        assert compliant == {
            "Firefox 60 (OS X)", "Firefox 60 (Linux)", "Firefox 60 (Windows)",
            "Firefox (Android)",
        }

    def test_firefox_ios_does_not_respect(self):
        report = run_browser_tests()
        assert not report.row("Firefox (iOS)").respects_must_staple

    def test_no_browser_sends_own_ocsp_request(self):
        report = run_browser_tests()
        for row in report.rows:
            # Either hard-failed (N/A) or did not fall back.
            assert row.sends_own_ocsp_request in (None, False)

    def test_cells_rendering(self):
        report = run_browser_tests()
        firefox = report.row("Firefox 60 (Linux)").cells()
        assert firefox == {
            "Request OCSP response": "yes",
            "Respect OCSP Must-Staple": "yes",
            "Send own OCSP request": "-",
        }
        chrome = report.row("Chrome 66 (Linux)").cells()
        assert chrome["Respect OCSP Must-Staple"] == "no"
        assert chrome["Send own OCSP request"] == "no"

    def test_unknown_label_raises(self):
        report = run_browser_tests()
        with pytest.raises(KeyError):
            report.row("Netscape 4 (BeOS)")
