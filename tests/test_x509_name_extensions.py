"""Unit tests for X.501 names and X.509 extensions."""

import pytest

from repro.asn1 import Reader, oid
from repro.x509 import Name
from repro.x509.extensions import (
    BasicConstraints,
    Extension,
    Extensions,
    REASON_KEY_COMPROMISE,
    REASON_NAMES,
    TLS_FEATURE_STATUS_REQUEST,
    decode_aia,
    decode_crl_distribution_points,
    decode_crl_reason,
    decode_extended_key_usage,
    decode_key_usage,
    decode_subject_alt_name,
    decode_tls_feature,
    encode_aia,
    encode_crl_distribution_points,
    encode_crl_reason,
    encode_extended_key_usage,
    encode_key_usage,
    encode_subject_alt_name,
    encode_tls_feature,
    make_aia_extension,
    make_basic_constraints_extension,
    make_tls_feature_extension,
)


class TestName:
    def test_build_shape(self):
        name = Name.build("example.com", organization="Org", country="US")
        assert name.common_name == "example.com"
        assert len(name.attributes) == 3

    def test_round_trip(self):
        name = Name.build("example.com", organization="Örg", country="US")
        assert Name.from_der(name.encode()) == name

    def test_equality_by_der(self):
        assert Name.build("a") == Name.build("a")
        assert Name.build("a") != Name.build("b")

    def test_hashable(self):
        assert len({Name.build("a"), Name.build("a")}) == 1

    def test_attribute_order_matters(self):
        a = Name([(oid.COMMON_NAME, "x"), (oid.ORGANIZATION_NAME, "y")])
        b = Name([(oid.ORGANIZATION_NAME, "y"), (oid.COMMON_NAME, "x")])
        assert a != b

    def test_country_uses_printable_string(self):
        der = Name.build("x", country="US").encode()
        assert b"\x13\x02US" in der  # PrintableString tag

    def test_hash_sha1_length(self):
        assert len(Name.build("x").hash_sha1()) == 20

    def test_rfc4514(self):
        name = Name.build("example.com", organization="Org", country="US")
        assert name.rfc4514() == "CN=example.com,O=Org,C=US"

    def test_no_common_name(self):
        assert Name([(oid.ORGANIZATION_NAME, "Org")]).common_name is None


class TestTLSFeature:
    def test_encode_decode(self):
        assert decode_tls_feature(encode_tls_feature()) == [TLS_FEATURE_STATUS_REQUEST]

    def test_multiple_features(self):
        assert decode_tls_feature(encode_tls_feature([5, 17])) == [5, 17]

    def test_extension_oid(self):
        ext = make_tls_feature_extension()
        assert ext.extn_id == "1.3.6.1.5.5.7.1.24"
        assert not ext.critical

    def test_extensions_must_staple_property(self):
        exts = Extensions([make_tls_feature_extension()])
        assert exts.must_staple

    def test_feature_17_alone_is_not_must_staple(self):
        ext = Extension(oid.TLS_FEATURE, False, encode_tls_feature([17]))
        assert not Extensions([ext]).must_staple

    def test_absent_is_not_must_staple(self):
        assert not Extensions().must_staple


class TestAIA:
    def test_ocsp_urls(self):
        der = encode_aia(["http://ocsp.a.test", "http://ocsp.b.test"])
        decoded = decode_aia(der)
        assert decoded[oid.AD_OCSP] == ["http://ocsp.a.test", "http://ocsp.b.test"]

    def test_ca_issuers(self):
        der = encode_aia([], ["http://ca.a.test/ca.crt"])
        assert decode_aia(der)[oid.AD_CA_ISSUERS] == ["http://ca.a.test/ca.crt"]

    def test_extension_accessors(self):
        exts = Extensions([make_aia_extension(["http://o.test"], ["http://i.test"])])
        assert exts.ocsp_urls == ["http://o.test"]
        assert exts.ca_issuer_urls == ["http://i.test"]

    def test_empty_when_absent(self):
        assert Extensions().ocsp_urls == []


class TestCRLDistributionPoints:
    def test_round_trip(self):
        urls = ["http://crl.a.test/1.crl", "http://crl.b.test/2.crl"]
        assert decode_crl_distribution_points(encode_crl_distribution_points(urls)) == urls

    def test_empty(self):
        assert decode_crl_distribution_points(encode_crl_distribution_points([])) == []


class TestSAN:
    def test_round_trip(self):
        names = ["example.com", "*.example.com"]
        assert decode_subject_alt_name(encode_subject_alt_name(names)) == names


class TestBasicConstraints:
    def test_ca_with_pathlen(self):
        bc = BasicConstraints(ca=True, path_length=0)
        assert BasicConstraints.from_der(bc.to_der()) == bc

    def test_leaf_is_empty_sequence(self):
        assert BasicConstraints(ca=False).to_der() == b"\x30\x00"

    def test_extension_is_critical(self):
        assert make_basic_constraints_extension(True).critical

    def test_extensions_is_ca(self):
        exts = Extensions([make_basic_constraints_extension(True)])
        assert exts.is_ca
        exts = Extensions([make_basic_constraints_extension(False)])
        assert not exts.is_ca


class TestKeyUsageEku:
    def test_key_usage_round_trip(self):
        assert decode_key_usage(encode_key_usage([0, 5, 6])) == [0, 5, 6]

    def test_eku_round_trip(self):
        purposes = [oid.EKU_SERVER_AUTH, oid.EKU_OCSP_SIGNING]
        assert decode_extended_key_usage(encode_extended_key_usage(purposes)) == purposes


class TestCRLReason:
    def test_round_trip(self):
        assert decode_crl_reason(encode_crl_reason(REASON_KEY_COMPROMISE)) == 1

    def test_unknown_code_rejected(self):
        from repro.asn1.errors import DecodeError
        with pytest.raises(DecodeError):
            encode_crl_reason(7)  # 7 is unassigned in RFC 5280

    def test_all_names_known(self):
        assert REASON_NAMES[1] == "keyCompromise"
        assert REASON_NAMES[8] == "removeFromCRL"


class TestExtensionPlumbing:
    def test_extension_round_trip(self):
        ext = Extension(oid.KEY_USAGE, True, b"\x03\x02\x07\x80")
        decoded = Extension.decode(Reader(ext.encode()))
        assert decoded == ext

    def test_noncritical_omits_boolean(self):
        ext = Extension(oid.KEY_USAGE, False, b"\x05\x00")
        # DEFAULT FALSE must be absent in DER.
        assert b"\x01\x01" not in ext.encode()

    def test_extensions_get_first_match(self):
        a = Extension(oid.KEY_USAGE, False, b"a")
        b = Extension(oid.KEY_USAGE, False, b"b")
        exts = Extensions([a, b])
        assert exts.get(oid.KEY_USAGE) is a

    def test_extensions_iteration_order(self):
        a = Extension(oid.KEY_USAGE, False, b"a")
        b = Extension(oid.SUBJECT_ALT_NAME, False, b"b")
        assert list(Extensions([a, b])) == [a, b]
