"""Tests for repro.runtime — sharding, caching, and the unified API.

The load-bearing guarantees:

* parallel output is byte-identical to serial output (and to the
  plain in-process scanner) for shard-merged experiments;
* the artifact cache hits on an unchanged config, misses on any config
  change, and a warm rerun executes zero shards;
* every registry entry resolves to a callable runner.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.core.experiments import all_experiments
from repro.datasets import CorpusConfig, WorldConfig
from repro.datasets.corpus import CertificateCorpus
from repro.runtime import (
    ArtifactCache,
    CorpusRunConfig,
    ScanCampaignConfig,
    ShardExecutor,
    ShardSpec,
    default_config,
    run_experiment,
    shard_key,
)
from repro.scanner.hourly import HourlyScanner
from repro.scanner.io import dump_dataset
from repro.simnet import DAY, HOUR, MEASUREMENT_START

SMALL_CAMPAIGN = ScanCampaignConfig(
    world=WorldConfig(n_responders=40, certs_per_responder=1, seed=7),
    interval=12 * HOUR,
    start=MEASUREMENT_START,
    end=MEASUREMENT_START + 2 * DAY,
)


def _dump(dataset) -> str:
    stream = io.StringIO()
    dump_dataset(dataset, stream)
    return stream.getvalue()


class TestShardMergeDeterminism:
    def test_fig3_parallel_bytes_equal_serial(self):
        serial = run_experiment("fig3", config=SMALL_CAMPAIGN, workers=1,
                                cache=False)
        parallel = run_experiment("fig3", config=SMALL_CAMPAIGN, workers=4,
                                  cache=False)
        assert serial.rows == parallel.rows
        assert serial.series == parallel.series
        assert serial.summary == parallel.summary
        assert (_dump(serial.artifacts["dataset"])
                == _dump(parallel.artifacts["dataset"]))

    def test_fig3_merge_matches_inprocess_scanner(self):
        from repro.datasets import MeasurementWorld
        result = run_experiment("fig3", config=SMALL_CAMPAIGN, workers=3,
                                cache=False)
        scanner = HourlyScanner(MeasurementWorld(SMALL_CAMPAIGN.world),
                                interval=SMALL_CAMPAIGN.interval)
        direct = scanner.run(SMALL_CAMPAIGN.start, SMALL_CAMPAIGN.end)
        assert _dump(result.artifacts["dataset"]) == _dump(direct)

    def test_sec4_parallel_equals_serial(self):
        config = CorpusRunConfig(corpus=CorpusConfig(size=300, seed=7),
                                 shards=4)
        serial = run_experiment("sec4-deployment", config=config, workers=1,
                                cache=False)
        parallel = run_experiment("sec4-deployment", config=config, workers=4,
                                  cache=False)
        assert serial.rows == parallel.rows
        assert serial.summary == parallel.summary

    def test_sharded_corpus_equals_lazy_corpus(self):
        config = CorpusConfig(size=120, seed=5)
        lazy = CertificateCorpus(config)
        sharded = CertificateCorpus.generate(config, shards=4)
        assert [r.to_dict() for r in lazy.records] \
            == [r.to_dict() for r in sharded.records]

    def test_shard_plan_independent_of_workers(self):
        from repro.runtime.sharding import scan_shards
        keys = [spec.key() for spec in scan_shards(SMALL_CAMPAIGN)]
        assert keys == [spec.key() for spec in scan_shards(SMALL_CAMPAIGN)]
        assert len(set(keys)) == len(keys)


class TestArtifactCache:
    def test_cold_miss_then_warm_hit(self, tmp_path):
        cold = run_experiment("fig3", config=SMALL_CAMPAIGN,
                              cache_dir=str(tmp_path))
        warm = run_experiment("fig3", config=SMALL_CAMPAIGN,
                              cache_dir=str(tmp_path))
        assert cold.cache_status == "miss"
        assert cold.provenance.executed_shards == len(cold.provenance.shards)
        assert warm.cache_status == "hit"
        assert warm.provenance.executed_shards == 0
        assert warm.rows == cold.rows
        assert warm.series == cold.series
        assert warm.summary == cold.summary

    def test_warm_hit_across_worker_counts(self, tmp_path):
        cold = run_experiment("fig3", config=SMALL_CAMPAIGN, workers=2,
                              cache_dir=str(tmp_path))
        warm = run_experiment("fig3", config=SMALL_CAMPAIGN, workers=1,
                              cache_dir=str(tmp_path))
        assert cold.cache_status == "miss"
        assert warm.cache_status == "hit"

    def test_config_change_invalidates(self, tmp_path):
        run_experiment("fig3", config=SMALL_CAMPAIGN,
                       cache_dir=str(tmp_path))
        changed = ScanCampaignConfig(
            world=WorldConfig(n_responders=40, certs_per_responder=1,
                              seed=8),
            interval=SMALL_CAMPAIGN.interval,
            start=SMALL_CAMPAIGN.start, end=SMALL_CAMPAIGN.end)
        rerun = run_experiment("fig3", config=changed,
                               cache_dir=str(tmp_path))
        assert rerun.cache_status == "miss"

    def test_cache_disabled_reports_off(self):
        result = run_experiment("tbl2", cache=False)
        assert result.cache_status == "off"

    def test_scan_campaign_shards_shared_across_experiments(self, tmp_path):
        cold = run_experiment("fig3", config=SMALL_CAMPAIGN,
                              cache_dir=str(tmp_path))
        fig6 = run_experiment("fig6", config=SMALL_CAMPAIGN,
                              cache_dir=str(tmp_path))
        assert cold.cache_status == "miss"
        assert fig6.cache_status == "hit"

    def test_corrupt_entry_recomputes(self, tmp_path):
        cache = ArtifactCache(root=str(tmp_path))
        key = shard_key("m:f", {"x": 1})
        cache.store(key, "m:f", [{"a": 1}])
        assert cache.load(key) == [{"a": 1}]
        with open(cache._path(key), "w") as stream:
            stream.write("not json\n")
        assert cache.load(key) is None

    def test_executor_runs_uncached_specs(self, tmp_path):
        cache = ArtifactCache(root=str(tmp_path))
        executor = ShardExecutor(workers=1, cache=cache)
        specs = [ShardSpec(
            worker="repro.runtime.runners:corpus_shard",
            payload={"corpus": CorpusConfig(size=4, seed=1).to_dict(),
                     "lo": 0, "hi": 4})]
        outputs, records = executor.run(specs)
        assert len(outputs[0]) == 4
        assert not records[0].cached
        outputs2, records2 = executor.run(specs)
        assert records2[0].cached
        assert outputs2 == outputs


class TestRegistryCompleteness:
    def test_every_experiment_has_callable_runner(self):
        for entry in all_experiments():
            runner = entry.resolve_runner()
            assert callable(runner), entry.experiment_id

    def test_every_experiment_has_default_config(self):
        for entry in all_experiments():
            config = default_config(entry.experiment_id)
            digest = config.config_digest()
            assert isinstance(digest, str) and digest
            # Configs round-trip through their dict form.
            rebuilt = type(config).from_dict(
                json.loads(json.dumps(config.to_dict())))
            assert rebuilt.config_digest() == digest

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("not-an-experiment")


class TestResultShape:
    def test_result_document_is_json_serializable(self):
        result = run_experiment("fig8", config=SMALL_CAMPAIGN, cache=False)
        document = result.to_dict()
        encoded = json.dumps(document)
        # The Figure-8 blank-nextUpdate infinity maps to the "inf" token.
        assert '"inf"' in encoded
        assert document["cache"] == "off"
        assert document["provenance"]["experiment_id"] == "fig8"

    def test_timings_and_provenance_populated(self):
        result = run_experiment("tbl3", cache=False)
        assert result.timings["total_s"] >= 0
        assert result.provenance.workers == 1
        assert len(result.provenance.shards) == 1


class TestCLIRuntime:
    def test_run_subcommand_reports_cache_status(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["run", "tbl2", "--cache-dir", str(tmp_path)]) == 0
        assert "cache: miss" in capsys.readouterr().out
        assert main(["run", "tbl2", "--cache-dir", str(tmp_path)]) == 0
        assert "cache: hit" in capsys.readouterr().out

    def test_run_json_document(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["run", "abl-parser", "--json",
                     "--cache-dir", str(tmp_path)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["experiment_id"] == "abl-parser"
        assert document["rows"]

    def test_run_unknown_experiment_fails(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["run", "nope", "--cache-dir", str(tmp_path)]) == 2

    def test_root_seed_alias_is_an_error(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "scan.jsonl"
        assert main(["--seed", "9", "scan", "--responders", "40",
                     "--days", "1", "--interval", "12", "--no-cache",
                     "--out", str(out)]) == 2
        err = capsys.readouterr().err
        assert "removed" in err
        # The migration hint names the exact replacement spelling.
        assert "repro scan --seed 9" in err
        assert not out.exists()

    def test_figures_full_alias_is_an_error(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["figures", "--full", "--out", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "removed" in err and "--scale full" in err
