"""Unit tests for CAs, revocation registries, and the OCSP responder."""

import pytest

from repro.ca import (
    CertificateAuthority,
    MalformedWindow,
    OCSPResponder,
    ResponderProfile,
    RevocationPolicy,
    RevocationRegistry,
    blank_next_update_profile,
    future_this_update_profile,
    long_validity_profile,
    non_overlapping_profile,
    persistent_malformed_profile,
    serial_stuffing_profile,
    superfluous_certs_profile,
    zero_margin_profile,
)
from repro.crypto import generate_keypair
from repro.ocsp import (
    CertID,
    CertStatus,
    OCSPError,
    OCSPRequest,
    OCSPResponse,
    ResponseStatus,
    verify_response,
)
from repro.simnet import (DAY, HOUR, WEEK, HTTPRequest,
                          ocsp_http_exchange, ocsp_post)
from repro.x509 import CertificateList

NOW = 1_524_614_400  # 2018-04-25


@pytest.fixture()
def authority():
    return CertificateAuthority.create_root(
        "Unit CA", "http://ocsp.unit.test", "http://crl.unit.test/ca.crl",
        not_before=NOW - 365 * DAY,
    )


@pytest.fixture()
def leaf(authority):
    key = generate_keypair(512, rng=90)
    return authority.issue_leaf("unit.example", key, not_before=NOW - DAY)


def make_responder(authority, profile=None, **kwargs):
    return OCSPResponder(authority, "http://ocsp.unit.test",
                         profile or ResponderProfile(update_interval=None),
                         epoch_start=kwargs.pop("epoch_start", NOW - 30 * DAY),
                         **kwargs)


def query(responder, cert_id, now):
    request = OCSPRequest.for_single(cert_id)
    return ocsp_http_exchange(responder, ocsp_post(responder.url + "/", request.encode()), now)


class TestRegistry:
    def test_simultaneous_propagation(self):
        registry = RevocationRegistry()
        registry.revoke(5, 1000, reason=1)
        assert registry.crl_is_revoked(5)
        assert registry.ocsp_lookup(5, 1000) is not None

    def test_reason_dropped_on_ocsp_by_default(self):
        registry = RevocationRegistry()
        registry.revoke(5, 1000, reason=1)
        assert registry.crl_db.lookup(5).reason == 1
        assert registry.ocsp_lookup(5, 1000).reason is None

    def test_keep_reason_override(self):
        registry = RevocationRegistry()
        registry.revoke(5, 1000, reason=1, keep_reason=True)
        assert registry.ocsp_lookup(5, 1000).reason == 1

    def test_drop_entry_policy(self):
        registry = RevocationRegistry(RevocationPolicy(ocsp_drops_entry=True))
        registry.revoke(5, 1000)
        assert registry.crl_is_revoked(5)
        assert registry.ocsp_lookup(5, 2000) is None

    def test_drop_entry_override(self):
        registry = RevocationRegistry()
        registry.revoke(5, 1000, ocsp_visible=False)
        assert registry.ocsp_lookup(5, 2000) is None

    def test_delayed_propagation(self):
        registry = RevocationRegistry(RevocationPolicy(ocsp_delay=3600))
        registry.revoke(5, 1000)
        assert registry.ocsp_lookup(5, 1000) is None
        assert registry.ocsp_lookup(5, 4599) is None
        assert registry.ocsp_lookup(5, 4600) is not None

    def test_time_offset(self):
        registry = RevocationRegistry(RevocationPolicy(ocsp_time_offset=7 * HOUR))
        registry.revoke(5, 1000)
        assert registry.ocsp_lookup(5, 1000 + 7 * HOUR).revoked_at == 1000 + 7 * HOUR
        assert registry.crl_db.lookup(5).revoked_at == 1000

    def test_per_revocation_offset_override(self):
        registry = RevocationRegistry()
        registry.revoke(5, 1000, ocsp_time_offset=-500)
        assert registry.ocsp_lookup(5, 1000).revoked_at == 500

    def test_records_sorted(self):
        registry = RevocationRegistry()
        registry.revoke(9, 10)
        registry.revoke(3, 20)
        assert [r.serial_number for r in registry.crl_entries()] == [3, 9]


class TestAuthority:
    def test_serials_increase(self, authority):
        key = generate_keypair(512, rng=91)
        a = authority.issue_leaf("a.test", key, NOW)
        b = authority.issue_leaf("b.test", key, NOW)
        assert b.serial_number > a.serial_number

    def test_leaf_has_expected_extensions(self, leaf):
        assert leaf.ocsp_urls == ["http://ocsp.unit.test"]
        assert leaf.crl_urls == ["http://crl.unit.test/ca.crl"]
        assert not leaf.must_staple

    def test_must_staple_opt_in(self, authority):
        key = generate_keypair(512, rng=92)
        cert = authority.issue_leaf("ms.test", key, NOW, must_staple=True)
        assert cert.must_staple

    def test_lets_encrypt_style_no_crl(self, authority):
        key = generate_keypair(512, rng=93)
        cert = authority.issue_leaf("le.test", key, NOW, include_crl_url=False)
        assert cert.crl_urls == []

    def test_ocsp_url_override(self, authority):
        key = generate_keypair(512, rng=94)
        cert = authority.issue_leaf("o.test", key, NOW,
                                    ocsp_url="http://ocsp2.unit.test")
        assert cert.ocsp_urls == ["http://ocsp2.unit.test"]

    def test_intermediate_chain(self, authority):
        intermediate = authority.create_intermediate(
            "Unit Intermediate", "http://ocsp-int.unit.test")
        assert intermediate.certificate.issuer == authority.certificate.subject
        assert intermediate.certificate.is_ca
        assert intermediate.certificate.verify_signature(authority.key.public_key)

    def test_crl_includes_revocations(self, authority, leaf):
        authority.revoke(leaf, NOW, reason=1)
        crl = authority.build_crl(NOW + HOUR)
        assert crl.is_revoked(leaf.serial_number)
        assert crl.verify_signature(authority.key.public_key)

    def test_crl_prunes_expired(self, authority):
        authority.revoke(111, NOW - 100 * DAY)
        authority.revoke(222, NOW)
        crl = authority.build_crl(NOW, prune_expired_before=NOW - 50 * DAY)
        assert not crl.is_revoked(111)
        assert crl.is_revoked(222)

    def test_ocsp_signer_has_eku(self, authority):
        key = generate_keypair(512, rng=95)
        signer = authority.issue_ocsp_signer(key, NOW)
        from repro.asn1 import oid
        assert oid.EKU_OCSP_SIGNING in signer.extensions.extended_key_usages
        assert signer.extensions.has_ocsp_nocheck


class TestResponderBasics:
    def test_good_answer(self, authority, leaf):
        responder = make_responder(authority)
        cert_id = CertID.for_certificate(leaf, authority.certificate)
        response = query(responder, cert_id, NOW)
        assert response.status_code == 200
        check = verify_response(response.body, cert_id, authority.certificate, NOW)
        assert check.ok and check.good

    def test_revoked_answer(self, authority, leaf):
        responder = make_responder(authority)
        authority.revoke(leaf, NOW - HOUR, reason=4)
        cert_id = CertID.for_certificate(leaf, authority.certificate)
        check = verify_response(query(responder, cert_id, NOW).body,
                                cert_id, authority.certificate, NOW)
        assert check.revoked
        assert check.single.revoked_info.revocation_time == NOW - HOUR

    def test_unknown_for_foreign_certid(self, authority, leaf):
        responder = make_responder(authority)
        cert_id = CertID("sha1", b"\x00" * 20, b"\x00" * 20, 999999)
        check = verify_response(query(responder, cert_id, NOW).body,
                                cert_id, authority.certificate, NOW)
        assert check.cert_status is CertStatus.UNKNOWN

    def test_malformed_request_gets_ocsp_error(self, authority):
        responder = make_responder(authority)
        response = ocsp_http_exchange(responder, ocsp_post(responder.url + "/", b"garbage"), NOW)
        assert response.status_code == 200
        assert OCSPResponse.from_der(response.body).response_status is \
            ResponseStatus.MALFORMED_REQUEST

    def test_ocsp_over_get(self, authority, leaf):
        """RFC 6960 appendix A.1: the GET form works end to end."""
        from repro.simnet import ocsp_get
        responder = make_responder(authority)
        cert_id = CertID.for_certificate(leaf, authority.certificate)
        request = OCSPRequest.for_single(cert_id)
        response = ocsp_http_exchange(responder, 
            ocsp_get(responder.url, request.encode()), NOW)
        assert response.status_code == 200
        check = verify_response(response.body, cert_id,
                                authority.certificate, NOW)
        assert check.ok and check.good

    def test_get_with_garbage_path(self, authority):
        responder = make_responder(authority)
        response = ocsp_http_exchange(responder, HTTPRequest("GET", responder.url + "/%%%"), NOW)
        assert response.status_code == 200
        assert OCSPResponse.from_der(response.body).response_status is \
            ResponseStatus.MALFORMED_REQUEST

    def test_other_methods_rejected(self, authority):
        responder = make_responder(authority)
        response = ocsp_http_exchange(responder, HTTPRequest("PUT", responder.url + "/"), NOW)
        assert response.status_code == 405

    def test_nonce_echoed(self, authority, leaf):
        responder = make_responder(authority)
        cert_id = CertID.for_certificate(leaf, authority.certificate)
        request = OCSPRequest.for_single(cert_id, nonce=b"\x42" * 8)
        response = ocsp_http_exchange(responder, 
            ocsp_post(responder.url + "/", request.encode()), NOW)
        assert verify_response(response.body, cert_id, authority.certificate, NOW).ok

    def test_try_later_profile(self, authority, leaf):
        responder = make_responder(authority, ResponderProfile(always_try_later=True))
        cert_id = CertID.for_certificate(leaf, authority.certificate)
        check = verify_response(query(responder, cert_id, NOW).body,
                                cert_id, authority.certificate, NOW)
        assert check.error is OCSPError.ERROR_STATUS


class TestResponderProfiles:
    def cert_id(self, authority, leaf):
        return CertID.for_certificate(leaf, authority.certificate)

    def test_zero_margin(self, authority, leaf):
        responder = make_responder(authority, zero_margin_profile())
        cert_id = self.cert_id(authority, leaf)
        check = verify_response(query(responder, cert_id, NOW).body,
                                cert_id, authority.certificate, NOW)
        assert check.ok
        assert check.single.this_update == NOW  # no margin at all

    def test_zero_margin_fails_slow_clock(self, authority, leaf):
        responder = make_responder(authority, zero_margin_profile())
        cert_id = self.cert_id(authority, leaf)
        body = query(responder, cert_id, NOW).body
        # A client whose clock runs 30 s slow rejects the response.
        check = verify_response(body, cert_id, authority.certificate, NOW - 30)
        assert check.error is OCSPError.NOT_YET_VALID

    def test_future_this_update(self, authority, leaf):
        responder = make_responder(authority, future_this_update_profile(300))
        cert_id = self.cert_id(authority, leaf)
        check = verify_response(query(responder, cert_id, NOW).body,
                                cert_id, authority.certificate, NOW)
        assert check.error is OCSPError.NOT_YET_VALID

    def test_blank_next_update(self, authority, leaf):
        responder = make_responder(authority, blank_next_update_profile())
        cert_id = self.cert_id(authority, leaf)
        check = verify_response(query(responder, cert_id, NOW).body,
                                cert_id, authority.certificate, NOW)
        assert check.ok and check.single.next_update is None

    def test_long_validity(self, authority, leaf):
        responder = make_responder(authority, long_validity_profile(1251))
        cert_id = self.cert_id(authority, leaf)
        check = verify_response(query(responder, cert_id, NOW).body,
                                cert_id, authority.certificate, NOW)
        assert check.single.validity_period == 1251 * DAY

    def test_serial_stuffing(self, authority, leaf):
        responder = make_responder(authority, serial_stuffing_profile(20))
        cert_id = self.cert_id(authority, leaf)
        response = OCSPResponse.from_der(query(responder, cert_id, NOW).body)
        assert len(response.basic.serial_numbers) == 20
        # The requested serial is still answered and verifiable.
        assert verify_response(query(responder, cert_id, NOW).body, cert_id,
                               authority.certificate, NOW).ok

    def test_superfluous_certs(self, authority, leaf):
        responder = make_responder(authority, superfluous_certs_profile(extra=3))
        cert_id = self.cert_id(authority, leaf)
        response = OCSPResponse.from_der(query(responder, cert_id, NOW).body)
        assert len(response.basic.certificates) >= 2

    def test_persistent_malformed_zero(self, authority, leaf):
        responder = make_responder(authority, persistent_malformed_profile("zero"))
        assert query(responder, self.cert_id(authority, leaf), NOW).body == b"0"

    def test_persistent_malformed_javascript(self, authority, leaf):
        responder = make_responder(authority, persistent_malformed_profile("javascript"))
        body = query(responder, self.cert_id(authority, leaf), NOW).body
        assert b"<html>" in body

    def test_malformed_window_only_active_inside(self, authority, leaf):
        window = MalformedWindow(NOW + 100, NOW + 200, "zero")
        responder = make_responder(authority,
                                   ResponderProfile(update_interval=None,
                                                    malformed_windows=(window,)))
        cert_id = self.cert_id(authority, leaf)
        assert query(responder, cert_id, NOW).body != b"0"
        assert query(responder, cert_id, NOW + 150).body == b"0"
        assert query(responder, cert_id, NOW + 200).body != b"0"

    def test_wrong_key_signature_fails(self, authority, leaf):
        responder = make_responder(authority,
                                   ResponderProfile(update_interval=None, wrong_key=True))
        cert_id = self.cert_id(authority, leaf)
        check = verify_response(query(responder, cert_id, NOW).body,
                                cert_id, authority.certificate, NOW)
        assert check.error is OCSPError.BAD_SIGNATURE

    def test_serial_mismatch_profile(self, authority, leaf):
        responder = make_responder(authority,
                                   ResponderProfile(update_interval=None,
                                                    serial_mismatch=True))
        cert_id = self.cert_id(authority, leaf)
        check = verify_response(query(responder, cert_id, NOW).body,
                                cert_id, authority.certificate, NOW)
        assert check.error is OCSPError.SERIAL_MISMATCH

    def test_unknown_for_all(self, authority, leaf):
        authority.revoke(leaf, NOW - DAY)
        responder = make_responder(authority,
                                   ResponderProfile(update_interval=None,
                                                    unknown_for_all=True))
        cert_id = self.cert_id(authority, leaf)
        check = verify_response(query(responder, cert_id, NOW).body,
                                cert_id, authority.certificate, NOW)
        assert check.cert_status is CertStatus.UNKNOWN

    def test_good_for_revoked(self, authority, leaf):
        authority.revoke(leaf, NOW - DAY)
        responder = make_responder(authority,
                                   ResponderProfile(update_interval=None,
                                                    good_for_revoked=True))
        cert_id = self.cert_id(authority, leaf)
        check = verify_response(query(responder, cert_id, NOW).body,
                                cert_id, authority.certificate, NOW)
        assert check.cert_status is CertStatus.GOOD

    def test_delegated_signing_verifies(self, authority, leaf):
        responder = make_responder(authority,
                                   ResponderProfile(update_interval=None,
                                                    delegated_signing=True))
        cert_id = self.cert_id(authority, leaf)
        check = verify_response(query(responder, cert_id, NOW).body,
                                cert_id, authority.certificate, NOW)
        assert check.ok and check.delegated

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ResponderProfile(malformed_mode="nonsense")
        with pytest.raises(ValueError):
            ResponderProfile(serials_per_response=0)
        with pytest.raises(ValueError):
            ResponderProfile(validity_period=0)
        with pytest.raises(ValueError):
            ResponderProfile(stale_backends=0)


class TestPregeneration:
    def test_same_epoch_same_bytes(self, authority, leaf):
        responder = make_responder(authority,
                                   ResponderProfile(update_interval=DAY),
                                   epoch_start=NOW)
        cert_id = CertID.for_certificate(leaf, authority.certificate)
        first = query(responder, cert_id, NOW + 100).body
        second = query(responder, cert_id, NOW + HOUR).body
        assert first == second

    def test_new_epoch_new_bytes(self, authority, leaf):
        responder = make_responder(authority,
                                   ResponderProfile(update_interval=DAY),
                                   epoch_start=NOW)
        cert_id = CertID.for_certificate(leaf, authority.certificate)
        first = query(responder, cert_id, NOW + 100).body
        later = query(responder, cert_id, NOW + DAY + 100).body
        assert first != later

    def test_on_demand_produced_at_tracks_now(self, authority, leaf):
        responder = make_responder(authority)
        cert_id = CertID.for_certificate(leaf, authority.certificate)
        body = query(responder, cert_id, NOW + 12345).body
        assert OCSPResponse.from_der(body).basic.produced_at == NOW + 12345

    def test_stale_backends_regress_produced_at(self, authority, leaf):
        profile = ResponderProfile(update_interval=DAY, stale_backends=3,
                                   backend_skew=600)
        responder = make_responder(authority, profile)  # epoch_start 30d back
        cert_id = CertID.for_certificate(leaf, authority.certificate)
        produced = []
        for i in range(4):
            body = query(responder, cert_id, NOW + 5 * HOUR + i).body
            produced.append(OCSPResponse.from_der(body).basic.produced_at)
        assert any(b < a for a, b in zip(produced, produced[1:]))

    def test_non_overlapping_profile_shape(self):
        profile = non_overlapping_profile(7200)
        assert profile.validity_period == profile.update_interval == 7200


class TestCRLService:
    def test_serves_signed_crl(self, authority, leaf):
        from repro.ca import CRLService
        authority.revoke(leaf, NOW - HOUR, reason=1)
        service = CRLService(authority, "http://crl.unit.test/ca.crl",
                             epoch_start=NOW - DAY)
        response = service.handle(HTTPRequest("GET", service.url), NOW)
        assert response.status_code == 200
        crl = CertificateList.from_der(response.body)
        assert crl.is_revoked(leaf.serial_number)
        assert crl.verify_signature(authority.key.public_key)

    def test_post_rejected(self, authority):
        from repro.ca import CRLService
        service = CRLService(authority, "http://crl.unit.test/ca.crl")
        assert service.handle(HTTPRequest("POST", service.url), NOW).status_code == 405

    def test_epoch_stability(self, authority):
        from repro.ca import CRLService
        service = CRLService(authority, "http://crl.unit.test/ca.crl",
                             publication_interval=DAY, epoch_start=NOW)
        a = service.handle(HTTPRequest("GET", service.url), NOW + 100).body
        b = service.handle(HTTPRequest("GET", service.url), NOW + HOUR).body
        assert a == b
