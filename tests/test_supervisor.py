"""Tests for the crash-tolerant supervised runtime.

The self-chaos harness (:mod:`repro.runtime.chaos`) injects worker
crashes (``os._exit``), hangs, raised exceptions, and hand-corrupted
cache entries; every test's load-bearing assertion is the same
determinism contract PR 2 established — merged output byte-identical
to an undisturbed serial run, no matter what died along the way.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.datasets import CorpusConfig
from repro.faults import FaultClass, classify_exception
from repro.runtime import (
    ArtifactCache,
    CorpusRunConfig,
    RunManifest,
    ShardExecutor,
    ShardQuarantinedError,
    ShardSpec,
    SupervisedExecutor,
    resolve_worker,
    run_experiment,
    shard_key,
)
from repro.runtime.chaos import chaos_wrap
from repro.runtime.sharding import corpus_shards

#: Small but multi-shard: 6 shards of 8 corpus records each.
CORPUS_CONFIG = CorpusRunConfig(corpus=CorpusConfig(size=48, seed=11),
                                shards=6)


def plain_specs():
    return corpus_shards(CORPUS_CONFIG)


def serial_outputs(specs):
    """The undisturbed serial baseline (no cache, no supervision)."""
    executor = ShardExecutor(workers=1, cache=ArtifactCache(enabled=False))
    outputs, _records = executor.run(specs)
    return outputs


def output_bytes(outputs) -> str:
    return json.dumps(outputs, sort_keys=True)


@pytest.fixture
def baseline():
    return output_bytes(serial_outputs(plain_specs()))


def supervised(tmp_path, name="cache", **kwargs):
    kwargs.setdefault("workers", 4)
    kwargs.setdefault("max_retries", 2)
    return SupervisedExecutor(cache=ArtifactCache(root=str(tmp_path / name)),
                              **kwargs)


class TestChaosRecovery:
    """Injected faults must not change a single output byte."""

    def test_worker_crash_is_retried(self, tmp_path, baseline):
        specs = plain_specs()
        specs[1] = chaos_wrap(specs[1], "crash", 1, str(tmp_path / "scratch"))
        executor = supervised(tmp_path)
        outputs, _records = executor.run(specs)
        assert output_bytes(outputs) == baseline
        state = executor.manifest_shards[1]
        assert state.outcome == "computed"
        assert [a.outcome for a in state.attempts] == ["crash", "ok"]
        assert state.attempts[0].fault_class == "transient"
        assert "exited" in state.attempts[0].error

    def test_hung_worker_is_killed_and_retried(self, tmp_path, baseline):
        specs = plain_specs()
        specs[2] = chaos_wrap(specs[2], "hang", 1, str(tmp_path / "scratch"),
                              hang_s=60.0)
        executor = supervised(tmp_path, shard_timeout=1.0)
        outputs, _records = executor.run(specs)
        assert output_bytes(outputs) == baseline
        state = executor.manifest_shards[2]
        assert [a.outcome for a in state.attempts] == ["hang", "ok"]
        assert "timeout" in state.attempts[0].error

    def test_transient_exception_retries_with_backoff(self, tmp_path,
                                                      baseline):
        specs = plain_specs()
        specs[3] = chaos_wrap(specs[3], "transient", 2,
                              str(tmp_path / "scratch"))
        executor = supervised(tmp_path)
        outputs, _records = executor.run(specs)
        assert output_bytes(outputs) == baseline
        state = executor.manifest_shards[3]
        assert [a.outcome for a in state.attempts] == ["error", "error", "ok"]
        assert all(a.fault_class == "transient"
                   for a in state.attempts[:2])

    def test_retry_success_is_byte_identical_to_clean_run(self, tmp_path,
                                                          baseline):
        """The satellite contract: a shard that succeeds on attempt 2
        yields output byte-identical to a run that never failed."""
        specs = plain_specs()
        specs[0] = chaos_wrap(specs[0], "transient", 1,
                              str(tmp_path / "scratch"))
        executor = supervised(tmp_path, workers=1)
        outputs, _records = executor.run(specs)
        assert output_bytes(outputs) == baseline
        assert len(executor.manifest_shards[0].attempts) == 2

    def test_everything_at_once(self, tmp_path, baseline):
        """Crash + hang + transient + corrupt cache entry, one run."""
        specs = plain_specs()
        scratch = str(tmp_path / "scratch")
        specs[1] = chaos_wrap(specs[1], "crash", 1, scratch)
        specs[2] = chaos_wrap(specs[2], "hang", 1, scratch, hang_s=60.0)
        specs[4] = chaos_wrap(specs[4], "transient", 1, scratch)
        cache = ArtifactCache(root=str(tmp_path / "cache"))
        # Pre-corrupt shard 5's cache entry: right key, tampered rows.
        key5 = specs[5].key()
        cache.store(key5, specs[5].worker, [{"fake": True}])
        with open(cache._path(key5), "r+") as stream:
            raw = stream.read()
            stream.seek(0)
            stream.write(raw.replace("true", "null"))
            stream.truncate()
        executor = SupervisedExecutor(workers=4, cache=cache,
                                      shard_timeout=1.0, max_retries=2)
        outputs, _records = executor.run(specs)
        assert output_bytes(outputs) == baseline
        outcomes = {s.index: s.outcome for s in executor.manifest_shards}
        assert set(outcomes.values()) == {"computed"}  # nothing trusted the bad entry
        retried = [s for s in executor.manifest_shards
                   if len(s.attempts) > 1]
        assert len(retried) == 3
        # The corrupted entry is quarantined, and a fresh one stored.
        assert os.listdir(os.path.join(cache.root, "corrupt"))
        assert cache.load(key5) is not None


class TestQuarantine:
    def test_permanent_fault_quarantines_immediately(self, tmp_path):
        specs = plain_specs()
        specs[2] = chaos_wrap(specs[2], "permanent", 99,
                              str(tmp_path / "scratch"))
        executor = supervised(tmp_path, allow_partial=True)
        outputs, records = executor.run(specs)
        state = executor.manifest_shards[2]
        assert state.outcome == "quarantined"
        assert len(state.attempts) == 1  # no retry budget wasted
        assert state.quarantine_reason.startswith("permanent:")
        assert outputs[2] == []
        assert len(records) == len(specs)
        # Healthy shards are untouched by the neighbour's failure.
        baseline = serial_outputs(plain_specs())
        for index in (0, 1, 3, 4, 5):
            assert outputs[index] == baseline[index]

    def test_crash_loop_becomes_poison(self, tmp_path):
        specs = plain_specs()[:2]
        specs[1] = chaos_wrap(specs[1], "crash", 99,
                              str(tmp_path / "scratch"))
        executor = supervised(tmp_path, max_retries=1, allow_partial=True)
        executor.run(specs)
        state = executor.manifest_shards[1]
        assert state.outcome == "quarantined"
        assert state.quarantine_reason.startswith("poison:")
        assert len(state.attempts) == 2  # initial + one retry

    def test_without_allow_partial_raises_after_completion(self, tmp_path):
        """The error comes *after* healthy shards persisted — that is
        what makes the rerun cheap."""
        specs = plain_specs()
        specs[1] = chaos_wrap(specs[1], "permanent", 99,
                              str(tmp_path / "scratch"))
        cache = ArtifactCache(root=str(tmp_path / "cache"))
        executor = SupervisedExecutor(workers=4, cache=cache, max_retries=2)
        with pytest.raises(ShardQuarantinedError) as excinfo:
            executor.run(specs)
        assert "permanent" in str(excinfo.value)
        assert len(excinfo.value.states) == 1
        # All five healthy shards already live in the cache.
        assert sum(1 for _ in cache.entries()) == 5

    def test_unknown_exception_is_permanent(self):
        assert classify_exception("KeyError") is FaultClass.PERMANENT
        assert classify_exception("TimeoutError") is FaultClass.TRANSIENT
        assert classify_exception("MemoryError") is FaultClass.POISON


class TestResume:
    def test_interrupted_run_resumes_from_cache(self, tmp_path, baseline):
        """First invocation quarantines a crash-looping shard; the
        second recomputes only that shard and completes the campaign."""
        specs = plain_specs()
        # Crashes 3 times total; run 1 (max_retries=1) sees crashes
        # 1-2 and quarantines; run 2 sees crash 3 then success.
        specs[2] = chaos_wrap(specs[2], "crash", 3, str(tmp_path / "scratch"))
        cache = ArtifactCache(root=str(tmp_path / "cache"))

        first = SupervisedExecutor(workers=4, cache=cache, max_retries=1,
                                   allow_partial=True)
        outputs1, _ = first.run(specs)
        assert outputs1[2] == []
        assert first.manifest_shards[2].outcome == "quarantined"

        second = SupervisedExecutor(workers=4, cache=cache, max_retries=1,
                                    allow_partial=True)
        outputs2, _ = second.run(specs)
        outcomes = [s.outcome for s in second.manifest_shards]
        assert outcomes.count("cached") == 5
        assert outcomes.count("computed") == 1
        assert output_bytes(outputs2) == baseline

    def test_mixed_cached_computed_provenance(self, tmp_path):
        """Satellite: records and manifest agree on what came from
        where, and the threaded-through keys match spec.key()."""
        specs = plain_specs()
        cache = ArtifactCache(root=str(tmp_path / "cache"))
        warmup = SupervisedExecutor(workers=2, cache=cache)
        warmup.run(specs[:3])

        executor = SupervisedExecutor(workers=2, cache=cache)
        outputs, records = executor.run(specs)
        assert [r.cached for r in records] == [True] * 3 + [False] * 3
        assert [s.outcome for s in executor.manifest_shards] \
            == ["cached"] * 3 + ["computed"] * 3
        for spec, record, state in zip(specs, records,
                                       executor.manifest_shards):
            assert record.key == spec.key() == state.key
            assert record.rows == state.rows > 0
        assert output_bytes(outputs) == output_bytes(serial_outputs(specs))


class TestCacheIntegrity:
    def store_one(self, tmp_path, rows=None):
        cache = ArtifactCache(root=str(tmp_path / "c"))
        rows = rows if rows is not None else [{"a": 1}, {"b": 2}, {"c": 3}]
        key = shard_key("m:f", {"x": 1})
        cache.store(key, "m:f", rows)
        return cache, key

    def test_round_trip(self, tmp_path):
        cache, key = self.store_one(tmp_path)
        assert cache.load(key) == [{"a": 1}, {"b": 2}, {"c": 3}]

    def test_truncated_at_line_boundary_is_corruption(self, tmp_path):
        """Satellite regression: a file cut at a line boundary used to
        silently return fewer rows; now the header row count (and the
        digest) flags it."""
        cache, key = self.store_one(tmp_path)
        path = cache._path(key)
        with open(path) as stream:
            lines = stream.read().splitlines()
        with open(path, "w") as stream:
            stream.write("\n".join(lines[:-1]) + "\n")  # drop last row only
        assert cache.load(key) is None
        assert os.path.basename(path) in os.listdir(
            os.path.join(cache.root, "corrupt"))

    def test_tampered_payload_is_corruption(self, tmp_path):
        cache, key = self.store_one(tmp_path)
        path = cache._path(key)
        with open(path) as stream:
            raw = stream.read()
        with open(path, "w") as stream:
            stream.write(raw.replace('{"b": 2}', '{"b": 9}'))
        assert cache.load(key) is None

    def test_missing_file_is_plain_miss(self, tmp_path):
        cache = ArtifactCache(root=str(tmp_path / "c"))
        assert cache.load(shard_key("m:f", {"y": 2})) is None
        assert not os.path.isdir(os.path.join(cache.root, "corrupt"))

    def test_corrupt_entry_recomputes_and_heals(self, tmp_path):
        cache, key = self.store_one(tmp_path)
        with open(cache._path(key), "w") as stream:
            stream.write("garbage\n")
        assert cache.load(key) is None
        cache.store(key, "m:f", [{"a": 1}, {"b": 2}, {"c": 3}])
        assert cache.load(key) == [{"a": 1}, {"b": 2}, {"c": 3}]

    def test_gc_dry_run_deletes_nothing(self, tmp_path):
        cache, key = self.store_one(tmp_path)
        with open(cache._path(key), "w") as stream:
            stream.write("garbage\n")
        assert cache.load(key) is None  # quarantined
        removed, freed = cache.gc(dry_run=True)
        assert removed == 1 and freed > 0
        assert cache.stats().corrupt_entries == 1  # still there
        assert cache.gc() == (removed, freed)
        assert cache.stats().corrupt_entries == 0

    def test_gc_max_age_keeps_fresh_evidence(self, tmp_path):
        cache, key = self.store_one(tmp_path)
        with open(cache._path(key), "w") as stream:
            stream.write("garbage\n")
        assert cache.load(key) is None
        corrupt = os.path.join(cache.root, "corrupt",
                               os.path.basename(cache._path(key)))
        now = os.path.getmtime(corrupt) + 100.0
        assert cache.gc(max_age_s=500.0, now=now) == (0, 0)
        assert cache.stats().corrupt_entries == 1
        removed, _freed = cache.gc(max_age_s=50.0, now=now)
        assert removed == 1
        assert cache.stats().corrupt_entries == 0

    def test_gc_max_age_requires_explicit_now(self, tmp_path):
        cache = ArtifactCache(root=str(tmp_path / "c"))
        with pytest.raises(ValueError, match="wall clock"):
            cache.gc(max_age_s=10.0)

    def test_stats_verify_gc(self, tmp_path):
        cache = ArtifactCache(root=str(tmp_path / "c"))
        keys = [shard_key("m:f", {"i": i}) for i in range(3)]
        for i, key in enumerate(keys):
            cache.store(key, "m:f", [{"i": i}])
        stats = cache.stats()
        assert stats.entries == 3 and stats.rows == 3
        assert stats.corrupt_entries == 0
        # Corrupt one entry by hand; verify must catch and quarantine.
        with open(cache._path(keys[1]), "a") as stream:
            stream.write('{"extra": "row"}\n')
        report = cache.verify()
        assert report.checked == 3 and report.ok == 2
        assert report.corrupt == [keys[1]]
        assert not report.clean
        assert cache.stats().corrupt_entries == 1
        # Second verify is clean (the bad entry is gone from the live set).
        assert cache.verify().clean
        removed, freed = cache.gc()
        assert removed == 1 and freed > 0
        assert cache.stats().corrupt_entries == 0
        removed, _freed = cache.gc(everything=True)
        assert removed == 2
        assert cache.stats().entries == 0


class TestBackoffBudget:
    """Satellite: retry backoff never outlives the shard's own
    wall-clock budget — a shard with 0.3s of timeout left is not put
    to sleep for 1s first."""

    def test_exponential_ramp_with_cap(self):
        executor = SupervisedExecutor(backoff_base_s=0.1, backoff_cap_s=0.4)
        assert [executor._backoff_s(n) for n in (1, 2, 3, 4, 5)] \
            == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_capped_by_remaining_timeout_budget(self):
        executor = SupervisedExecutor(shard_timeout=1.0,
                                      backoff_base_s=0.4,
                                      backoff_cap_s=10.0)
        # Attempt 3 wants 1.6s, but only 0.1s of budget remains.
        assert executor._backoff_s(3, spent_s=0.9) == pytest.approx(0.1)
        # Budget exhausted: retry immediately rather than sleep at all.
        assert executor._backoff_s(3, spent_s=1.0) == 0.0
        assert executor._backoff_s(3, spent_s=5.0) == 0.0

    def test_uncapped_without_timeout(self):
        executor = SupervisedExecutor(backoff_base_s=0.4,
                                      backoff_cap_s=10.0)
        assert executor._backoff_s(3, spent_s=100.0) == pytest.approx(1.6)


class TestResolveWorker:
    def test_wrong_function_name_raises_value_error(self):
        """Satellite regression: used to surface as a bare
        AttributeError with no hint of the dotted entrypoint."""
        with pytest.raises(ValueError,
                           match=r"repro\.runtime\.runners:not_a_worker"):
            resolve_worker("repro.runtime.runners:not_a_worker")

    def test_malformed_spelling_raises(self):
        with pytest.raises(ValueError, match="module:function"):
            resolve_worker("no-colon-here")

    def test_good_entrypoint_resolves(self):
        assert callable(resolve_worker("repro.runtime.runners:corpus_shard"))


class TestRunExperimentSupervised:
    def test_supervised_result_carries_manifest(self, tmp_path):
        result = run_experiment("sec4-deployment", config=CORPUS_CONFIG,
                                workers=2, cache_dir=str(tmp_path),
                                supervise=True)
        manifest = result.manifest
        assert isinstance(manifest, RunManifest)
        assert manifest.experiment_id == "sec4-deployment"
        assert manifest.complete
        assert manifest.computed == len(manifest.shards) == 6
        document = result.to_dict()
        assert document["manifest"]["complete"] is True
        json.dumps(document)  # JSON-safe

    def test_supervised_equals_unsupervised(self, tmp_path):
        plain = run_experiment("sec4-deployment", config=CORPUS_CONFIG,
                               cache=False)
        supervised_result = run_experiment(
            "sec4-deployment", config=CORPUS_CONFIG, workers=3,
            cache_dir=str(tmp_path), supervise=True)
        assert supervised_result.rows == plain.rows
        assert supervised_result.summary == plain.summary

    def test_unsupervised_result_has_no_manifest(self):
        result = run_experiment("tbl2", cache=False)
        assert result.manifest is None
        assert "manifest" not in result.to_dict()

    def test_chaos_fig3_supervised_matches_serial(self, tmp_path):
        """The acceptance scenario on a real scan campaign: inject a
        crash into one scan shard, supervise at 4 workers, and demand
        the merged dataset match the undisturbed serial run."""
        from repro.datasets import WorldConfig
        from repro.runtime import RunContext, ScanCampaignConfig
        from repro.runtime.sharding import merge_scan_rows, scan_shards
        from repro.scanner.io import dump_dataset
        import io

        campaign = ScanCampaignConfig(
            world=WorldConfig(n_responders=12, certs_per_responder=1,
                              seed=7),
            interval=12 * 3600, start=1518048000,
            end=1518048000 + 2 * 86400, target_chunks=4)
        specs = scan_shards(campaign)
        serial = merge_scan_rows(
            campaign, ShardExecutor(cache=ArtifactCache(enabled=False))
            .run(specs)[0])

        chaotic = list(specs)
        chaotic[1] = chaos_wrap(specs[1], "crash", 1,
                                str(tmp_path / "scratch"))
        executor = SupervisedExecutor(
            workers=4, cache=ArtifactCache(root=str(tmp_path / "cache")))
        merged = merge_scan_rows(campaign, executor.run(chaotic)[0])

        def dump(dataset):
            stream = io.StringIO()
            dump_dataset(dataset, stream)
            return stream.getvalue()

        assert dump(merged) == dump(serial)


class TestCacheCLI:
    def test_stats_verify_gc_commands(self, tmp_path, capsys):
        from repro.cli import main
        cache_dir = str(tmp_path / "c")
        assert main(["run", "tbl2", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out

        assert main(["cache", "verify", "--cache-dir", cache_dir]) == 0
        assert "1 ok, 0 corrupt" in capsys.readouterr().out

        # Corrupt the lone entry; verify flags it and exits nonzero.
        cache = ArtifactCache(root=cache_dir)
        (key, path), = cache.entries()
        with open(path, "a") as stream:
            stream.write("trailing garbage\n")
        assert main(["cache", "verify", "--cache-dir", cache_dir]) == 1
        assert key in capsys.readouterr().out

        assert main(["cache", "gc", "--cache-dir", cache_dir]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_run_supervise_flag(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["run", "tbl2", "--supervise",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "manifest: 0 cached, 1 computed" in out
