"""Engine, registry, provenance, and output-format tests for repro.lint."""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.asn1 import Reader
from repro.lint import (
    KIND_CERTIFICATE,
    KIND_CRL,
    KIND_OCSP,
    KINDS,
    RULES,
    LintContext,
    LintEngine,
    LintReport,
    Severity,
    Span,
    catalogue,
    render_catalogue,
    render_json,
    render_report,
    render_sarif,
    report_to_json,
    report_to_sarif,
    rules_for,
    sniff_kind,
)
from repro.lint.provenance import WHOLE, certificate_spans, crl_spans, ocsp_spans
from repro.ocsp import CertID, OCSPRequest
from repro.simnet import MEASUREMENT_START
from repro.x509.pem import CERTIFICATE_LABEL, CRL_LABEL, encode_pem

NOW = MEASUREMENT_START


@pytest.fixture(scope="module")
def engine():
    return LintEngine(LintContext(reference_time=NOW))


@pytest.fixture(scope="module")
def chain_report(engine, ca, leaf):
    bundle = (encode_pem(ca.certificate.der, CERTIFICATE_LABEL)
              + encode_pem(leaf.der, CERTIFICATE_LABEL))
    return engine.lint_blob(bundle.encode("ascii"), "chain.pem")


@pytest.fixture(scope="module")
def ocsp_der(ca, responder, cert_id):
    request = OCSPRequest.for_single(cert_id).encode()
    return responder.handle(request, NOW).body


class TestRegistry:
    def test_at_least_fifteen_rules(self):
        assert len(RULES) >= 15

    def test_rule_ids_are_stable_identifiers(self):
        for rule_id in RULES:
            assert re.fullmatch(r"[A-Z][A-Z0-9_]+", rule_id), rule_id

    def test_every_rule_is_documented(self):
        for rule in RULES.values():
            assert rule.kind in KINDS
            assert rule.reference, rule.rule_id
            assert rule.summary, rule.rule_id
            assert rule.severity in (Severity.INFO, Severity.WARN,
                                     Severity.ERROR)

    def test_every_kind_has_rules(self):
        for kind in (KIND_CERTIFICATE, KIND_OCSP, KIND_CRL):
            assert len(rules_for(kind)) >= 5, kind

    def test_catalogue_is_sorted_and_complete(self):
        ids = [rule.rule_id for rule in catalogue()]
        assert ids == sorted(ids)
        assert set(ids) == set(RULES)

    def test_render_catalogue_lists_every_rule(self):
        text = render_catalogue()
        for rule_id in RULES:
            assert rule_id in text

    def test_design_doc_catalogue_is_in_sync(self):
        design = (Path(__file__).resolve().parents[1] / "DESIGN.md").read_text()
        for rule in RULES.values():
            assert f"`{rule.rule_id}`" in design, \
                f"{rule.rule_id} missing from the DESIGN.md catalogue"
            assert rule.reference in design, \
                f"{rule.rule_id}: reference {rule.reference!r} not in DESIGN.md"


class TestProvenance:
    def test_certificate_spans(self, leaf):
        spans = certificate_spans(leaf.der)
        assert spans[WHOLE] == Span(0, len(leaf.der))
        # spans start at the field's tag byte
        assert leaf.der[spans["tbsCertificate"].offset] == 0x30
        assert leaf.der[spans["serialNumber"].offset] == 0x02
        serial_span = spans["serialNumber"]
        reader = Reader(leaf.der, serial_span.offset, serial_span.end)
        assert reader.read_integer() == leaf.serial_number
        # every extension gets a dotted-OID keyed span
        for extension in leaf.extensions:
            assert f"extension:{extension.extn_id.dotted}" in spans

    def test_certificate_spans_nested_in_tbs(self, leaf):
        spans = certificate_spans(leaf.der)
        tbs = spans["tbsCertificate"]
        for name in ("serialNumber", "validity", "subjectPublicKeyInfo"):
            assert tbs.offset <= spans[name].offset
            assert spans[name].end <= tbs.end

    def test_ocsp_spans(self, ocsp_der):
        spans = ocsp_spans(ocsp_der)
        for name in ("responseStatus", "tbsResponseData", "producedAt",
                     "responses", "singleResponse[0]", "certID[0]",
                     "basicSignature"):
            assert name in spans, name
            assert 0 <= spans[name].offset < spans[name].end <= len(ocsp_der)

    def test_crl_spans(self, ca):
        crl = ca.build_crl(NOW)
        spans = crl_spans(crl.der)
        for name in ("tbsCertList", "thisUpdate", "nextUpdate",
                     "signatureValue"):
            assert name in spans, name

    def test_spans_survive_truncation(self, leaf):
        spans = certificate_spans(leaf.der[:30])
        assert spans[WHOLE] == Span(0, 30)  # forgiving: partial map


class TestSniffAndBlob:
    def test_sniff_certificate(self, leaf):
        assert sniff_kind(leaf.der) == KIND_CERTIFICATE

    def test_sniff_crl(self, ca):
        assert sniff_kind(ca.build_crl(NOW).der) == KIND_CRL

    def test_sniff_ocsp(self, ocsp_der):
        assert sniff_kind(ocsp_der) == KIND_OCSP

    def test_sniff_garbage(self):
        assert sniff_kind(b"\x00\x01\x02") is None

    def test_pem_bundle_sources_are_indexed(self, chain_report):
        assert chain_report.artifacts == 2
        sources = {finding.source for finding in chain_report.findings}
        assert sources <= {"chain.pem#0", "chain.pem#1"}

    def test_mixed_pem_bundle(self, engine, ca, leaf):
        bundle = (encode_pem(leaf.der, CERTIFICATE_LABEL)
                  + encode_pem(ca.build_crl(NOW).der, CRL_LABEL))
        report = engine.lint_blob(bundle.encode("ascii"), "mixed.pem")
        assert report.artifacts == 2

    def test_raw_der_blob(self, engine, leaf):
        report = engine.lint_blob(leaf.der, "leaf.der")
        assert report.artifacts == 1

    def test_minted_chain_has_no_errors(self, chain_report):
        assert chain_report.clean
        assert chain_report.errors == []


class TestReport:
    def test_sorted_by_source_then_offset(self, chain_report):
        keys = [(f.source, f.span.offset if f.span else -1, f.rule_id,
                 f.message) for f in chain_report.findings]
        assert keys == sorted(keys)

    def test_by_severity_and_rule(self, chain_report):
        by_severity = chain_report.by_severity()
        assert sum(by_severity.values()) == len(chain_report.findings)
        by_rule = chain_report.by_rule()
        assert sum(by_rule.values()) == len(chain_report.findings)

    def test_render_mentions_every_finding(self, chain_report):
        text = chain_report.render()
        for finding in chain_report.findings:
            assert finding.rule_id in text


class TestJSONOutput:
    def test_shape(self, chain_report):
        document = report_to_json(chain_report)
        assert document["schema"] == "repro-lint/1"
        assert document["referenceTime"] == NOW
        assert document["artifacts"] == 2
        assert document["summary"]["clean"] is True
        assert len(document["findings"]) == len(chain_report.findings)
        for entry in document["findings"]:
            assert entry["rule"] in RULES
            assert entry["severity"] in ("info", "warn", "error")

    def test_byte_determinism(self, chain_report):
        first = render_json(chain_report)
        second = render_json(chain_report)
        assert first == second
        assert json.loads(first)  # valid JSON

    def test_fresh_runs_are_identical(self, engine, leaf):
        runs = [render_json(engine.lint_blob(leaf.der, "leaf.der"))
                for _ in range(2)]
        assert runs[0] == runs[1]


class TestSARIFOutput:
    def test_shape(self, chain_report):
        document = report_to_sarif(chain_report)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        # the FULL catalogue ships with every report: stable ruleIndex
        assert len(driver["rules"]) == len(RULES)
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert len(run["results"]) == len(chain_report.findings)

    def test_rule_index_is_consistent(self, chain_report):
        document = report_to_sarif(chain_report)
        run = document["runs"][0]
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        for result in run["results"]:
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]

    def test_results_carry_byte_regions(self, chain_report):
        document = report_to_sarif(chain_report)
        for result in document["runs"][0]["results"]:
            location = result["locations"][0]["physicalLocation"]
            region = location["region"]
            assert region["byteOffset"] >= 0
            assert region["byteLength"] >= 1

    def test_byte_determinism(self, chain_report):
        assert render_sarif(chain_report) == render_sarif(chain_report)


class TestRenderReport:
    def test_dispatch(self, chain_report):
        assert render_report(chain_report, "json") == render_json(chain_report)
        assert render_report(chain_report, "sarif") == render_sarif(chain_report)
        assert render_report(chain_report, "text").rstrip("\n") == \
            chain_report.render().rstrip("\n")

    def test_unknown_format_rejected(self, chain_report):
        with pytest.raises(ValueError):
            render_report(chain_report, "xml")
