"""Tests for repro.faults: injectors, scenarios, the FaultyNetwork
wrapper, resilient client policies, and the chaos experiments.

The two acceptance properties from the subsystem's design:

* the empty FaultPlan is a byte-identical passthrough — the baseline
  chaos scenario reproduces the Figure 3/4 numbers exactly;
* the chaos experiments merge byte-identically at any ``workers``
  count through the runtime cache.
"""

from __future__ import annotations

import io

import pytest

from repro.ca import CertificateAuthority, OCSPResponder, ResponderProfile
from repro.crypto import generate_keypair
from repro.datasets import MeasurementWorld, WorldConfig
from repro.faults import (
    Blackout,
    BodyTamper,
    DnsFlap,
    ErrorBurst,
    FaultPlan,
    FaultyNetwork,
    LatencySpike,
    RequestDrop,
    StaleServe,
    client_policy,
    for_browser,
    injector_from_dict,
    scenario,
    scenario_names,
    unit_draw,
)
from repro.faults.policy import MUST_STAPLE_HARD_FAIL, NO_CHECK
from repro.ocsp import CertStatus, OCSPClient, OCSPError, verify_response
from repro.runtime import (
    ChaosAvailabilityConfig,
    ChaosClientConfig,
    ScanCampaignConfig,
    run_experiment,
)
from repro.scanner.alexa_scan import AlexaAvailability
from repro.scanner.hourly import HourlyScanner
from repro.scanner.io import dump_dataset
from repro.simnet import (
    DAY,
    DNS_RTT_MS,
    HOUR,
    MEASUREMENT_START,
    FailureKind,
    Network,
    OutageWindow,
    ocsp_post,
    ocsp_service,
)
from repro.x509 import CertificateBuilder, Name

NOW = MEASUREMENT_START

SMALL_WORLD = WorldConfig(n_responders=12, certs_per_responder=1, seed=7)


def make_rig(seed=70, *, ocsp_urls=None, crl_service=False):
    """A CA + leaf + responder + network; optionally the leaf carries
    extra OCSP URLs and the CRL distribution point gets bound."""
    host = f"ocsp.faults{seed}.test"
    ca = CertificateAuthority.create_root(
        f"Faults CA {seed}", f"http://{host}",
        crl_url=(f"http://crl.faults{seed}.test/crl.der"
                 if crl_service else None),
        not_before=NOW - 365 * DAY)
    key = generate_keypair(512, rng=seed)
    if ocsp_urls is None:
        leaf = ca.issue_leaf("faults.example", key, not_before=NOW - DAY)
    else:
        builder = (
            CertificateBuilder()
            .serial_number(ca.allocate_serial())
            .issuer(ca.certificate.subject)
            .subject(Name.build("faults.example"))
            .public_key(key.public_key)
            .validity(NOW - DAY, NOW + 89 * DAY)
            .leaf()
            .dns_names(["faults.example"])
            .server_auth()
            .ocsp_url(*ocsp_urls)
        )
        if ca.crl_url:
            builder.crl_url(ca.crl_url)
        leaf = builder.sign(ca.key)
    responder = OCSPResponder(
        ca, ca.ocsp_url,
        ResponderProfile(update_interval=None, this_update_margin=HOUR,
                         validity_period=DAY),
        epoch_start=NOW - 7 * DAY)
    network = Network()
    origin = network.add_origin(f"faults-{seed}", "us-east", ocsp_service(responder))
    network.bind(host, origin)
    if crl_service:
        def handle_crl(request, now):
            from repro.simnet import HTTPResponse
            epoch = now - now % DAY
            return HTTPResponse(status_code=200,
                                body=ca.build_crl(epoch).der)
        crl_host = ca.crl_url.split("/")[2]
        network.bind(crl_host,
                     network.add_origin(f"crl-{seed}", "us-east", handle_crl))
    return ca, leaf, network, origin


def _fetch(network, vantage, url, body=b"x", now=NOW):
    return network.fetch(vantage, ocsp_post(url, body), now)


class TestInjectors:
    def test_unit_draw_deterministic_and_uniformish(self):
        draws = [unit_draw(5, "a", i) for i in range(200)]
        assert draws == [unit_draw(5, "a", i) for i in range(200)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.3 < sum(draws) / len(draws) < 0.7
        assert unit_draw(5, "a", 0) != unit_draw(6, "a", 0)

    def test_window_and_scope_matching(self):
        injector = Blackout(hosts=("ocsp.x.test",), vantages=("Paris",),
                            start=NOW, end=NOW + HOUR)
        assert injector.matches("ocsp.x.test", "Paris", NOW)
        assert not injector.matches("ocsp.x.test", "Paris", NOW + HOUR)
        assert not injector.matches("ocsp.x.test", "Seoul", NOW)
        assert not injector.matches("other.test", "Paris", NOW)

    def test_host_prefix_matching(self):
        injector = Blackout(host_prefixes=("ocsp",))
        assert injector.matches("ocsp3.comodo.test", "Paris", NOW)
        assert not injector.matches("crl3.comodo.test", "Paris", NOW)

    def test_round_trip_preserves_every_field(self):
        injectors = [
            Blackout(hosts=("a.test",), start=NOW, end=NOW + HOUR),
            LatencySpike(vantages=("Sydney",), added_ms=10.0, tail_ms=5.0),
            RequestDrop(rate=0.25, failure="DNS"),
            ErrorBurst(status_code=502, period=3 * HOUR, duty=HOUR),
            DnsFlap(period=2 * HOUR, duty=HOUR),
            StaleServe(age=3 * DAY),
            BodyTamper(mode="truncated", rate=0.5),
        ]
        for injector in injectors:
            data = injector.to_dict()
            rebuilt = injector_from_dict(data)
            assert rebuilt == injector
            assert rebuilt.to_dict() == data


class TestFaultPlan:
    def test_digest_stable_across_round_trip(self):
        for name in scenario_names():
            plan = scenario(name, seed=23)
            rebuilt = FaultPlan.from_dict(plan.to_dict())
            assert rebuilt.plan_digest() == plan.plan_digest()

    def test_distinct_scenarios_have_distinct_digests(self):
        digests = {scenario(name).plan_digest() for name in scenario_names()}
        assert len(digests) == len(scenario_names())

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            scenario("no-such-scenario")


class TestFaultyNetworkPassthrough:
    def test_empty_plan_returns_inner_result_object(self):
        ca, leaf, network, _ = make_rig(seed=71)
        faulty = FaultyNetwork(network)
        direct = _fetch(network, "Paris", ca.ocsp_url)
        wrapped = _fetch(faulty, "Paris", ca.ocsp_url)
        assert wrapped == direct

    def test_delegates_topology_methods(self):
        _, _, network, _ = make_rig(seed=72)
        faulty = FaultyNetwork(network)
        assert faulty.hostnames() == network.hostnames()


class TestFaultyNetworkBehaviors:
    def test_blackout_fails_tcp_inside_window_only(self):
        ca, leaf, network, _ = make_rig(seed=73)
        plan = FaultPlan("t", (Blackout(start=NOW, end=NOW + HOUR),))
        faulty = FaultyNetwork(network, plan)
        assert _fetch(faulty, "Paris", ca.ocsp_url).failure is FailureKind.TCP
        assert _fetch(faulty, "Paris", ca.ocsp_url, now=NOW + HOUR).ok

    def test_error_burst_yields_http_status(self):
        ca, leaf, network, _ = make_rig(seed=74)
        plan = FaultPlan("t", (ErrorBurst(status_code=502, period=4 * HOUR,
                                          duty=HOUR, phase=NOW),))
        faulty = FaultyNetwork(network, plan)
        inside = _fetch(faulty, "Paris", ca.ocsp_url, now=NOW)
        assert inside.failure is FailureKind.HTTP
        assert inside.status_code == 502
        assert _fetch(faulty, "Paris", ca.ocsp_url, now=NOW + 2 * HOUR).ok

    def test_dns_failure_bills_only_the_resolver_rtt(self):
        ca, leaf, network, _ = make_rig(seed=75)
        plan = FaultPlan("t", (RequestDrop(rate=1.0, failure="DNS"),))
        faulty = FaultyNetwork(network, plan)
        result = _fetch(faulty, "Paris", ca.ocsp_url)
        assert result.failure is FailureKind.DNS
        assert result.elapsed_ms == DNS_RTT_MS

    def test_latency_spike_inflates_elapsed_only(self):
        ca, leaf, network, _ = make_rig(seed=76)
        plan = FaultPlan("t", (LatencySpike(added_ms=250.0),))
        faulty = FaultyNetwork(network, plan)
        plain = _fetch(network, "Paris", ca.ocsp_url)
        spiked = _fetch(faulty, "Paris", ca.ocsp_url)
        assert spiked.ok
        assert spiked.elapsed_ms == pytest.approx(plain.elapsed_ms + 250.0)
        assert spiked.response.body == plain.response.body

    def test_request_drop_is_seeded_and_partial(self):
        ca, leaf, network, _ = make_rig(seed=77)
        plan = FaultPlan("t", (RequestDrop(rate=0.5),), seed=9)
        faulty = FaultyNetwork(network, plan)
        outcomes = [_fetch(faulty, "Paris", ca.ocsp_url, now=NOW + i).ok
                    for i in range(40)]
        assert outcomes == [_fetch(faulty, "Paris", ca.ocsp_url,
                                   now=NOW + i).ok for i in range(40)]
        assert any(outcomes) and not all(outcomes)

    def test_stale_serve_breaks_verification_not_transport(self):
        from repro.ocsp import CertID, OCSPRequest
        ca, leaf, network, _ = make_rig(seed=78)
        cert_id = CertID.for_certificate(leaf, ca.certificate)
        request_der = OCSPRequest.for_single(cert_id).encode()
        plan = FaultPlan("t", (StaleServe(age=5 * DAY),))
        faulty = FaultyNetwork(network, plan)
        later = NOW + 6 * DAY  # responder history reaches back past age
        result = _fetch(faulty, "Paris", ca.ocsp_url, body=request_der,
                        now=later)
        assert result.ok  # transport unaffected
        check = verify_response(result.response.body, cert_id,
                                ca.certificate, later)
        assert not check.ok and check.error is OCSPError.EXPIRED

    def test_tampered_bodies_fail_verification(self):
        from repro.ocsp import CertID, OCSPRequest
        ca, leaf, network, _ = make_rig(seed=79)
        cert_id = CertID.for_certificate(leaf, ca.certificate)
        request_der = OCSPRequest.for_single(cert_id).encode()
        expected = {"malformed": OCSPError.MALFORMED,
                    "truncated": OCSPError.MALFORMED,
                    "unauthorized": OCSPError.ERROR_STATUS,
                    "try_later": OCSPError.ERROR_STATUS}
        for mode, error in expected.items():
            plan = FaultPlan("t", (BodyTamper(mode=mode),))
            faulty = FaultyNetwork(network, plan)
            result = _fetch(faulty, "Paris", ca.ocsp_url, body=request_der)
            assert result.ok, mode
            check = verify_response(result.response.body, cert_id,
                                    ca.certificate, NOW)
            assert not check.ok and check.error is error, mode

    def test_extra_bindings_win_without_touching_inner(self):
        from repro.simnet import HTTPRequest, HTTPResponse
        ca, leaf, network, _ = make_rig(seed=80)
        extra = Network()
        extra.bind("side.test", extra.add_origin(
            "side", "us-east",
            lambda request, now: HTTPResponse(status_code=200, body=b"side")))
        faulty = FaultyNetwork(network, extra=extra)
        side = faulty.fetch("Paris", HTTPRequest(method="GET",
                                                 url="http://side.test/"), NOW)
        assert side.ok and side.response.body == b"side"
        assert network.get_binding("side.test") is None
        assert _fetch(faulty, "Paris", ca.ocsp_url).ok


class TestClientPolicies:
    def test_backoff_schedule_is_cumulative(self):
        policy = client_policy("must-staple-hard-fail")
        assert policy.backoff_schedule(3) == [0, policy.backoff_s,
                                              policy.backoff_s * 3]

    def test_policy_round_trip(self):
        for name in ("default", "firefox-soft-fail", "must-staple-hard-fail",
                     "no-check"):
            policy = client_policy(name)
            assert type(policy).from_dict(policy.to_dict()) == policy

    def test_for_browser_mapping(self):
        from repro.browser import BrowserPolicy, by_label
        policies = by_label()
        firefox = for_browser(policies["Firefox 60 (Linux)"])
        assert firefox.name == "must-staple-hard-fail"
        chrome = for_browser(policies["Chrome 66 (Linux)"])
        assert chrome.name == "no-check"
        fetcher = for_browser(BrowserPolicy("Hypothetical", "Linux",
                                            fallback_own_ocsp=True))
        assert fetcher.name == "firefox-soft-fail"


class TestClientFailover:
    def test_failover_tries_every_advertised_url(self):
        ca, leaf, network, _ = make_rig(
            seed=81, ocsp_urls=("http://dead.faults81.test",
                                "http://ocsp.faults81.test"))
        assert len(leaf.ocsp_urls) == 2
        client = OCSPClient(network)
        result = client.check(leaf, ca.certificate, NOW)
        assert result.ok and result.status is CertStatus.GOOD
        assert len(result.attempts) == 2
        assert result.attempts[0].failure is FailureKind.DNS
        assert result.attempts[1].ok
        assert result.total_elapsed_ms == pytest.approx(
            sum(fetch.elapsed_ms for fetch in result.attempts))

    def test_no_failover_policy_stops_at_first_url(self):
        from repro.faults import ClientPolicy
        ca, leaf, network, _ = make_rig(
            seed=82, ocsp_urls=("http://dead.faults82.test",
                                "http://ocsp.faults82.test"))
        client = OCSPClient(network, policy=ClientPolicy("one", failover=False))
        result = client.check(leaf, ca.certificate, NOW)
        assert not result.ok
        assert len(result.attempts) == 1

    def test_retries_advance_the_clock_past_an_outage(self):
        ca, leaf, network, origin = make_rig(seed=83)
        origin.add_outage(OutageWindow(NOW - 1, NOW + 1))
        client = OCSPClient(network, policy=MUST_STAPLE_HARD_FAIL)
        result = client.check(leaf, ca.certificate, NOW)
        # Round 1 hits the outage; the backoff round, two (simulated)
        # seconds later, lands after it and succeeds.
        assert result.ok
        assert len(result.attempts) == 2

    def test_attempt_timeout_counts_and_fails(self):
        from repro.faults import ClientPolicy
        ca, leaf, network, _ = make_rig(seed=84)
        policy = ClientPolicy("tiny", attempt_timeout_ms=1.0)
        client = OCSPClient(network, policy=policy)
        result = client.check(leaf, ca.certificate, NOW)
        assert not result.ok
        assert result.timeouts == len(result.attempts) > 0

    def test_no_check_policy_skips_everything(self):
        ca, leaf, network, _ = make_rig(seed=85)
        client = OCSPClient(network, policy=NO_CHECK)
        result = client.check(leaf, ca.certificate, NOW)
        assert result.skipped and not result.ok
        assert client.requests_sent == 0

    def test_post_hits_advertised_url_verbatim(self):
        """Regression: the client must not append a trailing slash."""
        from repro.simnet import HTTPResponse
        seen = []
        inner_ca, inner_leaf, inner_network, _ = make_rig(seed=86)

        def echo(request, now):
            seen.append(request.url)
            return inner_network.fetch("Paris", ocsp_post(
                inner_ca.ocsp_url, request.body), now).response

        url = "http://alias.faults86.test/ocsp/endpoint"
        network = Network()
        network.bind("alias.faults86.test",
                     network.add_origin("alias-86", "us-east", echo))
        client = OCSPClient(network)
        result = client.check(inner_leaf, inner_ca.certificate, NOW, url=url)
        assert result.ok
        assert seen == [url]

    def test_scanner_post_url_verbatim(self):
        """Regression: HourlyScanner/AlexaAvailability probe site.url
        exactly as advertised (no appended '/')."""
        world = MeasurementWorld(SMALL_WORLD)
        seen = []
        original_fetch = world.network.fetch

        class Spy:
            def fetch(self, vantage, request, now):
                seen.append(request.url)
                return original_fetch(vantage, request, now)

        scanner = HourlyScanner(world, network=Spy())
        target = world.scan_targets()[0]
        scanner.probe(target, "Paris", NOW + HOUR)
        assert seen == [target.site.url]
        seen.clear()
        availability = AlexaAvailability(world, network=Spy())
        availability.site_reachable(world.sites[0], "Paris", NOW + HOUR)
        assert seen == [world.sites[0].url]


class TestCRLFallback:
    def test_crl_rescues_good_and_revoked(self):
        ca, leaf, network, origin = make_rig(seed=87, crl_service=True)
        origin.add_outage(OutageWindow(NOW - 1, NOW + 2 * DAY))
        client = OCSPClient(network, policy=MUST_STAPLE_HARD_FAIL)
        result = client.check(leaf, ca.certificate, NOW)
        assert result.ok and result.via_crl
        assert result.status is CertStatus.GOOD
        assert result.crl_status is CertStatus.GOOD

        ca.revoke(leaf, NOW - 2 * DAY, reason=1)
        revoked = client.check(leaf, ca.certificate, NOW + DAY + HOUR)
        assert revoked.ok and revoked.via_crl
        assert revoked.status is CertStatus.REVOKED

    def test_without_fallback_the_outage_is_fatal(self):
        from repro.faults import FIREFOX_SOFT_FAIL
        ca, leaf, network, origin = make_rig(seed=88, crl_service=True)
        origin.add_outage(OutageWindow(NOW - 1, NOW + DAY))
        client = OCSPClient(network, policy=FIREFOX_SOFT_FAIL)
        result = client.check(leaf, ca.certificate, NOW)
        assert not result.ok and not result.via_crl


def _dump(dataset) -> str:
    stream = io.StringIO()
    dump_dataset(dataset, stream)
    return stream.getvalue()


CHAOS_CAMPAIGN = ScanCampaignConfig(
    world=SMALL_WORLD, interval=12 * HOUR,
    start=MEASUREMENT_START, end=MEASUREMENT_START + DAY,
    target_chunks=2)


class TestBaselineByteIdentity:
    def test_empty_plan_scan_is_byte_identical(self):
        world = MeasurementWorld(SMALL_WORLD)
        plain = HourlyScanner(world, interval=12 * HOUR).run(
            NOW, NOW + DAY)
        wrapped = HourlyScanner(
            world, interval=12 * HOUR,
            network=FaultyNetwork(world.network)).run(NOW, NOW + DAY)
        assert wrapped.content_digest() == plain.content_digest()
        assert _dump(wrapped) == _dump(plain)

    def test_empty_plan_fig4_series_identical(self):
        world = MeasurementWorld(SMALL_WORLD)
        times = [NOW, NOW + 12 * HOUR]
        plain = AlexaAvailability(world).series(times)
        wrapped = AlexaAvailability(
            world, network=FaultyNetwork(world.network)).series(times)
        assert wrapped == plain

    def test_chaos_baseline_reproduces_fig3_dataset(self):
        fig3 = run_experiment("fig3", config=CHAOS_CAMPAIGN, cache=False)
        chaos = run_experiment(
            "chaos-availability",
            config=ChaosAvailabilityConfig(campaign=CHAOS_CAMPAIGN,
                                           scenarios=("baseline",)),
            cache=False)
        assert (_dump(chaos.artifacts["datasets"]["baseline"])
                == _dump(fig3.artifacts["dataset"]))
        assert chaos.summary["scenarios"]["baseline"][
            "overall_failure_rate"] == fig3.summary["overall_failure_rate"]


class TestChaosWorkerIndependence:
    def test_chaos_availability_bytes_equal_at_any_worker_count(self, tmp_path):
        config = ChaosAvailabilityConfig(
            campaign=CHAOS_CAMPAIGN,
            scenarios=("baseline", "regional-blackout"))
        serial = run_experiment("chaos-availability", config=config,
                                workers=1, cache_dir=tmp_path / "serial")
        parallel = run_experiment("chaos-availability", config=config,
                                  workers=3, cache_dir=tmp_path / "parallel")
        assert serial.rows == parallel.rows
        assert serial.series == parallel.series
        assert serial.summary == parallel.summary
        for name in config.scenarios:
            assert (_dump(serial.artifacts["datasets"][name])
                    == _dump(parallel.artifacts["datasets"][name]))

    def test_chaos_clients_bytes_equal_at_any_worker_count(self, tmp_path):
        config = ChaosClientConfig(
            world=SMALL_WORLD,
            scenarios=("baseline", "regional-blackout"),
            policies=("firefox-soft-fail", "must-staple-hard-fail"),
            times=(NOW + HOUR,), vantages=("Paris", "Seoul"))
        serial = run_experiment("chaos-client-outcomes", config=config,
                                workers=1, cache_dir=tmp_path / "serial")
        parallel = run_experiment("chaos-client-outcomes", config=config,
                                  workers=4, cache_dir=tmp_path / "parallel")
        assert serial.rows == parallel.rows
        assert serial.summary == parallel.summary

    def test_warm_cache_executes_zero_shards(self, tmp_path):
        config = ChaosAvailabilityConfig(campaign=CHAOS_CAMPAIGN,
                                         scenarios=("baseline",))
        cold = run_experiment("chaos-availability", config=config,
                              workers=2, cache_dir=tmp_path)
        warm = run_experiment("chaos-availability", config=config,
                              workers=1, cache_dir=tmp_path)
        assert cold.provenance.executed_shards > 0
        assert warm.provenance.executed_shards == 0
        assert warm.rows == cold.rows


class TestChaosClientOutcomes:
    def test_grid_semantics(self):
        config = ChaosClientConfig(
            world=SMALL_WORLD,
            scenarios=("baseline", "packet-loss"),
            policies=("firefox-soft-fail", "must-staple-hard-fail",
                      "no-check"),
            times=(NOW + HOUR,), vantages=("Paris", "Sydney"))
        result = run_experiment("chaos-client-outcomes", config=config,
                                cache=False)
        grid = result.summary["grid"]
        for name in config.scenarios:
            # Soft-fail and no-check clients always proceed.
            assert grid[f"{name}/firefox-soft-fail"]["broken_fraction"] == 0.0
            assert grid[f"{name}/no-check"]["proceed_fraction"] == 1.0
            assert grid[f"{name}/no-check"]["no_check_fraction"] == 1.0
            assert grid[f"{name}/no-check"]["mean_attempts"] == 0.0
        assert grid["baseline/must-staple-hard-fail"]["broken_fraction"] == 0.0
        # Packet loss hits CRL transport too, so some hard-fail
        # connections actually break.
        assert result.summary["hard_fail_broken"]["packet-loss"] > 0.0


class TestBrowserFallbackClient:
    def test_connect_uses_resilient_client_for_fallback(self):
        from repro.browser import BrowserPolicy, Verdict, connect
        from repro.webserver import IdealServer
        from repro.x509 import TrustStore
        ca, leaf, network, origin = make_rig(seed=89, crl_service=True)
        origin.add_outage(OutageWindow(NOW - 1, NOW + DAY))
        # The responder is dark, so the server cannot obtain a staple
        # and the browser must fall back to its own fetch.
        server = IdealServer(chain=[leaf, ca.certificate],
                             issuer=ca.certificate, network=network)
        browser = BrowserPolicy("Fallback FF", "Linux",
                                fallback_own_ocsp=True)
        trust = TrustStore([ca.certificate])

        # Plain fallback: responder dark, no staple -> soft fail.
        bare = connect(browser, server, "faults.example", trust, NOW,
                       network=network)
        assert bare.verdict is Verdict.ACCEPTED_SOFT_FAIL

        # Resilient client with CRL fallback: verified GOOD -> accepted.
        client = OCSPClient(network, policy=MUST_STAPLE_HARD_FAIL)
        resilient = connect(browser, server, "faults.example", trust, NOW,
                            ocsp_client=client)
        assert resilient.verdict is Verdict.ACCEPTED
        assert resilient.own_ocsp_request_sent
