"""Tests for the TCP socket shard transport (repro.runtime.sock) and
its deterministic network-fault chaos (repro.runtime.netchaos).

Four layers, in increasing realism:

* the pure frame codec — round trips, byte-at-a-time reassembly, and
  the typed protocol errors (junk, torn, oversized) that make a
  hostile byte stream a *connection* problem, never a campaign
  problem;
* the pure chaos engine — seeded injector decisions and the
  mangle-step state machine, reproducible to the frame;
* the coordinator's protocol state machine driven by hand-crafted
  peer sockets: claims rebinding across reconnects, duplicate results
  merging to one outcome, junk costing exactly one connection, and
  expired leases classifying as crash vs hang;
* end-to-end campaigns — the acceptance contract: serial == pipe ==
  job queue == socket, byte-identical, including fleets behind a
  resetting/reordering/truncating chaos proxy and a SIGKILLed real
  ``repro worker --connect`` subprocess.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.datasets import CorpusConfig
from repro.runtime import (
    ArtifactCache,
    CorpusRunConfig,
    FrameBuffer,
    ShardExecutor,
    SocketTransport,
    SocketWorker,
    SupervisedExecutor,
    connect_backoff,
    parse_address,
    run_experiment,
    spawn_socket_workers,
)
from repro.runtime.chaos import chaos_wrap
from repro.runtime.dist import classify_expiry, join_workers
from repro.runtime.netchaos import (
    PASS,
    ChaosPlan,
    ChaosProxy,
    FrameDelay,
    FrameDrop,
    FrameDuplicate,
    FrameTruncate,
    Partition,
    flush_held,
    mangle_step,
    mangle_stream,
    netchaos_plan,
    netchaos_plan_names,
)
from repro.runtime.sharding import corpus_shards
from repro.runtime.sock import (
    JunkFrameError,
    OversizedFrameError,
    TruncatedFrameError,
    decode_payload,
    encode_frame,
    frame_digest,
)

#: Small but multi-shard: 6 shards of 8 corpus records each.
CORPUS_CONFIG = CorpusRunConfig(corpus=CorpusConfig(size=48, seed=11),
                                shards=6)

#: Fast-turnaround tuning for in-process protocol tests.
LEASE_S = 0.25
POLL_S = 0.02


def plain_specs():
    return corpus_shards(CORPUS_CONFIG)


def output_bytes(outputs) -> str:
    return json.dumps(outputs, sort_keys=True)


@pytest.fixture
def baseline():
    executor = ShardExecutor(workers=1, cache=ArtifactCache(enabled=False))
    outputs, _records = executor.run(plain_specs())
    return output_bytes(outputs)


def make_transport(**kwargs):
    kwargs.setdefault("lease_s", LEASE_S)
    kwargs.setdefault("poll_s", POLL_S)
    kwargs.setdefault("reclaim_grace_s", LEASE_S)
    return SocketTransport("127.0.0.1", 0, **kwargs)


# ---------------------------------------------------------------------------
# pure frame codec
# ---------------------------------------------------------------------------

class TestFrameCodec:
    def test_round_trip_every_kind(self):
        for kind in ("HELLO", "JOB", "HEARTBEAT", "RESULT", "RETRACT"):
            body = {"kind": kind, "n": 7}
            wire = encode_frame(kind, body)
            assert int.from_bytes(wire[:4], "big") == len(wire) - 4
            assert decode_payload(wire[4:]) == (kind, body)

    def test_encode_rejects_unknown_kind(self):
        with pytest.raises(JunkFrameError):
            encode_frame("GOSSIP", {})

    def test_decode_rejects_junk(self):
        with pytest.raises(JunkFrameError):
            decode_payload(b"\xff\xfenot json")
        with pytest.raises(JunkFrameError):
            decode_payload(b"[1, 2]")
        bad_kind = json.dumps({"frame": "GOSSIP", "v": 1, "body": {},
                               "digest": frame_digest({})})
        with pytest.raises(JunkFrameError):
            decode_payload(bad_kind.encode())
        bad_digest = json.dumps({"frame": "HELLO", "v": 1,
                                 "body": {"worker": "w"},
                                 "digest": "0" * 16})
        with pytest.raises(JunkFrameError):
            decode_payload(bad_digest.encode())

    def test_digest_covers_the_body(self):
        wire = encode_frame("HEARTBEAT", {"worker": "w", "job": "j"})
        # Flip one byte inside the JSON body: the digest check trips.
        torn = bytearray(wire)
        torn[wire.index(b'"j"')] = ord("k")
        with pytest.raises(JunkFrameError):
            decode_payload(bytes(torn[4:]))

    def test_buffer_reassembles_byte_at_a_time(self):
        frames = [("HELLO", {"worker": "w", "claims": []}),
                  ("JOB", {"job": "00000001", "ticket": 1}),
                  ("RETRACT", {"job": "*", "stop": True})]
        wire = b"".join(encode_frame(kind, body)
                        for kind, body in frames)
        buffer = FrameBuffer()
        decoded = []
        for i in range(len(wire)):
            decoded.extend(buffer.feed(wire[i:i + 1]))
        assert decoded == frames
        assert buffer.pending_bytes == 0
        buffer.eof()  # clean end of stream

    def test_torn_stream_is_a_truncated_frame(self):
        wire = encode_frame("RESULT", {"job": "x", "rows": [1, 2, 3]})
        buffer = FrameBuffer()
        assert buffer.feed(wire[:len(wire) // 2]) == []
        assert buffer.pending_bytes > 0
        with pytest.raises(TruncatedFrameError):
            buffer.eof()

    def test_zero_and_oversized_prefixes_are_typed_errors(self):
        with pytest.raises(JunkFrameError):
            FrameBuffer().feed(b"\x00\x00\x00\x00")
        with pytest.raises(OversizedFrameError):
            FrameBuffer(max_frame=64).feed(b"\x00\x00\x01\x00")
        with pytest.raises(OversizedFrameError):
            FrameBuffer().feed(b"\xff\xff\xff\xff")


class TestDialHelpers:
    def test_backoff_schedule_is_capped_binary_exponential(self):
        schedule = [connect_backoff(attempt) for attempt in range(8)]
        assert schedule == [0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 2.0, 2.0]
        assert connect_backoff(100) == 2.0

    def test_parse_address(self):
        assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert parse_address("host.example:1") == ("host.example", 1)
        for bad in ("nohost", ":9000", "host:", "host:not-a-port"):
            with pytest.raises(ValueError):
                parse_address(bad)


# ---------------------------------------------------------------------------
# pure chaos engine
# ---------------------------------------------------------------------------

def heartbeat_frames(count: int):
    return [encode_frame("HEARTBEAT", {"worker": "w", "job": str(i)})
            for i in range(count)]


class TestNetchaosDecisions:
    def test_decisions_are_pure_in_their_coordinates(self):
        plan = netchaos_plan("hostile", seed=7)
        first = [plan.decide("c2s/0", i) for i in range(200)]
        again = [plan.decide("c2s/0", i) for i in range(200)]
        assert first == again
        other_stream = [plan.decide("c2s/1", i) for i in range(200)]
        assert first != other_stream  # reconnects re-roll their fates

    def test_seed_changes_the_fates(self):
        a = [netchaos_plan("drop", seed=1).decide("s", i)
             for i in range(200)]
        b = [netchaos_plan("drop", seed=2).decide("s", i)
             for i in range(200)]
        assert a != b

    def test_plan_digest_is_content_addressed(self):
        assert netchaos_plan("hostile", 7).plan_digest() == \
            netchaos_plan("hostile", 7).plan_digest()
        assert netchaos_plan("hostile", 7).plan_digest() != \
            netchaos_plan("hostile", 8).plan_digest()
        assert netchaos_plan("drop", 7).plan_digest() != \
            netchaos_plan("reset", 7).plan_digest()

    def test_catalogue_names_and_unknown_plan(self):
        for name in netchaos_plan_names():
            assert netchaos_plan(name).name == name
        with pytest.raises(KeyError):
            netchaos_plan("gremlins")

    def test_first_injector_with_an_opinion_wins(self):
        plan = ChaosPlan(name="x", seed=0,
                         injectors=(FrameDrop(rate=1.0),
                                    FrameDuplicate(rate=1.0)))
        assert plan.decide("s", 0).drop is True
        assert plan.decide("s", 0).duplicate is False


class TestMangleEngine:
    def test_passthrough_is_identity(self):
        frames = heartbeat_frames(20)
        actions = mangle_stream(netchaos_plan("passthrough"), "s", frames)
        assert actions == [("send", frame) for frame in frames]

    def test_mangle_stream_is_deterministic(self):
        frames = heartbeat_frames(120)
        plan = netchaos_plan("hostile", seed=11)
        assert mangle_stream(plan, "c2s/0", frames) == \
            mangle_stream(plan, "c2s/0", frames)

    def test_drop_eats_frames_without_resetting(self):
        frames = heartbeat_frames(200)
        actions = mangle_stream(netchaos_plan("drop", seed=3), "s", frames)
        sends = [data for verb, data in actions if verb == "send"]
        assert 0 < len(sends) < len(frames)
        assert all(verb == "send" for verb, _data in actions)
        assert set(sends) <= set(frames)

    def test_partition_window_black_holes_frames(self):
        frames = heartbeat_frames(16)
        plan = ChaosPlan(name="p", seed=0,
                         injectors=(Partition(start=4, length=6),))
        sends = [data for verb, data in
                 mangle_stream(plan, "s", frames) if verb == "send"]
        assert sends == frames[:4] + frames[10:]

    def test_duplicate_delivers_twice_in_place(self):
        frames = heartbeat_frames(3)
        plan = ChaosPlan(name="d", seed=0,
                         injectors=(FrameDuplicate(rate=1.0),))
        actions = mangle_stream(plan, "s", frames)
        assert actions == [("send", frames[0]), ("send", frames[0]),
                           ("send", frames[1]), ("send", frames[1]),
                           ("send", frames[2]), ("send", frames[2])]

    def test_reorder_holds_then_releases_everything(self):
        frames = heartbeat_frames(60)
        plan = netchaos_plan("reorder", seed=5)
        actions = mangle_stream(plan, "s", frames)
        sends = [data for verb, data in actions if verb == "send"]
        assert sorted(sends) == sorted(frames)  # nothing lost
        assert sends != frames                  # something moved

    def test_truncate_sends_a_prefix_then_resets(self):
        frame = heartbeat_frames(1)[0]
        plan = ChaosPlan(name="t", seed=0,
                         injectors=(FrameTruncate(rate=1.0, keep=0.5),))
        actions, held, closed = mangle_step(plan, "s", 0, frame, ())
        assert closed is True and held == ()
        assert actions == [("send", frame[:len(frame) // 2]),
                           ("reset", b"")]

    def test_hold_threads_between_steps(self):
        frames = heartbeat_frames(2)
        plan = ChaosPlan(name="h", seed=0,
                         injectors=(FrameDelay(rate=1.0, depth=1),))
        actions0, held, closed = mangle_step(plan, "s", 0, frames[0], ())
        assert actions0 == [] and not closed and len(held) == 1
        actions1, held, _closed = mangle_step(plan, "s", 1, frames[1],
                                              held)
        # Frame 1 is itself held; frame 0 comes due at index 1.
        assert actions1 == [("send", frames[0])]
        assert flush_held(held) == [("send", frames[1])]

    def test_pass_fate_is_the_shared_default(self):
        assert netchaos_plan("passthrough").decide("s", 0) is PASS


# ---------------------------------------------------------------------------
# the coordinator's protocol state machine (hand-crafted peers)
# ---------------------------------------------------------------------------

class FakePeer:
    """A hand-driven worker connection for protocol tests."""

    def __init__(self, transport: SocketTransport):
        self.transport = transport
        self.sock = socket.create_connection(
            (transport.host, transport.port), timeout=5.0)
        self.sock.settimeout(0.05)
        self.buffer = FrameBuffer()

    def send(self, kind, body):
        self.sock.sendall(encode_frame(kind, body))

    def send_raw(self, data: bytes):
        self.sock.sendall(data)

    def hello(self, worker="fake", claims=()):
        self.send("HELLO", {"worker": worker, "claims": list(claims)})

    def recv_frames(self, want=1, timeout_s=5.0):
        """Pump the coordinator until *want* frames arrive here."""
        frames = []
        deadline = time.perf_counter() + timeout_s
        while len(frames) < want and time.perf_counter() < deadline:
            self.transport.poll(POLL_S)
            try:
                data = self.sock.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                break
            if not data:
                break
            frames.extend(self.buffer.feed(data))
        return frames

    def result_for(self, job, owner="fake", rows=None, **extra):
        envelope = {"job": job["job"], "ticket": job["ticket"],
                    "digest": job["digest"], "owner": owner,
                    "outcome": "ok",
                    "rows": rows if rows is not None else [{"r": 1}],
                    "elapsed_ms": 1.0}
        envelope.update(extra)
        return envelope

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


def poll_until(transport, want: int, timeout_s: float = 10.0):
    outcomes = []
    deadline = time.perf_counter() + timeout_s
    while len(outcomes) < want:
        assert time.perf_counter() < deadline, \
            f"only {len(outcomes)}/{want} outcomes before timeout"
        outcomes.extend(transport.poll(0.1))
    return outcomes


class TestCoordinatorProtocol:
    def test_hello_job_result_round_trip(self):
        transport = make_transport()
        try:
            transport.dispatch(0, "m:f", {"x": 1}, key="", label="s0")
            peer = FakePeer(transport)
            peer.hello()
            (kind, job), = peer.recv_frames(1)
            assert kind == "JOB"
            assert job["ticket"] == 0 and job["worker"] == "m:f"
            peer.send("RESULT", peer.result_for(job))
            outcome, = poll_until(transport, 1)
            assert outcome.ticket == 0 and outcome.outcome == "ok"
            assert outcome.rows == [{"r": 1}]
            assert outcome.owner == "fake"
            peer.close()
        finally:
            transport.close()

    def test_junk_costs_the_connection_not_the_campaign(self):
        transport = make_transport()
        try:
            transport.dispatch(0, "m:f", {"x": 1})
            vandal = FakePeer(transport)
            vandal.send_raw(b"\x00\x00\x00\x05hello")
            assert vandal.recv_frames(1, timeout_s=1.0) == []  # dropped
            assert transport.stats()["protocol_errors"] == 1
            honest = FakePeer(transport)
            honest.hello(worker="honest")
            (kind, job), = honest.recv_frames(1)
            assert kind == "JOB"
            honest.send("RESULT", honest.result_for(job, owner="honest"))
            outcome, = poll_until(transport, 1)
            assert outcome.outcome == "ok" and outcome.owner == "honest"
            vandal.close()
            honest.close()
        finally:
            transport.close()

    def test_frame_before_hello_is_junk(self):
        transport = make_transport()
        try:
            peer = FakePeer(transport)
            peer.send("HEARTBEAT", {"worker": "w", "job": "j"})
            assert peer.recv_frames(1, timeout_s=1.0) == []
            assert transport.stats()["protocol_errors"] == 1
            peer.close()
        finally:
            transport.close()

    def test_duplicate_result_merges_to_one_outcome(self):
        transport = make_transport()
        try:
            transport.dispatch(0, "m:f", {"x": 1})
            peer = FakePeer(transport)
            peer.hello()
            (_kind, job), = peer.recv_frames(1)
            peer.send("RESULT", peer.result_for(job))
            peer.send("RESULT", peer.result_for(job))
            outcomes = poll_until(transport, 1)
            time.sleep(0.1)
            outcomes.extend(transport.poll(0.2))
            assert len(outcomes) == 1
            assert transport.stats()["stale_results"] == 1
            peer.close()
        finally:
            transport.close()

    def test_unknown_claim_is_retracted(self):
        transport = make_transport()
        try:
            peer = FakePeer(transport)
            peer.hello(claims=["00000009-deadbeef"])
            (kind, body), = peer.recv_frames(1)
            assert kind == "RETRACT"
            assert body["job"] == "00000009-deadbeef"
            peer.close()
        finally:
            transport.close()

    def test_abandoned_lease_is_reclaimed_as_crash(self):
        transport = make_transport(lease_s=0.2, reclaim_grace_s=0.2)
        try:
            transport.dispatch(0, "m:f", {"x": 1})
            peer = FakePeer(transport)
            peer.hello(worker="doomed")
            (kind, _job), = peer.recv_frames(1)
            assert kind == "JOB"
            # Never heartbeat: the lease expires and the attempt comes
            # back as a crash naming the silent owner.
            outcome, = poll_until(transport, 1)
            assert outcome.outcome == "crash"
            assert "lease expired" in outcome.message
            assert outcome.owner == "doomed"
            assert transport.stats()["jobs_reclaimed"] == 1
            # The still-connected holder was told.
            frames = peer.recv_frames(1)
            assert frames and frames[0][0] == "RETRACT"
            peer.close()
        finally:
            transport.close()

    def test_expiry_past_budget_is_a_hang(self):
        transport = make_transport(lease_s=0.2, reclaim_grace_s=0.2,
                                   shard_timeout=0.01)
        try:
            transport.dispatch(0, "m:f", {"x": 1})
            peer = FakePeer(transport)
            peer.hello()
            peer.recv_frames(1)
            outcome, = poll_until(transport, 1)
            assert outcome.outcome == "hang"
            peer.close()
        finally:
            transport.close()

    def test_reconnect_rebinds_the_claim(self):
        transport = make_transport(lease_s=5.0, reclaim_grace_s=5.0)
        try:
            transport.dispatch(0, "m:f", {"x": 1})
            first = FakePeer(transport)
            first.hello(worker="mobile")
            (_kind, job), = first.recv_frames(1)
            first.close()            # the wire dies; the claim lives
            transport.poll(0.1)      # notice the disconnect
            second = FakePeer(transport)
            second.hello(worker="mobile", claims=[job["job"]])
            second.send("RESULT", second.result_for(job, owner="mobile"))
            outcome, = poll_until(transport, 1)
            assert outcome.outcome == "ok" and outcome.owner == "mobile"
            stats = transport.stats()
            assert stats["reconnects"] == 1
            assert stats["jobs_reclaimed"] == 0
            second.close()
        finally:
            transport.close()

    def test_stale_result_for_reclaimed_job_is_dropped(self):
        transport = make_transport(lease_s=0.2, reclaim_grace_s=0.2)
        try:
            transport.dispatch(0, "m:f", {"x": 1})
            peer = FakePeer(transport)
            peer.hello()
            (_kind, job), = peer.recv_frames(1)
            outcome, = poll_until(transport, 1)   # reclaimed
            assert outcome.outcome == "crash"
            peer.send("RESULT", peer.result_for(job))  # zombie delivery
            assert transport.poll(0.3) == []
            assert transport.stats()["stale_results"] == 1
            peer.close()
        finally:
            transport.close()

    def test_classify_expiry_is_the_shared_rule(self):
        assert classify_expiry(0.5, None) == "crash"
        assert classify_expiry(0.5, 1.0) == "crash"
        assert classify_expiry(1.5, 1.0) == "hang"

    def test_close_is_idempotent_and_broadcasts_stop(self):
        transport = make_transport()
        peer = FakePeer(transport)
        peer.hello()
        transport.poll(0.1)
        transport.close()
        transport.close()
        deadline = time.perf_counter() + 5.0
        stop = None
        while stop is None and time.perf_counter() < deadline:
            try:
                data = peer.sock.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                break
            if not data:
                break
            for kind, body in peer.buffer.feed(data):
                if kind == "RETRACT" and body.get("stop"):
                    stop = body
        assert stop == {"job": "*", "stop": True}
        peer.close()


# ---------------------------------------------------------------------------
# supervised campaigns, in-process (optionally through a chaos proxy)
# ---------------------------------------------------------------------------

class TestSupervisedSocket:
    def run_supervised(self, tmp_path, specs, plan=None, fleet=2,
                       lease_s=0.4, max_retries=6, shard_timeout=None):
        transport = SocketTransport("127.0.0.1", 0, lease_s=lease_s,
                                    poll_s=POLL_S,
                                    shard_timeout=shard_timeout)
        proxy = None
        host, port = transport.host, transport.port
        if plan is not None:
            proxy = ChaosProxy(transport.host, transport.port,
                               plan).start()
            host, port = proxy.host, proxy.port
        cache = ArtifactCache(root=str(tmp_path / "cache"))
        workers = [SocketWorker(host, port, f"w{i}", cache=cache,
                                reconnect_limit=30, recv_timeout_s=0.05,
                                backoff_base_s=0.01, backoff_cap_s=0.1)
                   for i in range(fleet)]
        threads = [threading.Thread(target=worker.run, daemon=True)
                   for worker in workers]
        for thread in threads:
            thread.start()
        try:
            executor = SupervisedExecutor(
                cache=cache, transport=transport,
                max_retries=max_retries, shard_timeout=shard_timeout)
            return executor.run(specs), executor, transport
        finally:
            transport.close()        # stop broadcast first
            if proxy is not None:
                proxy.stop()
            for thread in threads:
                thread.join(timeout=10.0)

    def test_supervisor_over_socket_matches_serial(self, tmp_path,
                                                   baseline):
        (outputs, _records), executor, _t = self.run_supervised(
            tmp_path, plain_specs())
        assert output_bytes(outputs) == baseline
        assert all(state.outcome == "computed"
                   for state in executor.manifest_shards)

    @pytest.mark.parametrize("plan_name", ["drop", "reorder",
                                           "truncate", "reset"])
    def test_campaign_through_hostile_wire_matches_serial(
            self, tmp_path, baseline, plan_name):
        """The tentpole acceptance: merged bytes are invariant under
        seeded frame drops, reorders, mid-frame truncations, and
        connection resets on every stream."""
        plan = netchaos_plan(plan_name, seed=23)
        (outputs, _records), _executor, transport = self.run_supervised(
            tmp_path, plain_specs(), plan=plan, fleet=3,
            shard_timeout=60.0)
        assert output_bytes(outputs) == baseline
        stats = transport.stats()
        assert stats["protocol_errors"] == 0 or plan_name == "truncate"

    def test_worker_emits_connection_lifecycle_events(self):
        """Socket workers feed the monitor's ``worker`` event kind:
        connect/disconnect land in the log (with an empty shard label)
        and the worker-lifecycle reducer censuses them without
        counting a phantom shard."""
        import io

        from repro.monitor import (EventLogWriter, default_reducers,
                                   read_events)
        transport = make_transport()
        stream = io.StringIO()
        worker = SocketWorker(transport.host, transport.port, "ev0",
                              events=EventLogWriter(stream),
                              recv_timeout_s=0.05)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            deadline = time.perf_counter() + 10.0
            while transport.stats()["connects"] < 1:
                assert time.perf_counter() < deadline
                transport.poll(0.05)
        finally:
            transport.close()
            thread.join(timeout=10.0)
        events = read_events(io.StringIO(stream.getvalue()))
        assert [e.data["state"] for e in events] == \
            ["connect", "disconnect"]
        assert all(e.data["shard"] == "" for e in events)
        reducer = default_reducers()["worker-lifecycle"]
        final = reducer.finalize(reducer.reduce(events))
        assert final["workers"]["ev0"] == {
            "states": {"connect": 1, "disconnect": 1}, "shards": 0}
        assert final["reconnects"] == 0

    def test_mid_compute_disconnect_resumes_with_the_result(
            self, tmp_path, baseline):
        """A reset-heavy wire forces reconnect-and-resume: results
        computed while disconnected are re-HELLOed and credited (or
        dropped as stale duplicates), never lost and never doubled."""
        plan = ChaosPlan(name="reset-heavy", seed=3,
                         injectors=(FrameTruncate(rate=0.02, keep=0.5),
                                    FrameDrop(rate=0.05)))
        (outputs, _records), executor, _t = self.run_supervised(
            tmp_path, plain_specs(), plan=plan, fleet=3,
            shard_timeout=60.0)
        assert output_bytes(outputs) == baseline
        assert len(executor.manifest_shards) == len(plain_specs())


# ---------------------------------------------------------------------------
# end-to-end: real `repro worker --connect` subprocesses
# ---------------------------------------------------------------------------

def result_doc(result):
    return {"rows": result.rows, "summary": result.summary}


class TestEndToEndSocketFleet:
    def test_serial_pipe_jobqueue_socket_byte_identity(self, tmp_path):
        """The acceptance contract, now four ways: the same experiment
        through serial, the pipe pool, the filesystem job queue, and
        the TCP socket fleet merges to identical bytes."""
        serial = run_experiment("sec4-deployment", config=CORPUS_CONFIG,
                                cache=False)
        pipe = run_experiment("sec4-deployment", config=CORPUS_CONFIG,
                              workers=3, supervise=True,
                              cache_dir=str(tmp_path / "pipe-cache"))
        queue = run_experiment("sec4-deployment", config=CORPUS_CONFIG,
                               workers=3, transport="jobqueue",
                               queue_dir=str(tmp_path / "queue"),
                               cache_dir=str(tmp_path / "queue-cache"))
        sock = run_experiment("sec4-deployment", config=CORPUS_CONFIG,
                              workers=3, transport="socket",
                              listen="127.0.0.1:0",
                              cache_dir=str(tmp_path / "sock-cache"))
        assert result_doc(serial) == result_doc(pipe) \
            == result_doc(queue) == result_doc(sock)
        assert sock.manifest is not None and sock.manifest.complete
        assert sock.manifest.computed == 6
        assert sock.provenance.workers == 3

    def test_sigkilled_worker_mid_shard_recovers(self, tmp_path,
                                                 baseline):
        """Chaos crash = os._exit inside a real `repro worker
        --connect` process: the connection dies with it, the lease
        expires on the coordinator's clock, and a surviving worker
        steals the retry."""
        specs = plain_specs()
        specs[1] = chaos_wrap(specs[1], "crash", 1,
                              str(tmp_path / "scratch"))
        cache = ArtifactCache(root=str(tmp_path / "cache"))
        transport = SocketTransport("127.0.0.1", 0, lease_s=LEASE_S,
                                    poll_s=POLL_S,
                                    reclaim_grace_s=2.0)
        workers = spawn_socket_workers(transport.host, transport.port,
                                       3, cache_dir=cache.root)
        try:
            executor = SupervisedExecutor(cache=cache,
                                          transport=transport,
                                          max_retries=2)
            outputs, _records = executor.run(specs)
        finally:
            transport.close()
            join_workers(workers)
        assert output_bytes(outputs) == baseline
        state = executor.manifest_shards[1]
        assert [a.outcome for a in state.attempts] == ["crash", "ok"]
        assert "lease expired" in state.attempts[0].error

    def test_run_cli_socket_end_to_end(self, tmp_path, capsys):
        """`repro run --transport socket` end to end through main()."""
        from repro.cli import main
        code = main(["run", "sec4-deployment", "--transport", "socket",
                     "--listen", "127.0.0.1:0", "--workers", "2",
                     "--lease", "0.5",
                     "--cache-dir", str(tmp_path / "cache")])
        out = capsys.readouterr().out
        assert code == 0
        assert "manifest: 0 cached, 4 computed" in out

    def test_bad_listen_address_is_an_error(self, capsys):
        from repro.cli import main
        assert main(["run", "tbl2", "--transport", "socket",
                     "--listen", "nocolon"]) == 2
        assert "--listen" in capsys.readouterr().err

    def test_worker_cli_requires_exactly_one_transport(self, capsys):
        from repro.cli import main
        assert main(["worker"]) == 2
        err = capsys.readouterr().err
        assert "--queue-dir" in err and "--connect" in err
        assert main(["worker", "--queue-dir", "q",
                     "--connect", "h:1"]) == 2
