"""Tests for the second extension batch: client OCSP cache, CRLSets,
the ASN.1 dumper, the patched-Apache model, and size analysis."""

import pytest

from repro.asn1.dump import describe_certificate, dump_der
from repro.browser import (
    CRLSet,
    CRLSetDistributor,
    ClientOCSPCache,
    by_label,
    check_with_crlset,
    connect,
    staleness_window,
    Verdict,
)
from repro.ca import CertificateAuthority, OCSPResponder, ResponderProfile
from repro.core import size_by_certificate_count, responder_quality
from repro.crypto import generate_keypair
from repro.ocsp import CertID, OCSPRequest, verify_response
from repro.simnet import (DAY, HOUR, MEASUREMENT_START, Network,
                          ocsp_http_exchange, ocsp_post)
from repro.tls import ClientHello
from repro.webserver import ApachePatchedServer, ApacheServer, run_conformance
from repro.x509 import TrustStore

NOW = MEASUREMENT_START
HELLO = ClientHello("server.test", status_request=True)


class TestClientOCSPCache:
    def get_check(self, responder, cert_id, ca, now):
        request = OCSPRequest.for_single(cert_id)
        response = ocsp_http_exchange(responder, ocsp_post(responder.url + "/", request.encode()), now)
        return verify_response(response.body, cert_id, ca.certificate, now)

    def test_store_and_hit(self, ca, responder, cert_id, now):
        cache = ClientOCSPCache()
        check = self.get_check(responder, cert_id, ca, now)
        assert cache.store(cert_id, check, now)
        entry = cache.lookup(cert_id, now + HOUR)
        assert entry is not None
        assert entry.cert_status is check.cert_status
        assert cache.hit_rate == 1.0

    def test_expires_at_next_update(self, ca, responder, cert_id, now):
        cache = ClientOCSPCache(max_age=None)
        check = self.get_check(responder, cert_id, ca, now)
        cache.store(cert_id, check, now)
        assert cache.lookup(cert_id, check.single.next_update) is not None
        assert cache.lookup(cert_id, check.single.next_update + 1) is None
        assert len(cache) == 0  # evicted

    def test_max_age_ceiling(self, ca, responder, cert_id, now):
        cache = ClientOCSPCache(max_age=HOUR)
        check = self.get_check(responder, cert_id, ca, now)
        cache.store(cert_id, check, now)
        assert cache.lookup(cert_id, now + HOUR) is not None
        assert cache.lookup(cert_id, now + HOUR + 1) is None

    def test_blank_next_update_not_cached_by_default(self, ca, now):
        responder = OCSPResponder(
            ca, "http://ocsp.fixture.test",
            ResponderProfile(update_interval=None, blank_next_update=True),
            epoch_start=now - DAY)
        leaf = ca.issue_leaf("blank.example", generate_keypair(512, rng=70),
                             not_before=now - DAY)
        cert_id = CertID.for_certificate(leaf, ca.certificate)
        check = self.get_check(responder, cert_id, ca, now)
        cache = ClientOCSPCache()
        assert not cache.store(cert_id, check, now)

    def test_blank_cached_when_opted_in(self, ca, now):
        responder = OCSPResponder(
            ca, "http://ocsp.fixture.test",
            ResponderProfile(update_interval=None, blank_next_update=True),
            epoch_start=now - DAY)
        leaf = ca.issue_leaf("blank2.example", generate_keypair(512, rng=71),
                             not_before=now - DAY)
        cert_id = CertID.for_certificate(leaf, ca.certificate)
        check = self.get_check(responder, cert_id, ca, now)
        cache = ClientOCSPCache(max_age=None, cache_blank=True)
        assert cache.store(cert_id, check, now)
        # The hazard: with no nextUpdate and no ceiling, never expires.
        assert cache.lookup(cert_id, now + 1251 * DAY) is not None

    def test_failed_check_not_cached(self, cert_id, now):
        cache = ClientOCSPCache()
        from repro.ocsp import OCSPCheckResult, OCSPError
        assert not cache.store(cert_id, OCSPCheckResult(False, OCSPError.MALFORMED), now)

    def test_staleness_window(self):
        assert staleness_window(7 * DAY, 30 * DAY) == 7 * DAY
        assert staleness_window(None, 30 * DAY) == 30 * DAY
        assert staleness_window(1251 * DAY, None) == 1251 * DAY
        assert staleness_window(None, None) is None  # the hazard


class TestCRLSet:
    @pytest.fixture()
    def site(self, ca, leaf):
        return ca, leaf

    def test_membership(self, ca, leaf):
        crlset = CRLSet()
        assert not crlset.is_revoked(leaf, ca.certificate)
        crlset.add(ca.certificate, leaf.serial_number)
        assert crlset.is_revoked(leaf, ca.certificate)
        assert len(crlset) == 1

    def test_issuer_scoped(self, ca, leaf, now):
        other_ca = CertificateAuthority.create_root(
            "Other CA", "http://ocsp.other.test", not_before=now - 365 * DAY)
        crlset = CRLSet()
        crlset.add(other_ca.certificate, leaf.serial_number)
        assert not crlset.is_revoked(leaf, ca.certificate)

    def test_distributor_push_delay(self, ca, leaf, now):
        distributor = CRLSetDistributor(push_delay=6 * HOUR)
        distributor.curate(ca.certificate, leaf.serial_number, revoked_at=now)
        assert not distributor.fetch(now + 5 * HOUR).is_revoked(leaf, ca.certificate)
        assert distributor.fetch(now + 6 * HOUR).is_revoked(leaf, ca.certificate)

    def test_tri_state(self, ca, leaf):
        assert check_with_crlset(None, leaf, ca.certificate) is None
        assert check_with_crlset(CRLSet(), leaf, ca.certificate) is False

    def test_chrome_rejects_via_crlset_despite_network_attacker(self, ca, leaf, now):
        """CRLSets are offline: stripping staples cannot defeat them."""
        chrome = by_label()["Chrome 66 (Linux)"]
        assert chrome.uses_crlset
        server = ApacheServer(chain=[leaf, ca.certificate], issuer=ca.certificate,
                              network=Network(), stapling_enabled=False)
        crlset = CRLSet()
        crlset.add(ca.certificate, leaf.serial_number)
        outcome = connect(chrome, server, "plain.example",
                          TrustStore([ca.certificate]), now, crlset=crlset)
        assert outcome.verdict is Verdict.REJECTED_REVOKED

    def test_uncovered_revocation_still_missed(self, ca, leaf, now):
        """...but coverage is everything: unlisted = accepted."""
        chrome = by_label()["Chrome 66 (Linux)"]
        server = ApacheServer(chain=[leaf, ca.certificate], issuer=ca.certificate,
                              network=Network(), stapling_enabled=False)
        outcome = connect(chrome, server, "plain.example",
                          TrustStore([ca.certificate]), now, crlset=CRLSet())
        assert outcome.connected

    def test_firefox_ignores_crlset(self, ca, staple_leaf, now):
        firefox = by_label()["Firefox 60 (Linux)"]
        assert not firefox.uses_crlset


class TestASN1Dump:
    def test_dump_certificate(self, leaf):
        text = dump_der(leaf.der)
        assert "SEQUENCE" in text
        assert "sha256WithRSAEncryption" in text
        assert "tlsFeature" not in text  # plain leaf

    def test_dump_must_staple(self, staple_leaf):
        text = dump_der(staple_leaf.der)
        assert "Must-Staple" in text

    def test_dump_truncation(self, leaf):
        text = dump_der(leaf.der, max_lines=5)
        assert "(truncated)" in text

    def test_dump_garbage_does_not_crash(self):
        assert dump_der(b"\xff\xff\xff")
        assert dump_der(b"")== ""
        assert "overruns" in dump_der(b"\x30\x10\x02\x01\x05")

    def test_describe_certificate(self, staple_leaf):
        summary = describe_certificate(staple_leaf.der)
        assert "must-staple: yes" in summary
        assert "staple.example" in summary


class TestApachePatched:
    def test_conformance(self):
        report = run_conformance(ApachePatchedServer)
        assert report.result("Respect nextUpdate in cache").passed
        assert report.result("Retain OCSP response on error").passed
        assert report.result("Cache OCSP response").passed
        assert not report.result("Prefetch OCSP response").passed

    def test_stock_still_fails(self):
        report = run_conformance(ApacheServer)
        assert not report.result("Respect nextUpdate in cache").passed


class TestResponseSize:
    def test_sizes_recorded(self, scan_dataset):
        sizes = [r.response_size for r in scan_dataset.records
                 if r.response_size is not None]
        assert sizes
        assert all(size > 0 for size in sizes)

    def test_size_grows_with_certs(self, scan_dataset):
        qualities = responder_quality(scan_dataset)
        by_count = size_by_certificate_count(qualities)
        assert len(by_count) >= 2
        counts = sorted(by_count)
        assert by_count[counts[-1]] > by_count[counts[0]]
