#!/usr/bin/env python3
"""Adversarial analysis: what does Must-Staple actually buy?

Walks the attack space of the paper's Section 2.3 — staple stripping,
OCSP blocking, staple replay — across browser policies and staple
validity periods, then prints the revocation-mechanism comparison
table (CRL vs OCSP vs Must-Staple vs short-lived certificates).

Run:  python examples/attack_analysis.py
"""

from repro.browser import by_label
from repro.ca import CertificateAuthority, OCSPResponder, ResponderProfile
from repro.core import (
    AttackerCapabilities,
    MechanismParameters,
    compare_mechanisms,
    measure_attack_window,
    render_table,
)
from repro.crypto import generate_keypair
from repro.simnet import DAY, HOUR, MEASUREMENT_START, Network, ocsp_service
from repro.webserver import IdealServer
from repro.x509 import TrustStore

NOW = MEASUREMENT_START


def build_site(validity):
    ca = CertificateAuthority.create_root(
        "Attack CA", "http://ocsp.attack.test", not_before=NOW - 365 * DAY)
    leaf = ca.issue_leaf("victim.example", generate_keypair(512, rng=77),
                         not_before=NOW - DAY, must_staple=True,
                         lifetime=400 * DAY)
    responder = OCSPResponder(
        ca, "http://ocsp.attack.test",
        ResponderProfile(update_interval=None, this_update_margin=0,
                         validity_period=validity),
        epoch_start=NOW - 7 * DAY)
    network = Network()
    network.bind("ocsp.attack.test",
                 network.add_origin("attack", "us-east", ocsp_service(responder)))
    server = IdealServer(chain=[leaf, ca.certificate], issuer=ca.certificate,
                         network=network)
    ca.revoke(leaf, NOW, reason=1)  # key compromise!
    return ca, leaf, server, network, TrustStore([ca.certificate])


def main() -> None:
    firefox = by_label()["Firefox 60 (Linux)"]
    chrome = by_label()["Chrome 66 (Linux)"]

    print("A certificate is revoked for key compromise.  How long does each")
    print("browser keep accepting it, against each attacker?\n")

    scenarios = [
        ("no attacker", AttackerCapabilities()),
        ("strip staple + block OCSP", AttackerCapabilities(strip_staple=True,
                                                           block_ocsp=True)),
        ("replay pre-revocation staple", AttackerCapabilities(replay_staple=True)),
    ]
    rows = []
    for label, capabilities in scenarios:
        row = [label]
        for policy in (firefox, chrome):
            ca, leaf, server, network, trust = build_site(validity=DAY)
            outcome = measure_attack_window(
                policy, server, leaf, ca.certificate, trust, capabilities,
                revoked_at=NOW, horizon=14 * DAY, step=HOUR,
                network=network, server_tick=server.tick)
            row.append("unbounded" if outcome.unbounded
                       else f"{outcome.window / 3600:.0f} h")
        rows.append(row)
    print(render_table(["attacker", "Firefox (hard-fail)", "Chrome (soft-fail)"],
                       rows))

    print("\nThe replay window tracks the staple's validity period:")
    for validity in (2 * HOUR, DAY, 7 * DAY):
        ca, leaf, server, network, trust = build_site(validity)
        outcome = measure_attack_window(
            firefox, server, leaf, ca.certificate, trust,
            AttackerCapabilities(replay_staple=True),
            revoked_at=NOW, horizon=30 * DAY, step=HOUR,
            network=network, server_tick=server.tick)
        print(f"  validity {validity / 3600:6.0f} h -> replay window "
              f"{outcome.window / 3600:6.1f} h")
    print("  (the paper's 1,251-day validity extreme = a 1,251-day replay window)")

    print("\nThe design space (exposure windows after revocation):\n")
    mechanisms = compare_mechanisms(MechanismParameters(ocsp_validity=4 * DAY))

    def fmt(seconds):
        return "unbounded" if seconds is None else f"{seconds / DAY:.1f} d"

    print(render_table(
        ["mechanism", "benign", "under attack"],
        [[m.mechanism, fmt(m.benign_window), fmt(m.attacked_window)]
         for m in mechanisms]))


if __name__ == "__main__":
    main()
