#!/usr/bin/env python3
"""Responder monitoring: a compressed Section-5 measurement campaign.

Builds the measurement world (a scaled-down copy of the paper's 536
OCSP responders with all its events and fault mixtures), scans it from
the six vantage points for two simulated weeks, and prints the
availability and quality findings — a miniature of Figures 3, 5, 8,
and 9.

Run:  python examples/responder_monitoring.py
"""

from repro.core import (
    analyze_availability,
    failures_by_kind,
    quality_headlines,
    validity_series,
)
from repro.datasets import MeasurementWorld, WorldConfig
from repro.scanner import HourlyScanner, ProbeOutcome
from repro.simnet import DAY, HOUR, MEASUREMENT_START


def main() -> None:
    print("building measurement world (80 responders, scaled from 536)...")
    world = MeasurementWorld(WorldConfig(n_responders=80, certs_per_responder=1,
                                         seed=7))
    scanner = HourlyScanner(world, interval=6 * HOUR)
    print("scanning 14 simulated days from 6 vantage points...")
    dataset = scanner.run(MEASUREMENT_START, MEASUREMENT_START + 14 * DAY)
    print(f"collected {len(dataset):,} probes against "
          f"{len(dataset.responder_urls())} responders\n")

    # Availability (Figure 3).
    report = analyze_availability(dataset)
    print("availability by vantage point (avg % of failed requests):")
    for vantage, rate in sorted(report.failure_rate.items(), key=lambda kv: kv[1]):
        bar = "#" * int(rate * 10)
        print(f"  {vantage:10s} {rate:5.2f}%  {bar}")
    print(f"\nresponders never reachable from anywhere: "
          f"{len(report.never_successful_anywhere)}")
    print(f"responders unreachable from >=1 vantage:   "
          f"{len(report.never_successful_somewhere)}")
    print(f"responders with >=1 transient outage:      "
          f"{len(report.responders_with_outage)} "
          f"({report.outage_fraction * 100:.0f}%; paper: 36.8%)")

    print("\nfailure breakdown (Section 5.2 taxonomy):")
    for outcome, count in sorted(failures_by_kind(dataset).items(),
                                 key=lambda kv: -kv[1]):
        print(f"  {outcome.value:40s} {count:6d}")

    # Validity (Figure 5).
    series = validity_series(dataset)
    print("\nunusable responses among HTTP-200 answers:")
    for outcome in (ProbeOutcome.MALFORMED, ProbeOutcome.SERIAL_MISMATCH,
                    ProbeOutcome.BAD_SIGNATURE):
        print(f"  {outcome.value:25s} avg {series.average(outcome):.2f}%  "
              f"peak {series.peak(outcome):.2f}%")

    # Quality headlines (Figures 6-9, Section 5.4).
    headlines = quality_headlines(dataset)
    n = headlines.responders
    print(f"\nresponse quality across {n} responders:")
    rows = [
        ("include >1 certificate (Fig 6; paper 14.5%)", headlines.multi_certificate),
        ("answer >1 serial (Fig 7; paper 4.8%)", headlines.multi_serial),
        ("always answer 20 serials (paper 3.3%)", headlines.serial20),
        ("blank nextUpdate (Fig 8; paper 9.1%)", headlines.blank_next_update),
        ("validity over a month (paper 2%)", headlines.over_one_month),
        ("zero thisUpdate margin (Fig 9; paper 17.2%)", headlines.zero_margin),
        ("future thisUpdate (paper 3%)", headlines.future_this_update),
        ("pre-generated responses (paper 51.7%)", headlines.not_on_demand),
    ]
    for label, count in rows:
        print(f"  {label:48s} {count:3d} ({count / n * 100:4.1f}%)")


if __name__ == "__main__":
    main()
