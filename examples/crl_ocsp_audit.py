#!/usr/bin/env python3
"""CRL ↔ OCSP consistency audit: reproduce Table 1 and Figure 10.

Builds the consistency world (the seven misbehaving responders the
paper found, plus msocsp's lagging clock, the negative-delta tail,
and a consistent bulk), downloads every CRL, cross-checks every
unexpired revoked serial against its OCSP responder, and reports the
discrepancies.

Run:  python examples/crl_ocsp_audit.py
"""

from repro.core import render_table
from repro.scanner import (
    ConsistencyConfig,
    ConsistencyWorld,
    run_consistency_scan,
)
from repro.simnet import DAY, HOUR


def main() -> None:
    print("building consistency world (1:100 of the paper's 728,261 "
          "revoked certificates)...")
    world = ConsistencyWorld(ConsistencyConfig(scale=100))
    total = sum(len(site.revoked_serials) for site in world.sites)
    print(f"  {len(world.sites)} CAs, {total:,} revoked serials\n")

    print("downloading CRLs and issuing OCSP requests for every serial...")
    report = run_consistency_scan(world)
    print(f"  responses collected: {report.responses_collected:,}/"
          f"{report.serials_checked:,} "
          f"({report.responses_collected / report.serials_checked * 100:.1f}%; "
          f"paper: 99.9%)\n")

    rows = [[row.ocsp_url, row.unknown, row.good, row.revoked]
            for row in report.discrepant_rows()]
    print(render_table(
        ["OCSP URL", "Unknown", "Good", "Revoked"], rows,
        title="Table 1 (reproduced): OCSP answers for CRL-revoked certificates",
    ))

    # Figure 10: revocation-time deltas.
    deltas = [d.delta for d in report.time_deltas if d.delta != 0]
    negative = [d for d in deltas if d < 0]
    print(f"\nrevocation-time deltas (Figure 10):")
    print(f"  responses with differing time:  {len(deltas):,} "
          f"({report.differing_time_fraction() * 100:.2f}%; paper: 0.15%)")
    if deltas:
        print(f"  negative (OCSP earlier):        {len(negative)} "
              f"({len(negative) / len(deltas) * 100:.1f}%; paper: 14.7%)")
        print(f"  most negative:                  {min(deltas):,} s "
              f"(paper axis floor: -43,200)")
        print(f"  maximum:                        {max(deltas):,} s "
              f"= {max(deltas) / 86400 / 365:.1f} years (paper: >4 years)")
    msocsp = [d.delta for d in report.time_deltas if "msocsp" in d.ocsp_url]
    if msocsp:
        print(f"  ocsp.msocsp.com lag:            {min(msocsp) / HOUR:.1f} h .. "
              f"{max(msocsp) / DAY:.1f} d (paper: 7 h .. 9 d)")

    print(f"\nreason codes: {report.reasons.differing}/{report.reasons.total} "
          f"differ ({report.reasons.differing_fraction * 100:.1f}%; paper ~15%), "
          f"{report.reasons.crl_only} of them CRL-only (paper: 99.99%)")


if __name__ == "__main__":
    main()
