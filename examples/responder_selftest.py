#!/usr/bin/env python3
"""The paper's recommendation #1, as a tool: responder self-testing.

"OCSP responders ought to test the validity of their responses.  Test
harnesses like ours can help towards this end."  (Section 8.)

Runs the self-test battery — reachability, structure, signature,
serial matching, thisUpdate margin, nextUpdate policy, stuffing, nonce
echo, GET support, freshness — against a gallery of responders, each
exhibiting one pathology the paper measured in the wild, plus the
high-level :class:`~repro.ocsp.OCSPClient` in action.

Run:  python examples/responder_selftest.py
"""

from repro.browser import ClientOCSPCache
from repro.ca import (
    CertificateAuthority,
    OCSPResponder,
    ResponderProfile,
    blank_next_update_profile,
    long_validity_profile,
    non_overlapping_profile,
    persistent_malformed_profile,
    serial_stuffing_profile,
    superfluous_certs_profile,
    zero_margin_profile,
    future_this_update_profile,
)
from repro.crypto import generate_keypair
from repro.ocsp import OCSPClient
from repro.scanner import self_test_responder
from repro.simnet import DAY, HOUR, MEASUREMENT_START, Network, ocsp_service

NOW = MEASUREMENT_START

GALLERY = [
    ("well-behaved", ResponderProfile(this_update_margin=HOUR)),
    ("zero margin (Fig 9, 17.2%)", zero_margin_profile()),
    ("future thisUpdate (Fig 9, 3%)", future_this_update_profile()),
    ("blank nextUpdate (Fig 8, 9.1%)", blank_next_update_profile()),
    ("1,251-day validity (Fig 8)", long_validity_profile(1251)),
    ("20-serial stuffing (Fig 7, 3.3%)", serial_stuffing_profile(20)),
    ("full-chain responses (Fig 6)", superfluous_certs_profile()),
    ("'0' responses (Fig 5, sheca)", persistent_malformed_profile("zero")),
    ("validity == update interval (hinet)", non_overlapping_profile(7200)),
]


def main() -> None:
    network = Network()
    print("building a gallery of responders, one per measured pathology...\n")
    sites = []
    for index, (label, profile) in enumerate(GALLERY):
        ca = CertificateAuthority.create_root(
            f"Gallery CA {index}", f"http://ocsp{index}.gallery.test",
            not_before=NOW - 365 * DAY)
        leaf = ca.issue_leaf(f"site{index}.example", generate_keypair(512, rng=index),
                             not_before=NOW - DAY)
        responder = OCSPResponder(ca, ca.ocsp_url, profile,
                                  epoch_start=NOW - 7 * DAY)
        network.bind(f"ocsp{index}.gallery.test",
                     network.add_origin(f"gallery-{index}", "us-east",
                                        ocsp_service(responder)))
        sites.append((label, ca, leaf))

    now = NOW + HOUR
    for label, ca, leaf in sites:
        report = self_test_responder(network, ca.ocsp_url, leaf,
                                     ca.certificate, now)
        status = "HEALTHY " if report.healthy else "ATTENTION"
        interesting = report.failures + report.warnings
        detail = "; ".join(f"{f.check}: {f.detail or f.grade.value}"
                           for f in interesting[:2]) or "all checks pass"
        print(f"[{status}] {label:38s} {detail}")

    # The high-level client, with caching.
    print("\nOCSPClient with a client-side cache:")
    label, ca, leaf = sites[0]
    client = OCSPClient(network, vantage="Paris", use_nonce=True,
                        cache=ClientOCSPCache())
    first = client.check(leaf, ca.certificate, now)
    second = client.check(leaf, ca.certificate, now + 600)
    print(f"  first lookup : status={first.status}, from_cache={first.from_cache}, "
          f"latency={first.fetch.elapsed_ms:.0f} ms")
    print(f"  second lookup: status={second.status}, from_cache={second.from_cache} "
          f"(no network round trip)")
    print(f"  requests actually sent: {client.requests_sent}")


if __name__ == "__main__":
    main()
