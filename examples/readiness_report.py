#!/usr/bin/env python3
"""The headline question: is the web ready for OCSP Must-Staple?

Runs the full cross-principal assessment — responder availability and
quality, browser Must-Staple enforcement, web server conformance, and
deployment statistics — and prints the verdict.  With the 2018
parameter set this reproduces the paper's conclusion: NO.

Also prints the Table-2 browser matrix along the way.

Run:  python examples/readiness_report.py
"""

from repro.browser import run_browser_tests
from repro.core import assess_readiness, render_table


def main() -> None:
    print("running browser test suite (Section 6)...\n")
    browser_report = run_browser_tests()
    rows = []
    for row in browser_report.rows:
        cells = row.cells()
        rows.append([
            row.policy.label,
            cells["Request OCSP response"],
            cells["Respect OCSP Must-Staple"],
            cells["Send own OCSP request"],
        ])
    print(render_table(
        ["browser", "requests OCSP", "respects Must-Staple", "own OCSP request"],
        rows, title="Table 2 (reproduced)"))

    print("\nrunning responder scan, server conformance, deployment stats...")
    report = assess_readiness()
    print()
    print(report.render())


if __name__ == "__main__":
    main()
