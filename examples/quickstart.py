#!/usr/bin/env python3
"""Quickstart: the whole OCSP Must-Staple story in one script.

Builds a CA, issues a Must-Staple certificate, serves it from a web
server, connects with Firefox- and Chrome-like browser models, then
revokes the certificate and shows how the staple propagates — and what
happens when an attacker strips it.

Run:  python examples/quickstart.py
"""

from repro.browser import by_label, connect, Verdict
from repro.ca import CertificateAuthority, OCSPResponder, ResponderProfile
from repro.crypto import generate_keypair
from repro.simnet import DAY, HOUR, MEASUREMENT_START, Network, ocsp_service
from repro.webserver import IdealServer
from repro.x509 import TrustStore

NOW = MEASUREMENT_START


def main() -> None:
    # 1. A certificate authority with an OCSP responder.
    ca = CertificateAuthority.create_root(
        "Quickstart CA", "http://ocsp.quickstart.test",
        not_before=NOW - 365 * DAY,
    )
    responder = OCSPResponder(
        ca, "http://ocsp.quickstart.test",
        ResponderProfile(update_interval=None, this_update_margin=HOUR,
                         validity_period=DAY),
        epoch_start=NOW - 7 * DAY,
    )
    network = Network()
    origin = network.add_origin("quickstart-ocsp", "us-east", ocsp_service(responder))
    network.bind("ocsp.quickstart.test", origin)

    # 2. A Must-Staple certificate for a site (opt-in, like Let's Encrypt).
    site_key = generate_keypair(512, rng=1)
    leaf = ca.issue_leaf("shop.example", site_key, not_before=NOW - DAY,
                         must_staple=True)
    print(f"issued: {leaf!r}")
    print(f"  OCSP URL: {leaf.ocsp_urls[0]}")
    print(f"  Must-Staple: {leaf.must_staple}")

    # 3. A web server that prefetches staples (the paper's recommendation).
    server = IdealServer(chain=[leaf, ca.certificate], issuer=ca.certificate,
                         network=network)
    server.tick(NOW)  # prefetch

    trust = TrustStore([ca.certificate])
    firefox = by_label()["Firefox 60 (Linux)"]
    chrome = by_label()["Chrome 66 (Linux)"]

    # 4. Browse while everything is healthy.
    print("\n--- healthy site, stapling server ---")
    for browser in (firefox, chrome):
        outcome = connect(browser, server, "shop.example", trust, NOW)
        print(f"  {browser.label:22s} -> {outcome.verdict.value}")

    # 5. The key is compromised; the CA revokes.  The server's next
    #    staple refresh carries the revocation to every client.
    print("\n--- certificate revoked (key compromise) ---")
    ca.revoke(leaf, NOW + HOUR, reason=1)
    server.cache = None
    server.tick(NOW + 2 * HOUR)
    for browser in (firefox, chrome):
        outcome = connect(browser, server, "shop.example", trust, NOW + 2 * HOUR)
        print(f"  {browser.label:22s} -> {outcome.verdict.value}")

    # 6. An attacker strips the staple (the soft-failure attack of
    #    Section 2.3).  Must-Staple + Firefox defeats it; Chrome-style
    #    soft failure does not.
    print("\n--- attacker strips the staple ---")

    class StrippingMITM:
        def handle_connection(self, hello, now):
            handshake = server.handle_connection(hello, now)
            handshake.stapled_ocsp = None
            return handshake

    for browser in (firefox, chrome):
        outcome = connect(browser, StrippingMITM(), "shop.example", trust,
                          NOW + 2 * HOUR)
        verdict = outcome.verdict
        note = "  <- attack BLOCKED by Must-Staple" \
            if verdict is Verdict.REJECTED_MUST_STAPLE else \
            "  <- attack SUCCEEDED (soft failure)"
        print(f"  {browser.label:22s} -> {verdict.value}{note}")


if __name__ == "__main__":
    main()
