#!/usr/bin/env python3
"""Web server conformance: reproduce Table 3 and explore a what-if.

Runs the paper's four stapling-implementation experiments against the
Apache and Nginx behavioural models (plus the paper's recommended
'ideal' server), then simulates a day in the life of a Must-Staple
site behind each server while its OCSP responder suffers an outage —
showing how many Firefox-like visitors each implementation locks out.

Run:  python examples/webserver_conformance.py
"""

from repro.browser import by_label, connect, Verdict
from repro.ca import CertificateAuthority, OCSPResponder, ResponderProfile
from repro.core import render_table
from repro.crypto import generate_keypair
from repro.simnet import DAY, HOUR, MEASUREMENT_START, FailureKind, Network, OutageWindow, ocsp_service
from repro.webserver import (
    ApacheServer,
    EXPERIMENTS,
    IdealServer,
    NginxServer,
    run_conformance,
)
from repro.x509 import TrustStore

NOW = MEASUREMENT_START


def table3() -> None:
    rows = []
    for cls in (ApacheServer, NginxServer, IdealServer):
        report = run_conformance(cls)
        cells = report.as_row()
        rows.append([report.software, *[cells[name] for name in EXPERIMENTS]])
    print(render_table(["software", *EXPERIMENTS], rows,
                       title="Table 3: stapling implementation conformance"))


def outage_what_if() -> None:
    """A Must-Staple site during a 6-hour responder outage."""
    ca = CertificateAuthority.create_root("WhatIf CA", "http://ocsp.whatif.test",
                                          not_before=NOW - 365 * DAY)
    key = generate_keypair(512, rng=4)
    leaf = ca.issue_leaf("whatif.example", key, not_before=NOW - DAY,
                         must_staple=True)
    responder = OCSPResponder(
        ca, "http://ocsp.whatif.test",
        ResponderProfile(update_interval=None, this_update_margin=HOUR,
                         validity_period=DAY),
        epoch_start=NOW - 7 * DAY,
    )
    network = Network()
    origin = network.add_origin("whatif", "us-east", ocsp_service(responder))
    network.bind("ocsp.whatif.test", origin)
    # Outage from hour 6 to hour 12.
    origin.add_outage(OutageWindow(NOW + 6 * HOUR, NOW + 12 * HOUR,
                                   kind=FailureKind.TCP))

    firefox = by_label()["Firefox 60 (Linux)"]
    trust = TrustStore([ca.certificate])

    print("\nWhat-if: Firefox visitors to a Must-Staple site, hourly for 24h,")
    print("with the OCSP responder down from hour 6 to hour 12:\n")
    header = f"{'server':16s}" + "".join(f"{h:>3d}" for h in range(24))
    print(header)
    for cls in (ApacheServer, NginxServer, IdealServer):
        server = cls(chain=[leaf, ca.certificate], issuer=ca.certificate,
                     network=network)
        marks = []
        locked_out = 0
        for hour in range(24):
            now = NOW + hour * HOUR
            server.tick(now)
            outcome = connect(firefox, server, "whatif.example", trust, now)
            ok = outcome.verdict is Verdict.ACCEPTED
            marks.append(" ." if ok else " X")
            locked_out += 0 if ok else 1
        print(f"{server.software:16s}" + "".join(marks) +
              f"   ({locked_out}/24 h locked out)")
    print("\n'.' = page loads, 'X' = Firefox hard-fails the Must-Staple cert")


def main() -> None:
    table3()
    outage_what_if()


if __name__ == "__main__":
    main()
