"""Figure 7 — CDF of the average number of serial numbers per response.

Paper observations: 96.2% of responders answer exactly the one serial
asked about; 4.8% stuff more; 3.3% always return 20.
"""

from conftest import banner

from repro.core import fraction_at_or_below, render_cdf, responder_quality, serials_cdf


def test_fig7_serials_per_response(benchmark, bench_dataset):
    qualities = benchmark.pedantic(responder_quality, args=(bench_dataset,),
                                   rounds=1, iterations=1)
    points = serials_cdf(qualities)
    values = [v for v, _ in points]

    banner("Figure 7: CDF of serial numbers per OCSP response (per responder)")
    print(render_cdf(points, "avg serials per response"))
    single = fraction_at_or_below(values, 1.01)
    twenty = 1.0 - fraction_at_or_below(values, 19.5)
    print(f"\nresponders answering exactly 1 serial (paper: 96.2%): {single * 100:.1f}%")
    print(f"responders always answering 20 serials (paper: 3.3%): {twenty * 100:.1f}%")

    assert single > 0.90
    assert 0.01 <= twenty <= 0.08
    assert max(values) >= 19.5
