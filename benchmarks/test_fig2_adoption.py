"""Figure 2 — OCSP adoption as a function of website popularity.

Paper series: % of Alexa Top-1M domains with a certificate (HTTPS,
~75%) and % of those supporting OCSP (91.3% average), both slightly
higher for popular sites.
"""

from conftest import banner

from repro.core import figure2_adoption, render_series


def test_fig2_ocsp_adoption_by_rank(benchmark, bench_alexa):
    adoption = benchmark(figure2_adoption, bench_alexa)

    https = adoption.curves["Domains with certificate"]
    ocsp = adoption.curves["Certificates with OCSP responder"]

    banner("Figure 2: OCSP adoption vs Alexa rank (bins of 10,000)")
    print(render_series(https, "Domains with certificate (%)"))
    print(render_series(ocsp, "Certificates with OCSP responder (%)"))
    print(f"\npaper: HTTPS ~75% across the range  | measured avg: "
          f"{adoption.average('Domains with certificate'):.1f}%")
    print(f"paper: OCSP 91.3% on average        | measured avg: "
          f"{adoption.average('Certificates with OCSP responder'):.1f}%")

    assert 70 <= adoption.average("Domains with certificate") <= 80
    assert 88 <= adoption.average("Certificates with OCSP responder") <= 94
    # Popular sites adopt more (declining curve).
    assert adoption.slope_sign("Domains with certificate") == -1
    assert adoption.slope_sign("Certificates with OCSP responder") == -1
