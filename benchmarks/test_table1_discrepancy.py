"""Table 1 — CRL ↔ OCSP revocation-status discrepancies.

Paper rows: seven responders whose OCSP answers contradict their CA's
CRL — five answering Good for at least one revoked certificate, two
answering Unknown (one for all 5,375 of its revoked certificates).
Counts here are at 1:40 scale.
"""

from conftest import banner

from repro.core import render_table
from repro.scanner import TABLE1_ROWS


def test_table1_crl_ocsp_discrepancies(benchmark, bench_consistency_report):
    report = bench_consistency_report
    rows = benchmark(report.discrepant_rows)

    banner("Table 1: CRL-revoked certificates by OCSP answer (scale 1:40)")
    paper = {f"http://{url}": (unknown, good, revoked)
             for url, _, unknown, good, revoked in TABLE1_ROWS}
    table_rows = []
    for row in rows:
        paper_counts = paper.get(row.ocsp_url, ("-", "-", "-"))
        table_rows.append([
            row.ocsp_url,
            f"{row.unknown} (paper {paper_counts[0]})",
            f"{row.good} (paper {paper_counts[1]})",
            f"{row.revoked} (paper {paper_counts[2]})",
        ])
    print(render_table(["OCSP URL", "Unknown", "Good", "Revoked"], table_rows))
    print(f"\nresponses collected: {report.responses_collected}/"
          f"{report.serials_checked} (paper: 727,440/728,261 = 99.9%)")
    print(f"reason-code discrepancies (paper: ~15%, 99.99% CRL-only): "
          f"{report.reasons.differing_fraction * 100:.1f}%, "
          f"CRL-only {report.reasons.crl_only}/{report.reasons.differing}")

    assert len(rows) == 7
    assert sum(1 for r in rows if r.good > 0) == 5
    assert sum(1 for r in rows if r.unknown > 0 and r.good == 0) == 2
    assert report.responses_collected / report.serials_checked > 0.99
    assert report.reasons.crl_only == report.reasons.differing
