"""Figure 6 — CDF of the average number of certificates per OCSP response.

Paper observations: ~14.5% of responders include more than one
certificate; one responder (ocsp.cpc.gov.ae) always includes four
chains up to the root.
"""

from conftest import banner

from repro.core import certificates_cdf, fraction_at_or_below, render_cdf, responder_quality


def test_fig6_certificates_per_response(benchmark, bench_dataset):
    qualities = benchmark.pedantic(responder_quality, args=(bench_dataset,),
                                   rounds=1, iterations=1)
    points = certificates_cdf(qualities)
    values = [v for v, _ in points]

    banner("Figure 6: CDF of certificates per OCSP response (per responder)")
    print(render_cdf(points, "avg certificates per response"))
    multi = 1.0 - fraction_at_or_below(values, 1.0)
    print(f"\nresponders with >1 certificate (paper: 14.5%): {multi * 100:.1f}%")
    print(f"maximum (paper: 4, ocsp.cpc.gov.ae): {max(values):.1f}")

    assert 0.08 <= multi <= 0.25
    assert max(values) >= 3.5  # the cpc.gov.ae-style full chain
    # Majority of responders send at most one embedded certificate.
    assert fraction_at_or_below(values, 1.0) > 0.7
