"""Table 2 — browser support for OCSP Must-Staple.

Paper rows: every browser requests a stapled OCSP response; only
Firefox 60 (desktop, all three OSes) and Firefox on Android hard-fail
when a Must-Staple certificate arrives without a staple; Firefox on
iOS does not; no soft-failing browser sends its own OCSP request.
"""

from conftest import banner

from repro.browser import run_browser_tests
from repro.core import render_table


def test_table2_browser_matrix(benchmark):
    report = benchmark.pedantic(run_browser_tests, rounds=1, iterations=1)

    banner("Table 2: browser test results (Must-Staple cert, stapling off)")
    rows = []
    for row in report.rows:
        cells = row.cells()
        rows.append([
            row.policy.label,
            cells["Request OCSP response"],
            cells["Respect OCSP Must-Staple"],
            cells["Send own OCSP request"],
        ])
    print(render_table(
        ["browser", "request OCSP", "respect Must-Staple", "own OCSP request"],
        rows,
    ))
    print(f"\ncompliant browsers (paper: Firefox desktop x3 + Android): "
          f"{', '.join(report.compliant_browsers)}")

    assert all(row.requests_ocsp_response for row in report.rows)
    assert set(report.compliant_browsers) == {
        "Firefox 60 (OS X)", "Firefox 60 (Linux)", "Firefox 60 (Windows)",
        "Firefox (Android)",
    }
    assert not report.row("Firefox (iOS)").respects_must_staple
    assert all(row.sends_own_ocsp_request in (None, False)
               for row in report.rows)
