"""Chaos extension — client policies under injected fault scenarios.

The scenario × policy grid behind the paper's Section-8 question: if
browsers hard-failed on Must-Staple today, what fraction of
connections would responder misbehavior break — and how much does
soft-fail retrying or a CRL fallback buy back?
"""

from conftest import banner

from repro.runtime import default_config, run_experiment


def test_chaos_client_outcomes(benchmark):
    config = default_config("chaos-client-outcomes")

    result = benchmark.pedantic(
        run_experiment, args=("chaos-client-outcomes",),
        kwargs={"config": config}, rounds=1, iterations=1)

    grid = result.summary["grid"]
    broken = result.summary["hard_fail_broken"]
    banner("Chaos: scenario x client-policy outcomes")
    for cell, entry in grid.items():
        print(f"  {cell:45s} ok {entry['ok_fraction']:6.1%}  "
              f"broken {entry['broken_fraction']:6.1%}  "
              f"crl {entry['crl_rescue_fraction']:6.1%}  "
              f"mean {entry['mean_latency_ms']:7.1f} ms")

    # Baseline: nothing breaks, whatever the policy.
    for policy in config.policies:
        assert grid[f"baseline/{policy}"]["broken_fraction"] == 0.0
    # An OCSP-only blackout is fully absorbed by the CRL fallback;
    # losing CRL transport too (packet loss hits every host) is what
    # finally breaks hard-failing clients.
    assert grid["regional-blackout/must-staple-hard-fail"][
        "crl_rescue_fraction"] > 0.2
    assert broken["regional-blackout"] == 0.0
    assert broken["packet-loss"] > 0.0
    # No-check and soft-fail clients always proceed, by definition.
    for name in config.scenarios:
        assert grid[f"{name}/no-check"]["proceed_fraction"] == 1.0
        assert grid[f"{name}/firefox-soft-fail"]["broken_fraction"] == 0.0
