"""Section 5.4 — response freshness: on-demand generation and
non-overlapping validity windows.

Paper observations: 245/483 (51.7%) responders do not generate
responses on demand (producedAt lags receipt by > 2 minutes); 7 of
those have validity periods equal to their update interval (the
hinet/cnnic non-overlap hazard); no responder updates less often than
its validity period.

Freshness detection needs the paper's *hourly* cadence (producedAt
lags are invisible to sparse scans), so this benchmark runs its own
two-day hourly campaign instead of reusing the daily-cadence dataset.
"""

from conftest import banner

from repro.core import quality_headlines
from repro.scanner import HourlyScanner
from repro.simnet import DAY, HOUR, MEASUREMENT_START


def test_sec5_freshness(benchmark, bench_world):
    scanner = HourlyScanner(bench_world, vantages=["Virginia"], interval=HOUR)

    def run():
        dataset = scanner.run(MEASUREMENT_START, MEASUREMENT_START + 2 * DAY)
        return quality_headlines(dataset)

    headlines = benchmark.pedantic(run, rounds=1, iterations=1)

    banner("Section 5.4: response freshness (hourly, 2 days)")
    n = headlines.responders
    print(f"responders analysed: {n} (paper: 483)")
    print(f"not generating on demand (paper: 245 = 51.7%): "
          f"{headlines.not_on_demand} = {headlines.not_on_demand / n * 100:.1f}%")
    print(f"validity == update interval (paper: 7, e.g. hinet 7,200 s, "
          f"cnnic 10,800 s): {headlines.non_overlapping}")

    assert 0.30 <= headlines.not_on_demand / n <= 0.70
    assert headlines.non_overlapping >= 1
    # Non-overlapping responders are a small minority of pre-generators.
    assert headlines.non_overlapping <= headlines.not_on_demand * 0.3
