"""Figure 11 — OCSP Stapling adoption as a function of website popularity.

Paper observations: roughly 35% of OCSP-supporting Alexa domains
staple, and popular domains are more likely to.
"""

from conftest import banner

from repro.core import figure11_adoption, render_series

SERIES = "OCSP domains that support OCSP Stapling"


def test_fig11_stapling_adoption_by_rank(benchmark, bench_alexa):
    adoption = benchmark(figure11_adoption, bench_alexa)

    points = adoption.curves[SERIES]
    banner("Figure 11: OCSP Stapling adoption vs Alexa rank (bins of 10,000)")
    print(render_series(points, f"{SERIES} (%)"))
    print(f"\npaper: ~35% overall, higher when popular | "
          f"measured avg {adoption.average(SERIES):.1f}%, "
          f"top bin {points[0][1]:.1f}%, bottom bin {points[-1][1]:.1f}%")

    assert 28 <= adoption.average(SERIES) <= 42
    assert adoption.slope_sign(SERIES) == -1
    assert points[0][1] > points[-1][1]
