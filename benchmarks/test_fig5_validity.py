"""Figure 5 — percentage of unusable OCSP responses by error class.

Paper observations being regenerated:
* malformed-structure errors dominate; correctly-formed responses never
  have bad signatures or mismatched serials at scale,
* ~1.6% of responders are persistently malformed (empty / "0" / JS),
* the sheca "0"-response spikes (Apr 29, Jul 28) and the postsignum
  episode (from May 1) stand out of the baseline.
"""

from conftest import banner

from repro.core import (
    persistently_malformed_responders,
    render_series,
    validity_series,
)
from repro.scanner import ProbeOutcome
from repro.simnet import at


def test_fig5_unusable_responses(benchmark, bench_dataset):
    series = benchmark.pedantic(validity_series, args=(bench_dataset,),
                                rounds=1, iterations=1)

    banner("Figure 5: % of unusable OCSP responses by class")
    labels = {
        ProbeOutcome.MALFORMED: "ASN.1 unparseable",
        ProbeOutcome.SERIAL_MISMATCH: "serial mismatch",
        ProbeOutcome.BAD_SIGNATURE: "signature invalid",
    }
    for outcome, label in labels.items():
        points = series.series[outcome]
        print(render_series(points, f"{label} (%)", max_points=10))
        print(f"  avg {series.average(outcome):.3f}%  peak {series.peak(outcome):.3f}%")

    malformed_urls = persistently_malformed_responders(bench_dataset)
    total = len(bench_dataset.responder_urls())
    print(f"\npersistently malformed responders (paper: 8/536 = 1.6%): "
          f"{len(malformed_urls)}/{total} = {len(malformed_urls) / total * 100:.1f}%")

    # Malformed dominates the other two classes.
    assert series.average(ProbeOutcome.MALFORMED) > \
        series.average(ProbeOutcome.SERIAL_MISMATCH)
    assert series.average(ProbeOutcome.MALFORMED) > \
        series.average(ProbeOutcome.BAD_SIGNATURE)
    # Persistent-malformed population near the paper's 1.6%.
    assert 0.005 <= len(malformed_urls) / total <= 0.06
    # The postsignum episode raises the malformed rate after May 1.
    before = [p for t, p in series.series[ProbeOutcome.MALFORMED]
              if t < at(2018, 4, 30)]
    after = [p for t, p in series.series[ProbeOutcome.MALFORMED]
             if at(2018, 5, 2) < t < at(2018, 5, 11)]
    assert sum(after) / len(after) > sum(before) / len(before)
