"""Section 8 — the concluding verdict.

"Considering OCSP Must-Staple can operate only if each of the
principals in the PKI performs correctly, we conclude that, currently,
the web is not ready for OCSP Must-Staple."
"""

from conftest import banner

from repro.core import assess_readiness
from repro.datasets import CertificateCorpus, CorpusConfig, MeasurementWorld, WorldConfig
from repro.simnet import HOUR


def test_sec8_readiness_verdict(benchmark):
    world = MeasurementWorld(WorldConfig(n_responders=70, certs_per_responder=1,
                                         seed=7))
    corpus = CertificateCorpus(CorpusConfig(size=5_000, seed=2018))

    report = benchmark.pedantic(
        assess_readiness,
        kwargs=dict(world=world, corpus=corpus, scan_days=3,
                    scan_interval=6 * HOUR),
        rounds=1, iterations=1,
    )

    banner("Section 8: readiness verdict")
    print(report.render())

    assert not report.web_is_ready
    assert not report.verdict_for("Clients (web browsers)").ready
    assert not report.verdict_for("Web server software").ready
    assert not report.verdict_for(
        "Deployment (certificates with Must-Staple)").ready
