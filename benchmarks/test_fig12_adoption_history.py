"""Figure 12 — OCSP and OCSP Stapling adoption, May 2016 → September 2018.

Paper observations: both series grow steadily; the stapling series
jumps in June 2017 when Cloudflare enabled stapling (its stapled
cruise-liner-certificate domains went from 11,675 on May 18 2017 to
78,907 by June 15 2017).
"""

from conftest import banner

from repro.core import figure12_history, render_series


def test_fig12_adoption_over_time(benchmark):
    history = benchmark(figure12_history)

    banner("Figure 12: adoption over time (monthly Censys-substitute snapshots)")
    print(render_series(history.ocsp_series(), "Certificates with OCSP (%)",
                        max_points=15))
    print(render_series(history.stapling_series(), "Domains with OCSP Stapling (%)",
                        max_points=15))
    before, after = history.cloudflare_jump()
    print(f"\nCloudflare stapled domains May->June 2017 "
          f"(paper: 11,675 -> 78,907): {before:,} -> {after:,}")

    assert history.monotonic_growth("ocsp")
    assert history.monotonic_growth("stapling")
    assert after > 6 * before
    # Ends of the series match the paper's ballparks.
    assert 85 <= history.ocsp_series()[0][1] <= 90
    assert 90 <= history.ocsp_series()[-1][1] <= 96
    assert history.stapling_series()[-1][1] >= 30

    # The June-2017 month-over-month step is the largest in the series.
    stapling = [pct for _, pct in history.stapling_series()]
    steps = [b - a for a, b in zip(stapling, stapling[1:])]
    labels = [label for label, _ in history.stapling_series()][1:]
    assert labels[steps.index(max(steps))] == "2017-06"
