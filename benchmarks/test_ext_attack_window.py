"""Extension — attack windows under network adversaries.

Quantifies two of the paper's arguments:

* Section 2.3: against a soft-failing browser, an attacker who strips
  staples and blocks OCSP keeps a *revoked* certificate working
  indefinitely; Must-Staple reduces that to zero.
* Section 5.4: stapled responses carry no nonce, so an attacker can
  replay the freshest pre-revocation staple until it expires — the
  attack window *is* the responder's validity period, which is why the
  1,251-day validity the paper found is "potentially dangerous".
"""

from conftest import banner

from repro.browser import by_label
from repro.ca import CertificateAuthority, OCSPResponder, ResponderProfile
from repro.core import AttackerCapabilities, measure_attack_window
from repro.crypto import generate_keypair
from repro.simnet import DAY, HOUR, MEASUREMENT_START, Network, ocsp_service
from repro.webserver import IdealServer
from repro.x509 import TrustStore

NOW = MEASUREMENT_START


def build_site(validity: int):
    ca = CertificateAuthority.create_root(
        "ATW CA", "http://ocsp.atw.test", not_before=NOW - 365 * DAY)
    leaf = ca.issue_leaf("atw.example", generate_keypair(512, rng=6),
                         not_before=NOW - DAY, must_staple=True,
                         lifetime=400 * DAY)
    responder = OCSPResponder(
        ca, "http://ocsp.atw.test",
        ResponderProfile(update_interval=None, this_update_margin=0,
                         validity_period=validity),
        epoch_start=NOW - 7 * DAY)
    network = Network()
    network.bind("ocsp.atw.test",
                 network.add_origin("atw", "us-east", ocsp_service(responder)))
    server = IdealServer(chain=[leaf, ca.certificate], issuer=ca.certificate,
                         network=network)
    trust = TrustStore([ca.certificate])
    ca.revoke(leaf, NOW, reason=1)
    return ca, leaf, server, network, trust


def test_ext_replay_window_tracks_validity(benchmark):
    """Replay window == staple validity, across validity settings."""
    firefox = by_label()["Firefox 60 (Linux)"]
    validities = [2 * HOUR, DAY, 7 * DAY]

    def run():
        windows = {}
        for validity in validities:
            ca, leaf, server, network, trust = build_site(validity)
            outcome = measure_attack_window(
                firefox, server, leaf, ca.certificate, trust,
                AttackerCapabilities(replay_staple=True),
                revoked_at=NOW, horizon=30 * DAY, step=HOUR,
                network=network, server_tick=server.tick)
            windows[validity] = outcome.window
        return windows

    windows = benchmark.pedantic(run, rounds=1, iterations=1)

    banner("Extension: staple-replay attack window vs validity period")
    for validity, window in windows.items():
        print(f"  validity {validity / 3600:7.0f} h -> replay window "
              f"{window / 3600:7.1f} h")
    print("\nimplication: the 1,251-day validity the paper found (Fig 8) is a")
    print("1,251-day replay window against even a fully compliant browser.")

    for validity, window in windows.items():
        assert abs(window - validity) <= HOUR  # window tracks validity


def test_ext_soft_fail_vs_must_staple(benchmark):
    """Strip+block: unbounded for Chrome-style, zero for Firefox-style."""
    firefox = by_label()["Firefox 60 (Linux)"]
    chrome = by_label()["Chrome 66 (Linux)"]
    capabilities = AttackerCapabilities(strip_staple=True, block_ocsp=True)

    def run():
        results = {}
        for label, policy in (("firefox", firefox), ("chrome", chrome)):
            ca, leaf, server, network, trust = build_site(DAY)
            results[label] = measure_attack_window(
                policy, server, leaf, ca.certificate, trust, capabilities,
                revoked_at=NOW, horizon=30 * DAY, step=DAY,
                network=network, server_tick=server.tick)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    banner("Extension: strip-staple + block-OCSP attack (Section 2.3)")
    for label, outcome in results.items():
        window = "unbounded (until cert expiry)" if outcome.unbounded \
            else f"{outcome.window / 3600:.0f} h"
        print(f"  {label:8s} -> acceptance window: {window}")

    assert results["chrome"].unbounded          # soft failure is fatal
    assert results["firefox"].window == 0       # hard failure is immediate
    assert not results["firefox"].unbounded
