"""Shared benchmark fixtures.

The expensive artefacts — the 134-responder measurement world, its full
132-day scan, the Alexa/corpus samples, and the consistency report —
build once per session; each per-figure benchmark then times its
analysis stage and prints the rows/series the paper reports.

The scan and the generated datasets come through
:func:`repro.runtime.run_experiment`, so the suite exercises the same
sharded path as the CLI.  ``REPRO_BENCH_WORKERS`` parallelizes shard
execution (identical bytes at any count) and ``REPRO_BENCH_CACHE_DIR``
lets repeated suite runs reuse shard outputs.

Scale notes: the world is a 1:4 sample of the paper's 536 responders
(every named event group and fault quota scaled accordingly) and the
scan cadence is daily instead of hourly; neither changes any reported
*shape*, only wall-clock.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import (
    AlexaConfig,
    CertificateCorpus,
    CorpusConfig,
    MeasurementWorld,
    WorldConfig,
)
from repro.runtime import (
    AlexaRunConfig,
    CorpusRunConfig,
    ScanCampaignConfig,
    run_experiment,
)
from repro.scanner import (
    AlexaAvailability,
    ConsistencyConfig,
    ConsistencyWorld,
    run_consistency_scan,
)
from repro.simnet import DAY, MEASUREMENT_END, MEASUREMENT_START

_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
_CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE_DIR")


def _run(experiment_id: str, config):
    return run_experiment(experiment_id, config=config, workers=_WORKERS,
                          cache=_CACHE_DIR is not None,
                          cache_dir=_CACHE_DIR)


def banner(title: str) -> None:
    """Print a section banner into the bench output."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


@pytest.fixture(scope="session")
def bench_world():
    """The full-scale (1:4) measurement world."""
    return MeasurementWorld(WorldConfig(n_responders=134, certs_per_responder=2,
                                        seed=7))


@pytest.fixture(scope="session")
def bench_dataset():
    """The complete Apr 25 - Sep 4 scan at daily cadence (~212k probes)."""
    config = ScanCampaignConfig(
        world=WorldConfig(n_responders=134, certs_per_responder=2, seed=7),
        interval=DAY, start=MEASUREMENT_START, end=MEASUREMENT_END)
    return _run("fig3", config).artifacts["dataset"]


@pytest.fixture(scope="session")
def bench_alexa():
    """A 20,000-domain Alexa Top-1M sample."""
    result = _run("fig2", AlexaRunConfig(
        alexa=AlexaConfig(size=20_000, seed=404)))
    return result.artifacts["alexa"]


@pytest.fixture(scope="session")
def bench_corpus():
    """A 20,000-record Censys-substitute corpus."""
    result = _run("sec4-deployment", CorpusRunConfig(
        corpus=CorpusConfig(size=20_000, seed=2018)))
    return result.artifacts["corpus"]


@pytest.fixture(scope="session")
def bench_alexa_availability(bench_world):
    """Alexa domains mapped onto the measurement world."""
    return AlexaAvailability(bench_world, seed=11)


@pytest.fixture(scope="session")
def bench_consistency_report():
    """The scaled CRL↔OCSP cross-check (1:40)."""
    world = ConsistencyWorld(ConsistencyConfig(scale=40))
    return run_consistency_scan(world)
