"""Shared benchmark fixtures.

The expensive artefacts — the 134-responder measurement world, its full
132-day scan, the Alexa/corpus samples, and the consistency report —
build once per session; each per-figure benchmark then times its
analysis stage and prints the rows/series the paper reports.

Scale notes: the world is a 1:4 sample of the paper's 536 responders
(every named event group and fault quota scaled accordingly) and the
scan cadence is daily instead of hourly; neither changes any reported
*shape*, only wall-clock.
"""

from __future__ import annotations

import pytest

from repro.datasets import (
    AlexaConfig,
    AlexaModel,
    CertificateCorpus,
    CorpusConfig,
    MeasurementWorld,
    WorldConfig,
)
from repro.scanner import (
    AlexaAvailability,
    ConsistencyConfig,
    ConsistencyWorld,
    HourlyScanner,
    run_consistency_scan,
)
from repro.simnet import DAY, MEASUREMENT_END, MEASUREMENT_START


def banner(title: str) -> None:
    """Print a section banner into the bench output."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


@pytest.fixture(scope="session")
def bench_world():
    """The full-scale (1:4) measurement world."""
    return MeasurementWorld(WorldConfig(n_responders=134, certs_per_responder=2,
                                        seed=7))


@pytest.fixture(scope="session")
def bench_dataset(bench_world):
    """The complete Apr 25 - Sep 4 scan at daily cadence (~212k probes)."""
    scanner = HourlyScanner(bench_world, interval=DAY)
    return scanner.run(MEASUREMENT_START, MEASUREMENT_END)


@pytest.fixture(scope="session")
def bench_alexa():
    """A 20,000-domain Alexa Top-1M sample."""
    return AlexaModel(AlexaConfig(size=20_000, seed=404))


@pytest.fixture(scope="session")
def bench_corpus():
    """A 20,000-record Censys-substitute corpus."""
    return CertificateCorpus(CorpusConfig(size=20_000, seed=2018))


@pytest.fixture(scope="session")
def bench_alexa_availability(bench_world):
    """Alexa domains mapped onto the measurement world."""
    return AlexaAvailability(bench_world, seed=11)


@pytest.fixture(scope="session")
def bench_consistency_report():
    """The scaled CRL↔OCSP cross-check (1:40)."""
    world = ConsistencyWorld(ConsistencyConfig(scale=40))
    return run_consistency_scan(world)
