"""Extension — exposure windows across revocation mechanisms.

Places the paper's protagonist in the design space its Section 3
surveys: CRLs, soft-fail OCSP, OCSP Must-Staple, and short-lived
certificates (Topalovic et al.), compared on how long a revoked
certificate keeps being accepted — with and without a network attacker.
"""

from conftest import banner

from repro.core import MechanismParameters, compare_mechanisms, render_table
from repro.simnet import DAY


def test_ext_revocation_alternatives(benchmark):
    parameters = MechanismParameters(ocsp_validity=4 * DAY,
                                     short_lived_lifetime=3 * DAY)
    rows = benchmark.pedantic(compare_mechanisms, args=(parameters,),
                              rounds=1, iterations=1)

    def fmt(seconds):
        if seconds is None:
            return "unbounded"
        return f"{seconds / DAY:.1f} d"

    banner("Extension: exposure window after revocation, by mechanism")
    print(render_table(
        ["mechanism", "benign", "attacked", "notes"],
        [[r.mechanism, fmt(r.benign_window), fmt(r.attacked_window), r.notes]
         for r in rows],
    ))

    by_name = {r.mechanism: r for r in rows}
    crl = by_name["CRL (soft-fail client)"]
    ocsp = by_name["OCSP (soft-fail client)"]
    must_staple = by_name["OCSP Must-Staple (hard-fail client)"]
    short = by_name["Short-lived certificates"]

    # Soft-fail mechanisms collapse under an attacker.
    assert crl.attacked_window is None
    assert ocsp.attacked_window is None
    # Must-Staple bounds the attacker at the staple validity.
    assert must_staple.attacked_window is not None
    assert abs(must_staple.attacked_window - parameters.ocsp_validity) <= 3600
    # Short-lived certificates bound exposure by construction.
    assert short.attacked_window == parameters.short_lived_lifetime
    # Under attack, Must-Staple with a sane validity beats soft-fail OCSP.
    assert must_staple.attacked_window < 10 * DAY
