"""Figure 4 — Alexa Top-1M domains unable to obtain an OCSP response.

Paper observations being regenerated:
* the April 25 Comodo outage left ~163K domains without OCSP from
  Oregon/Sydney/Seoul for two hours,
* the August 27 Digicert outage hit ~77K domains, Seoul only,
* São Paulo is persistently unable to reach the responders of ~318
  domains (the *.digitalcertvalidation.com 404s, wellsfargo among them).
"""

from conftest import banner

from repro.simnet import at


def test_fig4_outage_impact(benchmark, bench_alexa_availability):
    availability = bench_alexa_availability

    comodo_hour = at(2018, 4, 25, 19, 30)
    digicert_hour = at(2018, 8, 27, 11)
    quiet_hour = at(2018, 6, 15, 3)
    floor_hours = [at(2018, 6, day, hour) for day in (5, 12, 19, 26)
                   for hour in (3, 15)]

    def run():
        return {
            "comodo_oregon": availability.domains_unable("Oregon", comodo_hour),
            "comodo_virginia": availability.domains_unable("Virginia", comodo_hour),
            "digicert_seoul": availability.domains_unable("Seoul", digicert_hour),
            "digicert_paris": availability.domains_unable("Paris", digicert_hour),
            "saopaulo_quiet": availability.persistent_floor("Sao-Paulo", floor_hours),
            "virginia_quiet": availability.persistent_floor("Virginia", floor_hours),
        }

    counts = benchmark.pedantic(run, rounds=1, iterations=1)

    banner("Figure 4: Alexa domains unable to fetch OCSP responses")
    rows = [
        ("Comodo outage (Apr 25), Oregon", "~163,000", counts["comodo_oregon"]),
        ("Comodo outage (Apr 25), Virginia", "(unaffected)", counts["comodo_virginia"]),
        ("Digicert outage (Aug 27), Seoul", "~77,000", counts["digicert_seoul"]),
        ("Digicert outage (Aug 27), Paris", "(unaffected)", counts["digicert_paris"]),
        ("persistent floor, São Paulo", "~318", counts["saopaulo_quiet"]),
        ("persistent floor, Virginia", "0", counts["virginia_quiet"]),
    ]
    for label, paper, measured in rows:
        print(f"  {label:38s} paper {paper:>12s}   measured {measured:>12,.0f}")

    assert counts["comodo_oregon"] > 120_000
    assert counts["comodo_oregon"] > 5 * counts["comodo_virginia"]
    assert counts["digicert_seoul"] > 50_000
    assert counts["digicert_seoul"] > 3 * counts["digicert_paris"]
    assert 100 <= counts["saopaulo_quiet"] <= 5_000  # paper ~318
    assert counts["saopaulo_quiet"] > counts["virginia_quiet"]
