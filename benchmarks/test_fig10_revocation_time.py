"""Figure 10 — CDF of (OCSP revocation time - CRL revocation time).

Paper observations: only 0.15% of responses differ at all; 14.7% of the
differing ones are negative (OCSP earlier), bounded at -43,200 s;
ocsp.msocsp.com lags its CRL by 7 hours to 9 days for every revoked
certificate; the tail exceeds 137M seconds (over 4 years).
"""

from conftest import banner

from repro.core import cdf_points, render_cdf
from repro.simnet import DAY, HOUR


def test_fig10_revocation_time_deltas(benchmark, bench_consistency_report):
    report = bench_consistency_report

    def analyze():
        deltas = [d.delta for d in report.time_deltas if d.delta != 0]
        return deltas, cdf_points(deltas)

    deltas, points = benchmark(analyze)

    banner("Figure 10: OCSP revocation time - CRL revocation time (seconds)")
    print(render_cdf(points, "nonzero deltas"))
    differing = report.differing_time_fraction()
    negative = [d for d in deltas if d < 0]
    print(f"\nresponses with differing time (paper: 0.15%): {differing * 100:.2f}%")
    print(f"negative deltas among differing (paper: 14.7%): "
          f"{len(negative) / len(deltas) * 100:.1f}%")
    print(f"most negative (paper x-axis starts at -43,200): {min(deltas):,}")
    print(f"maximum (paper: >137M seconds, over 4 years): {max(deltas):,}")

    msocsp = [d.delta for d in report.time_deltas if "msocsp" in d.ocsp_url]

    assert differing < 0.02               # differing times are rare
    assert negative                        # the negative tail exists
    assert min(deltas) >= -43_200          # bounded like the paper's axis
    assert max(deltas) >= 137_000_000      # the 4-year tail
    assert msocsp and all(7 * HOUR <= d <= 9 * DAY for d in msocsp)
    assert 0.05 <= len(negative) / len(deltas) <= 0.40
