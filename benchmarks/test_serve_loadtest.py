"""Daemon extension — responder serving byte-identity and throughput.

The ``serve-loadtest`` experiment replays a seeded corpus-derived
request stream two ways: through the daemon's serving application
(pre-signed cache + micro-batched signing) and through the in-process
transport-neutral responder core.  The two must be byte-identical for
every request — the whole point of the transport-neutral API — and the
warm-cache path must sustain daemon-grade throughput.
"""

from conftest import banner

from repro.runtime import default_config, run_experiment


def test_serve_loadtest(benchmark):
    config = default_config("serve-loadtest")

    result = benchmark.pedantic(
        run_experiment, args=("serve-loadtest",),
        kwargs={"config": config}, rounds=1, iterations=1)

    summary = result.summary
    banner("Serve load test: identity + warm-cache throughput")
    print(f"  requests: {summary['requests']}  "
          f"mismatches: {summary['identity_mismatches']}")
    print(f"  warm-cache: {summary['req_per_s']:.0f} req/s  "
          f"p50 {summary['p50_ms']:.3f} ms  p99 {summary['p99_ms']:.3f} ms")
    print(f"  cache hit rate: {summary['cache_hit_rate']:.3f}  "
          f"largest batch: {summary['largest_batch']}")

    # The whole point: the daemon path answers byte-identically to the
    # in-process responder core for every request in the stream.
    assert summary["byte_identical"]
    assert summary["identity_mismatches"] == 0
    assert summary["requests"] == config.requests
    # Every request got an HTTP answer (OCSP errors are 200s with an
    # error envelope; nothing 4xx/5xx in clean traffic).
    assert set(summary["status_counts"]) == {"200"}
    # The pre-signed cache actually carries the warm replay, and the
    # headline throughput target holds with a cold-start safety margin.
    assert summary["cache_hit_rate"] > 0.9
    assert summary["req_per_s"] >= 10_000
    assert summary["p99_ms"] < 10.0
