"""Extension — OCSP response size vs embedded certificates.

Quantifies the Figure-6 aside: superfluous certificates "typically
only serve to make the size of the OCSP response bigger" (the
cpc.gov.ae responder shipping four chains being the extreme), and
contrasts the result with the paper's 76 MB CRL observation.
"""

from conftest import banner

from repro.core import responder_quality, size_by_certificate_count


def test_ext_response_size(benchmark, bench_dataset):
    qualities = benchmark.pedantic(responder_quality, args=(bench_dataset,),
                                   rounds=1, iterations=1)
    by_count = size_by_certificate_count(qualities)

    banner("Extension: OCSP response size by embedded-certificate count")
    for count, size in by_count.items():
        print(f"  {count} certificate(s): avg {size:7.0f} bytes")
    baseline = by_count.get(0) or by_count.get(1)
    heaviest = max(by_count.values())
    print(f"\nsuperfluous-chain responders inflate responses "
          f"{heaviest / baseline:.1f}x over the lean baseline")
    print("(compare: a full CRL download can reach 76 MB — paper Section 2.2)")

    # More embedded certificates => bigger responses, monotonically.
    counts = sorted(by_count)
    sizes = [by_count[c] for c in counts]
    assert all(b > a for a, b in zip(sizes, sizes[1:]))
    assert heaviest / baseline > 2.0
    # Even the bloated OCSP responses are tiny next to CRLs.
    assert heaviest < 10_000
