"""Table 3 — web server OCSP Stapling implementation correctness.

Paper rows: Apache 2.4.18 fails prefetch (pauses the handshake),
caches, ignores nextUpdate, and drops its cache on responder errors;
Nginx 1.13.12 fails prefetch (first client gets nothing) but respects
nextUpdate and retains the cache on errors.  The 'ideal' model
implements the paper's Section-8 recommendation and passes everything.
"""

from conftest import banner

from repro.core import render_table
from repro.webserver import (
    ApacheServer,
    EXPERIMENTS,
    IdealServer,
    NginxServer,
    run_conformance,
)

PAPER = {
    "apache-2.4.18": ["no (pause conn.)", "yes", "no", "no"],
    "nginx-1.13.12": ["no (provide no resp.)", "yes", "yes", "yes"],
}


def test_table3_webserver_conformance(benchmark):
    def run_all():
        return {cls.software: run_conformance(cls)
                for cls in (ApacheServer, NginxServer, IdealServer)}

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    banner("Table 3: web server stapling conformance")
    rows = []
    for software, report in reports.items():
        cells = report.as_row()
        rows.append([software, *[cells[name] for name in EXPERIMENTS]])
    print(render_table(["software", *EXPERIMENTS], rows))
    print("\npaper: Apache fails 3/4 (pause, expired cache, drop-on-error); "
          "Nginx fails only prefetch.")

    apache = reports["apache-2.4.18"]
    assert not apache.result("Prefetch OCSP response").passed
    assert apache.result("Prefetch OCSP response").note == "pause conn."
    assert apache.result("Cache OCSP response").passed
    assert not apache.result("Respect nextUpdate in cache").passed
    assert not apache.result("Retain OCSP response on error").passed

    nginx = reports["nginx-1.13.12"]
    assert not nginx.result("Prefetch OCSP response").passed
    assert nginx.result("Prefetch OCSP response").note == "provide no resp."
    assert nginx.result("Cache OCSP response").passed
    assert nginx.result("Respect nextUpdate in cache").passed
    assert nginx.result("Retain OCSP response on error").passed

    assert all(r.passed for r in reports["ideal"].results)
