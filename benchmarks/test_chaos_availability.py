"""Chaos extension — availability under injected fault scenarios.

Extends Figures 3/4: the same hourly scan replayed under each named
fault scenario, reporting per-scenario availability, added latency,
and the never-reachable floor.  The baseline scenario is the empty
fault plan and must agree exactly with the plain scan.
"""

from conftest import banner

from repro.runtime import default_config, run_experiment


def test_chaos_availability(benchmark):
    config = default_config("chaos-availability")

    result = benchmark.pedantic(
        run_experiment, args=("chaos-availability",),
        kwargs={"config": config}, rounds=1, iterations=1)

    scenarios = result.summary["scenarios"]
    banner("Chaos: availability under injected fault scenarios")
    for name, entry in scenarios.items():
        print(f"  {name:22s} failure {entry['overall_failure_rate']:6.2f}%  "
              f"unusable {entry['unusable_rate']:6.2f}%  "
              f"mean {entry['mean_elapsed_ms']:8.1f} ms  "
              f"added {entry.get('added_latency_ms', 0.0):+8.1f} ms")

    baseline = scenarios["baseline"]
    assert baseline["added_failure_rate"] == 0.0
    # Every injected scenario hurts at least one headline number.
    for name, entry in scenarios.items():
        if name == "baseline":
            continue
        assert (entry["added_failure_rate"] > 0.0
                or entry["added_unusable_rate"] > 0.0
                or entry["added_latency_ms"] > 0.0), name
    assert scenarios["regional-blackout"]["overall_failure_rate"] > \
        baseline["overall_failure_rate"]
    assert scenarios["heavy-tail-latency"]["added_latency_ms"] > 0.0
    # Stale serving leaves transport untouched but breaks verification.
    assert scenarios["stale-responder"]["added_failure_rate"] == 0.0
    assert scenarios["stale-responder"]["added_unusable_rate"] > 0.0
