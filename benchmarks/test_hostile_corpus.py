"""Robustness extension — parser survival under structure-aware mutation.

Extends Figure 5's "malformed response" class: a seeded hostile corpus
of structure-aware DER mutants (certificate, OCSP response, CRL) is
pushed through the full parse -> lint -> verify pipeline.  Every
mutant must land in the classification taxonomy — a mutant that
escapes with anything other than an ``ASN1Error`` is a parser bug —
and every survivor must round-trip decode -> re-encode -> decode to a
fixed point.
"""

from conftest import banner

from repro.runtime import default_config, run_experiment


def test_hostile_corpus(benchmark):
    config = default_config("hostile-corpus")

    result = benchmark.pedantic(
        run_experiment, args=("hostile-corpus",),
        kwargs={"config": config}, rounds=1, iterations=1)

    summary = result.summary
    banner("Hostile corpus: mutation-survival matrix")
    print(f"  mutants: {summary['mutants']}  "
          f"survival rate: {summary['survival_rate']:.4f}")
    outcomes = summary["outcomes"]
    for outcome, count in outcomes.items():
        print(f"  {outcome:22s} {count:6d}")
    for family, counts in summary["matrix"].items():
        print(f"  {family:16s} "
              + "  ".join(f"{outcome[:5]}={n}"
                          for outcome, n in counts.items() if n))

    # The whole point: nothing escapes the taxonomy.
    assert summary["unexpected_exceptions"] == 0, summary["unexpected_detail"]
    # Survivors must re-encode byte-identically (decode/encode fixed point).
    assert summary["fixed_point_failures"] == 0
    # The corpus actually exercises the pipeline end to end.
    assert summary["mutants"] == (
        config.mutants_per_kind * len(config.kinds))
    assert outcomes["parse_error"] > 0
    assert outcomes["lint_error"] > 0
    # Structural bombs must be rejected at parse time, never survive.
    for family in ("depth-bomb", "length-bomb"):
        counts = summary["matrix"][family]
        assert counts["survived"] == 0, (family, counts)
        assert counts["unexpected_exception"] == 0, (family, counts)
