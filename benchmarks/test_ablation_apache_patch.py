"""Ablation — the effect of fixing the Apache bugs the authors reported.

The paper filed Bugzilla #62400 for Apache's serving of expired cached
responses and criticised its drop-on-error behaviour.  This ablation
runs the Table-3 conformance suite over stock Apache and a patched
counterfactual, and replays the outage what-if to count how many
Firefox-hours of lockout the patch saves a Must-Staple site.
"""

from conftest import banner

from repro.browser import by_label, connect, Verdict
from repro.ca import CertificateAuthority, OCSPResponder, ResponderProfile
from repro.crypto import generate_keypair
from repro.simnet import (DAY, HOUR, MEASUREMENT_START, FailureKind, Network,
                          OutageWindow, ocsp_service)
from repro.webserver import (
    ApachePatchedServer,
    ApacheServer,
    run_conformance,
)
from repro.x509 import TrustStore

NOW = MEASUREMENT_START


def _lockout_hours(server_class) -> int:
    ca = CertificateAuthority.create_root("Patch CA", "http://ocsp.patch.test",
                                          not_before=NOW - 365 * DAY)
    leaf = ca.issue_leaf("patch.example", generate_keypair(512, rng=8),
                         not_before=NOW - DAY, must_staple=True)
    responder = OCSPResponder(
        ca, "http://ocsp.patch.test",
        ResponderProfile(update_interval=None, this_update_margin=HOUR,
                         validity_period=DAY),
        epoch_start=NOW - 7 * DAY)
    network = Network()
    origin = network.add_origin("patch", "us-east", ocsp_service(responder))
    network.bind("ocsp.patch.test", origin)
    origin.add_outage(OutageWindow(NOW + 6 * HOUR, NOW + 12 * HOUR,
                                   kind=FailureKind.TCP))
    server = server_class(chain=[leaf, ca.certificate], issuer=ca.certificate,
                          network=network)
    firefox = by_label()["Firefox 60 (Linux)"]
    trust = TrustStore([ca.certificate])
    locked = 0
    for hour in range(24):
        outcome = connect(firefox, server, "patch.example", trust,
                          NOW + hour * HOUR)
        if outcome.verdict is not Verdict.ACCEPTED:
            locked += 1
    return locked


def test_ablation_apache_patch(benchmark):
    def run():
        return {
            "stock": (run_conformance(ApacheServer), _lockout_hours(ApacheServer)),
            "patched": (run_conformance(ApachePatchedServer),
                        _lockout_hours(ApachePatchedServer)),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    banner("Ablation: Apache stock vs the authors' reported fixes")
    for label, (report, lockout) in results.items():
        failed = [r.name for r in report.results if not r.passed]
        print(f"  {label:8s} fails: {', '.join(failed) or 'none'}")
        print(f"  {label:8s} Firefox lockout during a 6h responder outage: "
              f"{lockout}/24 h")

    stock_report, stock_lockout = results["stock"]
    patched_report, patched_lockout = results["patched"]
    # The patch fixes exactly the two reported bugs; the prefetch gap
    # (a design issue, not a bug report) remains.
    assert not stock_report.result("Respect nextUpdate in cache").passed
    assert patched_report.result("Respect nextUpdate in cache").passed
    assert not stock_report.result("Retain OCSP response on error").passed
    assert patched_report.result("Retain OCSP response on error").passed
    assert not patched_report.result("Prefetch OCSP response").passed
    # And the patch eliminates the outage lockout entirely (the cached
    # response outlives the 6-hour outage).
    assert stock_lockout >= 5
    assert patched_lockout == 0
