"""Figure 9 — CDF of (receipt time - thisUpdate) per responder.

Paper observations: 17.2% of responders return responses with *no*
margin (thisUpdate == receipt time, so clients with slightly slow
clocks reject them); 3% even return future thisUpdate values; no
expired-nextUpdate responses were observed.
"""

from conftest import banner

from repro.core import margin_cdf, quality_headlines, render_cdf, responder_quality
from repro.scanner import ProbeOutcome


def test_fig9_thisupdate_margin(benchmark, bench_dataset):
    qualities = benchmark.pedantic(responder_quality, args=(bench_dataset,),
                                   rounds=1, iterations=1)
    points = margin_cdf(qualities)
    headlines = quality_headlines(bench_dataset)

    banner("Figure 9: CDF of T_received - T_thisUpdate per responder (seconds)")
    print(render_cdf(points, "margin (min over probes)"))
    n = headlines.responders
    print(f"\nzero-margin responders (paper: 85/494 = 17.2%): "
          f"{headlines.zero_margin}/{n} = {headlines.zero_margin / n * 100:.1f}%")
    print(f"future-thisUpdate responders (paper: 15 = 3%): "
          f"{headlines.future_this_update}/{n} = "
          f"{headlines.future_this_update / n * 100:.1f}%")

    expired = sum(1 for r in bench_dataset.records
                  if r.outcome is ProbeOutcome.EXPIRED)
    print(f"expired-nextUpdate responses (paper: none observed): {expired}")

    assert 0.10 <= headlines.zero_margin / n <= 0.26
    assert 0.01 <= headlines.future_this_update / n <= 0.07
    # Zero-margin responders show min-margin <= 0 in the CDF.
    values = [v for v, _ in points]
    assert sum(1 for v in values if v <= 0) >= headlines.zero_margin
    # Comfortable margins exist too (the long right side of the CDF).
    assert max(values) > 3600
