"""Ablation — RSA key size (DESIGN.md design choice).

The simulation defaults to 512-bit keys.  This ablation confirms the
choice only affects wall-clock, not semantics: the full
sign/verify/tamper behaviour is identical at 512, 1024, and 2048 bits,
while cost grows steeply.
"""

import time

from conftest import banner

from repro.crypto import generate_keypair, is_valid, sign, verify


def _roundtrip(bits: int, seed: int):
    key = generate_keypair(bits, rng=seed)
    signature = sign(key, b"ocsp response bytes")
    verify(key.public_key, b"ocsp response bytes", signature)
    assert not is_valid(key.public_key, b"tampered bytes", signature)
    return key


def test_ablation_key_size(benchmark):
    results = {}
    for bits in (512, 1024, 2048):
        t0 = time.perf_counter()
        key = _roundtrip(bits, seed=bits)
        keygen_ms = (time.perf_counter() - t0) * 1000
        t0 = time.perf_counter()
        for _ in range(20):
            sign(key, b"x")
        sign_ms = (time.perf_counter() - t0) / 20 * 1000
        results[bits] = (keygen_ms, sign_ms)

    benchmark(sign, _roundtrip(512, seed=512), b"benchmark payload")

    banner("Ablation: RSA key size (semantics identical, cost differs)")
    for bits, (keygen_ms, sign_ms) in results.items():
        print(f"  {bits:5d} bits: keygen+roundtrip {keygen_ms:8.1f} ms, "
              f"sign {sign_ms:6.2f} ms")

    # Semantics held at every size (asserted inside _roundtrip); cost
    # grows with key size.
    assert results[2048][1] > results[512][1]
