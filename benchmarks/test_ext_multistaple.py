"""Extension — RFC 6961 multi-stapling (Multiple Certificate Status).

Paper Section 2.3: single stapling "only allows the revocation status
for the leaf certificate to be included"; RFC 6961 fixes that but "has
yet to see wide adoption".  This experiment shows what adoption buys:
with a revoked *intermediate*, a single-staple client learns nothing
while a status_request_v2 client sees the revocation immediately.
"""

from conftest import banner

from repro.ca import CertificateAuthority, OCSPResponder, ResponderProfile
from repro.crypto import generate_keypair
from repro.simnet import DAY, HOUR, MEASUREMENT_START, Network, ocsp_service
from repro.tls import ClientHello
from repro.webserver import MultiStapleServer, verify_chain_staples

NOW = MEASUREMENT_START


def build():
    root = CertificateAuthority.create_root(
        "MS Root", "http://ocsp.msroot.test", not_before=NOW - 3 * 365 * DAY)
    intermediate = root.create_intermediate("MS Intermediate",
                                            "http://ocsp.msint.test")
    leaf = intermediate.issue_leaf("multi.example", generate_keypair(512, rng=5),
                                   not_before=NOW - DAY)
    network = Network()
    for name, authority in (("msroot", root), ("msint", intermediate)):
        responder = OCSPResponder(
            authority, f"http://ocsp.{name}.test",
            ResponderProfile(update_interval=None, this_update_margin=HOUR),
            epoch_start=NOW - 7 * DAY)
        network.bind(f"ocsp.{name}.test",
                     network.add_origin(f"{name}-ocsp", "us-east", ocsp_service(responder)))
    server = MultiStapleServer(
        chain=[leaf, intermediate.certificate, root.certificate],
        issuer=intermediate.certificate, network=network)
    issuers = [intermediate.certificate, root.certificate, root.certificate]
    return root, intermediate, leaf, server, issuers


def test_ext_multistaple_detects_revoked_intermediate(benchmark):
    def run():
        root, intermediate, leaf, server, issuers = build()
        server.tick(NOW)
        v1_hello = ClientHello("multi.example", status_request=True)
        v2_hello = ClientHello("multi.example", status_request=True,
                               status_request_v2=True)

        before_v2 = verify_chain_staples(
            server.handle_connection(v2_hello, NOW), issuers, NOW)

        # Intermediate CA compromise: the root revokes it.
        root.revoke(intermediate.certificate, NOW + HOUR, reason=2)
        server.cache = None
        server._chain_cache.clear()
        server.tick(NOW + 2 * HOUR)

        after_v1 = server.handle_connection(v1_hello, NOW + 2 * HOUR)
        after_v2 = verify_chain_staples(
            server.handle_connection(v2_hello, NOW + 2 * HOUR),
            issuers, NOW + 2 * HOUR)
        return before_v2, after_v1, after_v2

    before_v2, after_v1, after_v2 = benchmark.pedantic(run, rounds=1, iterations=1)

    banner("Extension: RFC 6961 multi-stapling vs a revoked intermediate")
    print(f"  healthy chain, v2 staple verdicts:   {before_v2}")
    print(f"  after intermediate revocation, v1:   leaf staple only, "
          f"present={after_v1.stapled_ocsp is not None} "
          f"(revocation invisible)")
    print(f"  after intermediate revocation, v2:   {after_v2} "
          f"(chain element 1 flagged)")

    # Healthy: leaf + intermediate verified good; root has no staple.
    assert before_v2[0] is True and before_v2[1] is True and before_v2[2] is None
    # v1 (single staple): the leaf status is still GOOD — the client
    # cannot see the intermediate's revocation from the staple.
    assert after_v1.stapled_ocsp is not None
    assert after_v1.stapled_ocsp_chain is None
    # v2: the intermediate's staple reports the revocation.
    assert after_v2[0] is True
    assert after_v2[1] is False
