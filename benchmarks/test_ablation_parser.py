"""Ablation — strict vs lenient DER parsing (DESIGN.md design choice).

The reproduction classifies malformed responses with a *strict* DER
parser.  This ablation shows the choice is load-bearing at the
BER-tolerance margin (lenient parsing accepts encodings DER forbids)
while both reject the paper's observed garbage ("", "0", JS pages).
"""

from conftest import banner

from repro.asn1 import Reader, encoder
from repro.asn1.errors import ASN1Error
from repro.ocsp import OCSPResponse


GARBAGE_BODIES = [b"", b"0", b"<html><script>x</script></html>", b"\x30\x82"]


def _parse_ok(body: bytes, lenient: bool) -> bool:
    try:
        OCSPResponse.from_der(body, lenient=lenient)
        return True
    except (ASN1Error, ValueError):
        return False


def test_ablation_strict_vs_lenient_parsing(benchmark, bench_dataset):
    # A BER-but-not-DER integer (long-form length for a short value).
    ber_integer = b"\x02\x81\x01\x05"

    def strict_rejections():
        strict = sum(1 for body in GARBAGE_BODIES if not _parse_ok(body, False))
        return strict

    strict = benchmark(strict_rejections)
    lenient = sum(1 for body in GARBAGE_BODIES if not _parse_ok(body, True))

    banner("Ablation: strict vs lenient DER parsing")
    print(f"garbage bodies rejected: strict {strict}/{len(GARBAGE_BODIES)}, "
          f"lenient {lenient}/{len(GARBAGE_BODIES)}")

    strict_reader_fails = False
    try:
        Reader(ber_integer).read_integer()
    except ASN1Error:
        strict_reader_fails = True
    lenient_value = Reader(ber_integer, lenient=True).read_integer()
    print(f"BER long-form integer: strict rejects={strict_reader_fails}, "
          f"lenient decodes to {lenient_value}")

    # Both reject outright garbage...
    assert strict == len(GARBAGE_BODIES)
    assert lenient == len(GARBAGE_BODIES)
    # ...but only strict enforces canonical DER.
    assert strict_reader_fails and lenient_value == 5

    # And on the real scan corpus, every successful response parsed
    # strictly — so leniency would not change Figure 5's happy path.
    from repro.scanner import ProbeOutcome
    ok = sum(1 for r in bench_dataset.records if r.outcome is ProbeOutcome.OK)
    assert ok > 0
