"""Extension — OCSP lookup latency, direct vs CDN-fronted.

Reproduces the Section-3 survey's before/after: "Stark et al. observed
that the median latency for OCSP checks is 291 ms in 2012.  In 2016,
Zhu et al. ... reported a median latency of 20 ms — a significant
improvement due to 94% of the requests being fronted by CDNs."
"""

from conftest import banner

from repro.core import measure_cdn_latency, measure_direct_latency
from repro.datasets import MeasurementWorld, WorldConfig


def test_ext_lookup_latency(benchmark):
    world = MeasurementWorld(WorldConfig(n_responders=60, certs_per_responder=1,
                                         seed=7))

    def run():
        direct = measure_direct_latency(world, hours=12)
        cdn = measure_cdn_latency(world, hours=12)
        return direct, cdn

    direct, cdn = benchmark.pedantic(run, rounds=1, iterations=1)

    banner("Extension: OCSP lookup latency (Section 3 survey numbers)")
    print(f"  direct      median {direct.median_ms:6.0f} ms  "
          f"p90 {direct.percentile_ms(90):6.0f} ms  (paper survey: 291 ms, 2012)")
    print(f"  CDN-fronted median {cdn.median_ms:6.0f} ms  "
          f"p90 {cdn.percentile_ms(90):6.0f} ms  (paper survey: 20 ms, 2016)")
    hit_fraction = sum(1 for s in cdn.samples_ms if s <= 20) / len(cdn)
    print(f"  CDN lookups answered at the edge: {hit_fraction * 100:.0f}% "
          f"(Zhu et al.: 94% fronted)")

    # Shape: CDN fronting cuts the median by an order of magnitude.
    assert 150 <= direct.median_ms <= 500
    assert cdn.median_ms <= 30
    assert direct.median_ms / cdn.median_ms > 5
    assert hit_fraction > 0.80
