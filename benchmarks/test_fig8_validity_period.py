"""Figure 8 — CDF of OCSP response validity periods (nextUpdate - thisUpdate).

Paper observations: consistent across all six vantage points; 9.1% of
responders always leave nextUpdate blank (treated as infinite); 2% use
periods over a month; the extreme reaches 108,130,800 s (1,251 days);
the median sits around a week.
"""

import math

from conftest import banner

from repro.core import render_cdf, responder_quality, validity_cdf


def test_fig8_validity_period(benchmark, bench_dataset):
    qualities = benchmark.pedantic(responder_quality, args=(bench_dataset,),
                                   rounds=1, iterations=1)
    points = validity_cdf(qualities)
    values = [v for v, _ in points]
    finite = [v for v in values if v != math.inf]

    banner("Figure 8: CDF of validity period per responder (seconds)")
    print(render_cdf([(v, f) for v, f in points if v != math.inf],
                     "validity period (finite)"))
    blank = sum(1 for v in values if v == math.inf) / len(values)
    month = 30 * 86400
    over_month = sum(1 for v in finite if v > month) / len(values)
    print(f"\nblank nextUpdate (paper: 9.1%): {blank * 100:.1f}%")
    print(f"validity > 1 month (paper: 2%): {over_month * 100:.1f}%")
    print(f"maximum finite validity (paper: 108,130,800 s = 1,251 days): "
          f"{max(finite):,.0f} s = {max(finite) / 86400:,.0f} days")
    median = sorted(finite)[len(finite) // 2]
    print(f"median validity (paper conclusion: ~a week): {median / 86400:.1f} days")

    assert 0.04 <= blank <= 0.16
    assert 0.005 <= over_month <= 0.06
    assert max(finite) == 108_130_800  # the paper's exact extreme
    assert 3 * 86400 <= median <= 10 * 86400

    # Cross-vantage consistency: per-vantage CDFs agree (the paper notes
    # "validity periods are consistent over six different vantage points").
    from repro.scanner import ScanDataset
    by_vantage = {}
    for vantage in bench_dataset.vantages:
        subset = ScanDataset(records=bench_dataset.by_vantage(vantage))
        quality = responder_quality(subset)
        finite_v = [q.avg_validity for q in quality.values()
                    if q.avg_validity not in (None, math.inf)]
        by_vantage[vantage] = sorted(finite_v)[len(finite_v) // 2]
    medians = list(by_vantage.values())
    assert max(medians) - min(medians) < 2 * 86400
