"""Figure 3 — fraction of successful OCSP requests per vantage point.

Paper observations being regenerated:
* no hour in which every responder answered from any vantage,
* average failure rate a few percent, Virginia best, São Paulo worst,
* two responders never reachable from anywhere,
* ~36.8% of responders saw at least one transient outage,
* named events (Comodo Apr 25, Digicert/Seoul Aug 27, Certum/Sydney
  Aug 9) visible as dips.
"""

from conftest import banner

from repro.core import analyze_availability, render_series
from repro.simnet import at


def test_fig3_availability(benchmark, bench_dataset):
    report = benchmark.pedantic(analyze_availability, args=(bench_dataset,),
                                rounds=1, iterations=1)

    banner("Figure 3: % successful OCSP requests per vantage point")
    for vantage, points in report.success_series.items():
        print(render_series(points, f"{vantage} (% success)", max_points=12))
    print("\nAverage failure rate by vantage (paper: 2.2% Virginia .. 5.7% São Paulo):")
    for vantage, rate in sorted(report.failure_rate.items(), key=lambda kv: kv[1]):
        print(f"  {vantage:10s} {rate:.2f}%")
    print(f"\nresponders never reachable anywhere "
          f"(paper: 2/536): {len(report.never_successful_anywhere)}/{report.responder_count}")
    print(f"responders with >=1 vantage never succeeding "
          f"(paper: 29): {len(report.never_successful_somewhere)}")
    print(f"always-fail per vantage (paper: Oregon 1, São Paulo 7, Paris 1, Seoul 4):")
    for vantage, count in report.always_fail_by_vantage.items():
        print(f"  {vantage:10s} {count}")
    print(f"responders with >=1 transient outage (paper: 36.8%): "
          f"{report.outage_fraction * 100:.1f}%")

    # Shape assertions.
    assert report.failure_rate["Sao-Paulo"] == max(report.failure_rate.values())
    assert report.failure_rate["Virginia"] == min(report.failure_rate.values())
    assert 0.5 <= report.overall_failure_rate <= 8.0
    assert len(report.never_successful_anywhere) >= 1
    assert report.always_fail_by_vantage["Sao-Paulo"] >= \
        report.always_fail_by_vantage["Virginia"]
    assert 0.25 <= report.outage_fraction <= 0.55  # paper: 36.8%
    # No vantage ever saw a fully clean hour.
    for vantage, points in report.success_series.items():
        assert all(success < 100.0 for _, success in points)


def test_fig3_comodo_event_dip(benchmark, bench_world):
    """The April 25 Comodo outage: visible from Oregon/Sydney/Seoul only."""
    from repro.scanner import HourlyScanner
    from repro.simnet import HOUR

    scanner = HourlyScanner(bench_world, interval=HOUR)
    dataset = benchmark.pedantic(
        scanner.run, args=(at(2018, 4, 25, 18), at(2018, 4, 25, 22)),
        rounds=1, iterations=1)
    report = analyze_availability(dataset)

    def success_at(vantage, hour):
        series = dict(report.success_series[vantage])
        return series[at(2018, 4, 25, hour)]

    banner("Figure 3 inset: Comodo outage, April 25 2018, 19:00-21:00")
    for vantage in ("Oregon", "Virginia", "Seoul"):
        print(f"  {vantage:10s} 18:00 {success_at(vantage, 18):5.1f}%  "
              f"19:00 {success_at(vantage, 19):5.1f}%  "
              f"21:00 {success_at(vantage, 21):5.1f}%")

    assert success_at("Oregon", 19) < success_at("Oregon", 18) - 1.0
    assert success_at("Seoul", 19) < success_at("Seoul", 18) - 1.0
    assert success_at("Virginia", 19) > success_at("Oregon", 19)
