"""Streaming-monitor extension — reducer convergence and replay rate.

The ``monitor-convergence`` experiment regenerates one scan campaign's
event log in independent partitions, reduces each through the
mergeable reducer library, merges the states in both fold directions,
and compares the finalized aggregates digest-for-digest against the
batch pipeline.  The throughput shard times a full single-partition
replay — the events/sec number the perf trajectory records.
"""

from conftest import banner

from repro.runtime import default_config, run_experiment


def test_monitor_replay(benchmark):
    config = default_config("monitor-convergence")

    result = benchmark.pedantic(
        run_experiment, args=("monitor-convergence",),
        kwargs={"config": config}, rounds=1, iterations=1)

    summary = result.summary
    banner("Monitor convergence: stream vs batch")
    print(f"  events: {summary['events']}  "
          f"partitions: {summary['partitions']}")
    print(f"  replay: {summary['events_per_s']:.0f} events/s "
          f"({summary['replay_duration_s']:.3f} s)")
    print(f"  batch  digest: {summary['batch_digest']}")
    print(f"  stream digest: {summary['stream_digest']}")

    # The whole point: any partitioning of the event log, merged in
    # any order, finalizes to the batch pipeline's exact bytes.
    assert summary["converged"]
    assert summary["merge_commutes"]
    assert summary["stream_digest"] == summary["batch_digest"]
    assert summary["events"] > 0
    # A one-pass pure-python replay should stay comfortably above
    # 10k events/s even on slow CI hardware.
    assert summary["events_per_s"] >= 10_000
