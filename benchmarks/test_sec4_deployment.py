"""Section 4 — deployment status of OCSP Must-Staple.

Paper rows being regenerated:
* 95.4% of valid certificates support OCSP,
* 0.02% of valid certificates carry Must-Staple,
* Must-Staple issuance split: Let's Encrypt 97.3%, DFN, Comodo, UserTrust.
"""

from conftest import banner

from repro.core import deployment_stats, pct, render_table
from repro.datasets import MUST_STAPLE_BY_CA


def test_sec4_deployment(benchmark, bench_corpus):
    stats = benchmark(deployment_stats, bench_corpus)

    boost = bench_corpus.config.must_staple_boost
    unboosted = stats.must_staple_fraction / boost

    banner("Section 4: deployment of OCSP and OCSP Must-Staple")
    print(render_table(
        ["metric", "paper", "measured"],
        [
            ["valid certificates with OCSP", "95.4%", pct(stats.ocsp_fraction)],
            ["valid certificates with Must-Staple", "0.02%",
             pct(unboosted, digits=3)],
        ],
    ))
    shares = stats.must_staple_ca_shares()
    paper_total = sum(MUST_STAPLE_BY_CA.values())
    print(render_table(
        ["CA", "paper share", "measured share"],
        [
            [name, pct(count / paper_total), pct(shares.get(name, 0.0))]
            for name, count in MUST_STAPLE_BY_CA.items()
        ],
        title="\nMust-Staple issuance by CA",
    ))

    # Shape assertions: OCSP ubiquitous, Must-Staple minuscule, LE dominant.
    assert 0.92 <= stats.ocsp_fraction <= 0.98
    assert unboosted < 0.001
    assert shares["Lets Encrypt"] > 0.90
