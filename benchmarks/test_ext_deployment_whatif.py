"""Extension — what if every browser enforced Must-Staple today?

Quantifies the paper's Section-8 ordering argument: on today's
Apache/Nginx software mix with realistically flaky responders, a
universally-enforcing browser population hard-fails a visible
percentage of page loads to Must-Staple sites; on the paper's
recommended (prefetch + retain) server behaviour, the same fleet
serves every load.  "Until web servers proactively fetch and OCSP
responders deliver valid responses, clients will have little incentive
to hard-fail."
"""

from conftest import banner

from repro.core.whatif import WhatIfConfig, run_whatif


def test_ext_universal_enforcement_whatif(benchmark):
    result = benchmark.pedantic(run_whatif, args=(WhatIfConfig(n_sites=40),),
                                rounds=1, iterations=1)

    banner("Extension: universal Must-Staple enforcement on today's stack")
    for software in sorted(result.by_software):
        failed, total = result.by_software[software]
        print(f"  {software:16s} hard-failed page loads: {failed:4d}/{total:4d} "
              f"= {failed / total * 100:5.1f}%")
    print(f"\nfleet-wide hard-fail rate: {result.overall_failure_rate * 100:.1f}%")
    print("the ideal (prefetch + retain-on-error) server eliminates the breakage,")
    print("supporting the paper's 'fix servers and responders first' ordering.")

    # Today's software visibly breaks under enforcement...
    assert result.failure_rate("apache-2.4.18") > 0.01
    assert result.failure_rate("nginx-1.13.12") > 0.01
    # ...while the recommended behaviour does not.
    assert result.failure_rate("ideal") == 0.0
    assert 0.005 <= result.overall_failure_rate <= 0.20
